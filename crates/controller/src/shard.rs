//! The per-shard control loop — one self-contained slice of the fleet.
//!
//! [`ShardController`] is the unit a sharded control plane replicates: it
//! owns its tenants' telemetry, drift detection, warm re-solver,
//! migration planner and executor, exactly like the single-fleet
//! [`crate::Controller`] (which is now a thin wrapper around it). On top
//! of the loop it exposes what a top-level balancer needs:
//!
//! * [`ShardController::summary`] — aggregate load, machines used,
//!   feasibility, and per-tenant peaks (the balancer's decision input);
//! * [`ShardController::can_admit`] / [`ShardController::pack_estimate`]
//!   — capacity reservation checks for the two-phase handoff;
//! * [`ShardController::evict`] / [`ShardController::admit`] — the
//!   transfer itself, moving the tenant's telemetry source *and* rolling
//!   history so the destination replans without a fresh bootstrap;
//! * replica counts and named anti-affinity pairs, threaded through the
//!   bootstrap solve, every re-solve, and placement verification.

use crate::controller::{
    ControllerConfig, ControllerStats, ReplanReason, ReplanSummary, ShardMetrics, TickOutcome,
};
use crate::drift::DriftReport;
use crate::executor::FleetExecutor;
use crate::ingest::{TelemetryIngester, TelemetrySketch, TelemetrySource, WorkloadTelemetry};
use crate::migration::plan_migration;
use crate::resolver::{FleetPlacement, ReSolver};
use crate::snapshot::{ShardSnapshot, TRACE_CHECKPOINT_CAP};
use kairos_core::ConsolidationEngine;
use kairos_obs::{DecisionEvent, DecisionLog, MetricsRegistry, SpanLog, TracedEvent};
use kairos_solver::{evaluate, greedy_pack, Assignment, Evaluation};
use kairos_traces::{AggregateSketch, ShardAggregate, SketchConfig};
use kairos_types::{KairosError, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// One tenant's forecast peaks — what the balancer weighs when choosing
/// handoff candidates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantLoad {
    pub name: String,
    pub replicas: u32,
    pub cpu_peak: f64,
    pub ram_peak: f64,
    pub ws_peak: f64,
    pub rate_peak: f64,
}

/// A shard's state as the balancer sees it. Serializable because the
/// shard's staleness-bounded summary cache checkpoints with it — a
/// restored fleet must present the balancer the same (possibly cached)
/// view the original would have, or balance rounds diverge after resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSummary {
    pub tenants: usize,
    /// `false` while the shard is still bootstrapping its first plan.
    pub planned: bool,
    pub machines_used: usize,
    /// Current placement re-evaluated against the current forecast.
    pub feasible: bool,
    pub violation: f64,
    /// The most recent re-plan attempt could not place the fleet.
    pub resolve_failed: bool,
    /// Workloads currently outside their planned envelope.
    pub drifting: usize,
    /// Aggregate rolling load across the shard's tenants, sketched to
    /// constant size (peaks exact — see [`kairos_traces::sketch`]): the
    /// summary's wire size no longer grows with the monitoring window.
    pub aggregate: AggregateSketch,
    /// Per-tenant forecast peaks, for handoff candidate selection.
    pub tenant_loads: Vec<TenantLoad>,
}

/// A tenant in flight between shards: its telemetry source plus the
/// rolling history that lets the destination shard plan it immediately.
pub struct TenantHandoff {
    pub name: String,
    pub replicas: u32,
    pub source: Box<dyn TelemetrySource>,
    pub telemetry: WorkloadTelemetry,
    /// Sketch shape [`TenantHandoff::into_wire`] compresses the
    /// telemetry with (the donor shard's configured shape).
    pub sketch: SketchConfig,
}

/// Frame version of [`TenantHandoff::into_wire`]'s encoding.
///
/// v2: the telemetry travels as a constant-size [`TelemetrySketch`]
/// instead of the full RRD rings — frame size is independent of the
/// monitoring window (peaks exact, recent tail verbatim, deep past
/// replayed from the quantile staircase on admit).
pub const HANDOFF_WIRE_VERSION: u32 = 2;

impl TenantHandoff {
    /// Serialize the transportable part of the handoff — name, replica
    /// count, and the *sketched* rolling telemetry — into a checksummed
    /// [`kairos_store`] frame, handing the live source back separately.
    /// The source is the one piece that cannot cross a process boundary
    /// as bytes (an RPC transport re-binds the destination's own); the
    /// in-process balancer routes every handoff through this encoding so
    /// the bytes (and the sketch round-trip) are exercised on the hot
    /// path, not just in tests.
    pub fn into_wire(self) -> (Vec<u8>, Box<dyn TelemetrySource>) {
        let TenantHandoff {
            name,
            replicas,
            source,
            telemetry,
            sketch,
        } = self;
        let bytes = kairos_store::encode_frame(
            HANDOFF_WIRE_VERSION,
            &(name, replicas, telemetry.sketch(&sketch)),
        );
        (bytes, source)
    }

    /// Validate and decode a handoff frame's transportable parts —
    /// `(tenant, replicas, telemetry)` — without binding a source,
    /// rebuilding the rolling telemetry from the frame's sketch. The
    /// RPC admit path decodes first and only then binds a
    /// destination-side source for the named tenant, so a damaged frame
    /// is rejected before any state is touched (and a failed admission
    /// can hand the caller's source back for the rollback re-admit).
    pub fn parts_from_wire(
        bytes: &[u8],
    ) -> Result<(String, u32, WorkloadTelemetry), kairos_store::StoreError> {
        let (name, replicas, sketch): (String, u32, TelemetrySketch) =
            kairos_store::decode_frame(bytes, HANDOFF_WIRE_VERSION)?;
        Ok((name, replicas, WorkloadTelemetry::from_sketch(&sketch)))
    }

    /// Inverse of [`TenantHandoff::into_wire`]: validate and decode the
    /// frame, re-binding the destination-side telemetry source. Rejects
    /// corrupt bytes and a source whose name disagrees with the frame.
    pub fn from_wire(
        bytes: &[u8],
        source: Box<dyn TelemetrySource>,
    ) -> Result<TenantHandoff, kairos_store::StoreError> {
        let (name, replicas, telemetry) = TenantHandoff::parts_from_wire(bytes)?;
        if source.name() != name {
            return Err(kairos_store::StoreError::Inconsistent(format!(
                "handoff frame names tenant {name} but the bound source is {}",
                source.name()
            )));
        }
        Ok(TenantHandoff {
            name,
            replicas,
            source,
            telemetry,
            // A decoded handoff re-sketches (if ever re-encoded) with the
            // default shape; the owning shard's evict path overrides it.
            sketch: SketchConfig::default(),
        })
    }
}

/// Does `cand` tighten `old` — never exceeding its peak on any resource
/// series while actually lowering the mean somewhere? The scheduled
/// horizon refresh only swaps a conservative envelope for a candidate
/// that is a strict improvement; anything else keeps the envelope (and
/// leaves the correction to the drift detector).
fn profile_tightens(cand: &WorkloadProfile, old: &WorkloadProfile) -> bool {
    let pairs = [
        (&cand.cpu_cores, &old.cpu_cores),
        (&cand.ram_bytes, &old.ram_bytes),
        (&cand.disk_working_set_bytes, &old.disk_working_set_bytes),
        (
            &cand.disk_update_rows_per_sec,
            &old.disk_update_rows_per_sec,
        ),
    ];
    let mut improves = false;
    for (c, o) in pairs {
        if c.is_empty() || o.is_empty() {
            return false;
        }
        if c.max() > o.max() * (1.0 + 1e-9) {
            return false;
        }
        if c.mean() < o.mean() * (1.0 - 1e-9) {
            improves = true;
        }
    }
    improves
}

/// The per-shard consolidation loop. See module docs.
pub struct ShardController {
    cfg: ControllerConfig,
    ingester: TelemetryIngester,
    sources: BTreeMap<String, Box<dyn TelemetrySource>>,
    resolver: ReSolver,
    executor: FleetExecutor,
    placement: FleetPlacement,
    /// Per workload: the profile its current placement was solved for.
    planned: BTreeMap<String, WorkloadProfile>,
    /// Workloads whose planned profile is a conservative flat envelope
    /// (their forecast hit the regime-change fallback) — the scheduled
    /// horizon refresh's worklist.
    envelope_planned: std::collections::BTreeSet<String>,
    /// Tick at which the scheduled zero-move profile refresh runs (set
    /// after an envelope-planned re-plan; see
    /// [`ControllerConfig::profile_refresh_ticks`]).
    profile_refresh_due: Option<u64>,
    /// Replica counts for tenants that run more than one copy.
    replicas: BTreeMap<String, u32>,
    planned_once: bool,
    membership_changed: bool,
    /// Tick of the most recent (re-)plan, for cooldown accounting.
    last_plan_tick: u64,
    /// Do not attempt another re-plan before this tick (set after a
    /// failed solve so retries are paced, not per-tick).
    replan_backoff_until: u64,
    last_resolve_failed: bool,
    /// Cached balancer summary plus the tick it was computed at and the
    /// [`SketchConfig::digest`] it was sketched with; invalidated by
    /// anything that changes what the balancer would see (see
    /// [`ControllerConfig::summary_refresh_ticks`]) and by a sketch
    /// shape change — a summary sketched with the old shape must never
    /// be served under a new one.
    summary_cache: Option<(u64, u64, ShardSummary)>,
    /// Registry-backed live counters; [`ControllerStats`] is a view.
    metrics: ShardMetrics,
    /// The deterministic decision trace (tick-stamped, ring-buffered).
    log: DecisionLog,
    /// The causal span log: evict/admit record child spans under
    /// whatever context the caller installed (locally or from an RPC
    /// frame's span section), chaining this shard's work into the
    /// balancer's cross-node trace. Disabled by default — zero records,
    /// zero wire change.
    spans: SpanLog,
    /// Objective of the current plan at its adoption — the "before" side
    /// of the next [`DecisionEvent::Replanned`] event. Checkpointed so a
    /// restored shard's trace continues instead of forking.
    last_objective_bits: u64,
}

impl ShardController {
    pub fn new(cfg: ControllerConfig, engine: ConsolidationEngine) -> ShardController {
        let mut resolver = ReSolver::new(engine);
        resolver.solver = cfg.solver;
        resolver.cost_per_move = cfg.cost_per_move;
        resolver.cold = cfg.cold_resolves;
        ShardController {
            cfg,
            ingester: TelemetryIngester::new(),
            sources: BTreeMap::new(),
            resolver,
            executor: FleetExecutor::new(),
            placement: FleetPlacement::new(),
            planned: BTreeMap::new(),
            envelope_planned: std::collections::BTreeSet::new(),
            profile_refresh_due: None,
            replicas: BTreeMap::new(),
            planned_once: false,
            membership_changed: false,
            last_plan_tick: 0,
            replan_backoff_until: 0,
            last_resolve_failed: false,
            summary_cache: None,
            metrics: ShardMetrics::new(MetricsRegistry::new()),
            log: DecisionLog::new(),
            spans: SpanLog::new(0),
            last_objective_bits: 0,
        }
    }

    /// The shard's current tick count (drives every cadence gate).
    fn ticks(&self) -> u64 {
        self.metrics.ticks.get()
    }

    /// The registry behind this shard's metrics (the `Metrics` RPC and
    /// the fleet exporters render it).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        self.metrics.registry()
    }

    /// The shard's decision trace.
    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    /// Record an externally-observed event (e.g. the serving layer's
    /// `AuthRejected`) into this shard's trace at its current tick.
    pub fn record_event(&mut self, event: DecisionEvent) {
        self.log.record(self.ticks(), event);
    }

    /// The trace's events, oldest first (checkpoint / RPC payload).
    pub fn trace_events(&self) -> Vec<TracedEvent> {
        self.log.to_vec()
    }

    /// The canonical trace bytes (workspace codec) — the byte-identity
    /// the determinism and net-equivalence suites assert.
    pub fn trace_bytes(&self) -> Vec<u8> {
        self.log.trace_bytes()
    }

    /// Enable or disable decision tracing. Disabled, `record` is a single
    /// branch (the bench-overhead configuration); already-recorded events
    /// are kept.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.log.set_enabled(enabled);
    }

    /// Configure causal span tracing: the node id this shard's spans
    /// carry (`kairos_obs::span::node_for_shard` and friends) and
    /// whether spans record at all. Disabled (the default) the evict /
    /// admit paths record nothing and RPC frames stay span-free.
    pub fn configure_spans(&mut self, node: u32, enabled: bool) {
        self.spans.set_node(node);
        self.spans.set_enabled(enabled);
    }

    /// The shard's span log (read side: queries, RPC payloads).
    pub fn span_log(&self) -> &SpanLog {
        &self.spans
    }

    /// The canonical span bytes (workspace codec `Vec<SpanRecord>`) —
    /// included in chaos fingerprints when spans are enabled.
    pub fn span_bytes(&self) -> Vec<u8> {
        self.spans.span_bytes()
    }

    /// Drop the cached balancer summary — called on every state change a
    /// summary reflects (membership, handoffs, plans, solve failures).
    fn invalidate_summary(&mut self) {
        self.summary_cache = None;
    }

    /// Attach a workload's telemetry stream. Arrival of a new workload
    /// after the initial plan triggers a membership re-plan once the
    /// newcomer has enough observed windows.
    pub fn add_workload(&mut self, source: Box<dyn TelemetrySource>) {
        let name = source.name().to_string();
        self.ingester.register(&name, self.cfg.telemetry);
        self.sources.insert(name, source);
        if self.planned_once {
            self.membership_changed = true;
        }
        self.invalidate_summary();
    }

    /// Attach a replicated workload: `replicas` copies on distinct
    /// machines (the solver's implicit replica anti-affinity).
    pub fn add_workload_with_replicas(&mut self, source: Box<dyn TelemetrySource>, replicas: u32) {
        assert!(replicas >= 1);
        if replicas > 1 {
            self.replicas.insert(source.name().to_string(), replicas);
        }
        self.add_workload(source);
    }

    /// Declare that `a` and `b` must never share a machine. Applies to
    /// every subsequent solve; ignored in solves where either is absent.
    /// Idempotent (either orientation): re-registering an existing pair
    /// is a no-op, so a network balancer can blindly re-assert the
    /// fleet list on a rejoined node without skewing the constraint set
    /// (a duplicated pair would double-count its violations and shift
    /// solver objectives).
    pub fn add_anti_affinity(&mut self, a: &str, b: &str) {
        let known = self
            .resolver
            .anti_affinity
            .iter()
            .any(|(x, y)| (x == a && y == b) || (x == b && y == a));
        if !known {
            self.resolver
                .anti_affinity
                .push((a.to_string(), b.to_string()));
        }
    }

    /// Detach a workload: telemetry dropped, tenant retired (its dbsim
    /// databases garbage-collected), and an opportunistic repack
    /// scheduled (departures free capacity).
    pub fn remove_workload(&mut self, name: &str) {
        self.sources.remove(name);
        self.ingester.deregister(name);
        self.planned.remove(name);
        self.envelope_planned.remove(name);
        self.replicas.remove(name);
        self.placement.remove_workload(name);
        self.executor.retire(name);
        if self.planned_once {
            self.membership_changed = true;
        }
        self.invalidate_summary();
    }

    pub fn stats(&self) -> ControllerStats {
        self.metrics.stats()
    }

    pub fn placement(&self) -> &FleetPlacement {
        &self.placement
    }

    pub fn executor(&self) -> &FleetExecutor {
        &self.executor
    }

    pub fn workloads(&self) -> Vec<String> {
        self.ingester.names()
    }

    pub fn has_workload(&self, name: &str) -> bool {
        self.sources.contains_key(name)
    }

    pub fn planned_once(&self) -> bool {
        self.planned_once
    }

    /// Could the *next* tick do more than poll telemetry? Mirrors the
    /// gating in [`ShardController::tick`]: bootstrap still pending, a
    /// membership replan due, or a drift check on cadence. The fleet's
    /// tick fan-out uses this to keep quiet ticks on one thread (thread
    /// spawns cost more than polling) while solve-capable ticks — the
    /// ones worth parallelizing — go wide. Purely a scheduling hint: the
    /// tick's behaviour is identical either way.
    pub fn tick_may_solve(&self) -> bool {
        let next = self.ticks() + 1;
        // Lookahead 1 everywhere: one more sample lands before the next
        // tick's readiness checks actually run.
        if !self.planned_once {
            // Mirrors maybe_bootstrap's gate: no solve can happen until
            // every workload has a full horizon of observations.
            return !self.ingester.is_empty() && self.windows_ready(self.cfg.horizon, 1);
        }
        if next < self.replan_backoff_until {
            return false;
        }
        // Mirrors fleet_observable: a warming-up arrival defers the
        // membership replan — but tick() then falls through to the drift
        // path, so an unobservable membership change must NOT veto the
        // cadence check below.
        if self.membership_changed && self.windows_ready(self.cfg.detector.min_windows, 1) {
            return true;
        }
        let cooled = next.saturating_sub(self.last_plan_tick) >= self.cfg.cooldown_ticks;
        cooled && next.is_multiple_of(self.cfg.check_every)
    }

    /// One monitoring interval: poll every source, then act.
    pub fn tick(&mut self) -> TickOutcome {
        self.metrics.ticks.inc();
        for (name, source) in self.sources.iter_mut() {
            let sample = source.poll();
            self.ingester.ingest(name, &sample);
        }
        self.metrics.samples_ingested.add(self.sources.len() as u64);

        if !self.planned_once {
            return self.maybe_bootstrap();
        }
        if self.ticks() < self.replan_backoff_until {
            return TickOutcome::Idle;
        }
        if self.membership_changed && self.fleet_observable() {
            return self.replan(ReplanReason::Membership);
        }
        // The scheduled refresh outranks the drift-check cadence: it
        // fires at most once per replan and is cheap (no solver), while
        // a cadence check runs forever — were the order reversed, a
        // `check_every: 1` config would drift-check on every cooled tick
        // and starve the refresh permanently.
        if self
            .profile_refresh_due
            .is_some_and(|due| self.ticks() >= due)
        {
            return self.profile_refresh();
        }
        let cooled_down =
            self.ticks().saturating_sub(self.last_plan_tick) >= self.cfg.cooldown_ticks;
        if cooled_down && self.ticks().is_multiple_of(self.cfg.check_every) {
            return self.check_drift();
        }
        TickOutcome::Idle
    }

    /// Every registered workload has at least `needed` live samples,
    /// `lookahead` of which will only have landed by the time the
    /// predicted check runs (0 = check now, 1 = predict the next tick).
    /// The single source of truth for the bootstrap, membership and
    /// fan-out-hint gates — they must not drift apart.
    fn windows_ready(&self, needed: usize, lookahead: usize) -> bool {
        self.ingester
            .iter()
            .all(|(_, t)| t.window_len() + lookahead >= needed)
    }

    /// Every registered workload has at least the detector's minimum
    /// window of live samples.
    fn fleet_observable(&self) -> bool {
        self.windows_ready(self.cfg.detector.min_windows, 0)
    }

    /// Bootstrap: wait until every workload has a full horizon of
    /// observations, then plan cold and provision the fleet.
    fn maybe_bootstrap(&mut self) -> TickOutcome {
        let ready = !self.ingester.is_empty() && self.windows_ready(self.cfg.horizon, 0);
        if !ready {
            return TickOutcome::Bootstrapping;
        }
        let (profiles, envelopes) = self.forecast_fleet_flagged();
        let t0 = Instant::now();
        let (problem, report) = match self.resolver.plan_cold(&profiles) {
            Ok(x) => x,
            Err(_) => return TickOutcome::Bootstrapping,
        };
        let solve_secs = t0.elapsed().as_secs_f64();
        self.metrics.solve_secs_total.add(solve_secs);
        self.metrics.solve_usecs.record((solve_secs * 1e6) as u64);

        let slots = problem.slots();
        let from = vec![None; slots.len()];
        let migration = plan_migration(&problem, &from, &report.assignment);
        let exec = self.executor.execute(&migration, &problem);
        self.metrics.forced_steps.add(exec.forced_steps as u64);

        let mut placement = FleetPlacement::new();
        for (slot, &machine) in slots.iter().zip(report.assignment.machine_of.iter()) {
            placement.set(
                &problem.workloads[slot.workload].name,
                slot.replica,
                machine,
            );
        }
        let machines = report.assignment.machines_used();
        self.placement = placement;
        self.planned = profiles.into_iter().map(|p| (p.name.clone(), p)).collect();
        self.planned_once = true;
        self.last_plan_tick = self.ticks();
        self.last_objective_bits = report.evaluation.objective.to_bits();
        self.log.record(
            self.ticks(),
            DecisionEvent::Bootstrapped {
                machines,
                objective_bits: self.last_objective_bits,
            },
        );
        self.note_envelopes(envelopes);
        self.invalidate_summary();
        TickOutcome::InitialPlan {
            machines,
            solve_secs,
        }
    }

    /// Forecast every workload's next horizon from its rolling telemetry
    /// (replica counts applied).
    pub fn forecast_fleet(&self) -> Vec<WorkloadProfile> {
        self.forecast_fleet_flagged().0
    }

    /// Forecast one workload's next horizon. `None` if unknown.
    pub fn forecast_workload(&self, name: &str) -> Option<WorkloadProfile> {
        Some(self.forecast_workload_flagged(name)?.0)
    }

    /// [`ShardController::forecast_workload`] plus whether the forecast
    /// fell back to the conservative flat envelope — the single
    /// forecasting path every caller (planning, summaries, the
    /// ForecastFleet RPC, the audit) goes through, so the flagged and
    /// unflagged views can never drift apart.
    fn forecast_workload_flagged(&self, name: &str) -> Option<(WorkloadProfile, bool)> {
        let telemetry = self.ingester.get(name)?;
        let (mut profile, envelope) =
            crate::resolver::forecast_profile_flagged(name, telemetry, self.cfg.horizon);
        profile.replicas = self.replicas.get(name).copied().unwrap_or(1);
        Some((profile, envelope))
    }

    /// [`ShardController::forecast_fleet`] plus the names whose forecast
    /// fell back to the conservative flat envelope — the scheduled
    /// horizon refresh's worklist.
    fn forecast_fleet_flagged(&self) -> (Vec<WorkloadProfile>, Vec<String>) {
        let mut profiles = Vec::new();
        let mut envelopes = Vec::new();
        for name in self.ingester.names() {
            let (profile, envelope) = self
                .forecast_workload_flagged(&name)
                .expect("registered workload");
            if envelope {
                envelopes.push(name);
            }
            profiles.push(profile);
        }
        (profiles, envelopes)
    }

    /// Record which workloads were just planned against a conservative
    /// envelope, scheduling the zero-move refresh once
    /// [`ControllerConfig::profile_refresh_ticks`] of post-drift
    /// telemetry will have re-accumulated.
    fn note_envelopes(&mut self, envelopes: Vec<String>) {
        self.envelope_planned = envelopes.into_iter().collect();
        self.profile_refresh_due =
            if !self.envelope_planned.is_empty() && self.cfg.profile_refresh_ticks > 0 {
                Some(self.ticks() + self.cfg.profile_refresh_ticks)
            } else {
                None
            };
    }

    /// The profile `name`'s current placement was solved for (`None`
    /// before the initial plan or for unknown tenants).
    pub fn planned_profile(&self, name: &str) -> Option<&WorkloadProfile> {
        self.planned.get(name)
    }

    /// Workloads whose planned profile is currently a conservative flat
    /// envelope, pending the scheduled refresh.
    pub fn envelope_planned(&self) -> Vec<String> {
        self.envelope_planned.iter().cloned().collect()
    }

    /// Scheduled horizon refresh: re-forecast every envelope-planned
    /// workload from its post-drift tail alone and, when that tightens
    /// the profile *and* the current placement stays feasible under it,
    /// adopt the tighter planned set — zero solver work, zero
    /// migrations. The lazier slack side of the drift detector would
    /// eventually force the same correction, but through a full re-solve
    /// and possible moves.
    fn profile_refresh(&mut self) -> TickOutcome {
        self.profile_refresh_due = None;
        let names: Vec<String> = self.envelope_planned.iter().cloned().collect();
        let tail_len = self.cfg.profile_refresh_ticks as usize;
        let mut candidates = self.planned.clone();
        let mut refreshed_names: Vec<String> = Vec::new();
        for name in &names {
            let (Some(telemetry), Some(old)) = (self.ingester.get(name), self.planned.get(name))
            else {
                continue;
            };
            let mut cand =
                crate::resolver::forecast_profile_tail(name, telemetry, self.cfg.horizon, tail_len);
            cand.replicas = self.replicas.get(name).copied().unwrap_or(1);
            if !profile_tightens(&cand, old) {
                continue;
            }
            candidates.insert(name.clone(), cand);
            refreshed_names.push(name.clone());
        }
        self.envelope_planned.clear();
        if refreshed_names.is_empty() {
            return TickOutcome::Idle;
        }
        // Zero-move safety: adopt only when the *current* placement is
        // feasible under the refreshed profiles (it is, whenever the live
        // load really stabilized inside the envelope — a regime still
        // running hot trips overload drift instead).
        let profiles: Vec<WorkloadProfile> = candidates.values().cloned().collect();
        match self.verify_with(&profiles) {
            Some(e) if e.feasible => {
                self.planned = candidates;
                self.metrics.profile_refreshes.inc();
                let refreshed = refreshed_names.len();
                self.log.record(
                    self.ticks(),
                    DecisionEvent::ProfileRefreshed {
                        workloads: refreshed_names,
                    },
                );
                self.invalidate_summary();
                TickOutcome::ProfileRefreshed { refreshed }
            }
            _ => TickOutcome::Idle,
        }
    }

    /// Compare each live window against its planned profile.
    fn check_drift(&mut self) -> TickOutcome {
        self.metrics.drift_checks.inc();
        let mut drifted: Vec<String> = Vec::new();
        let (mut max_overload, mut max_slack) = (0.0f64, 0.0f64);
        for name in self.ingester.names() {
            let Some(planned) = self.planned.get(&name) else {
                // A workload with telemetry but no plan yet (arrival still
                // warming up) is membership, not drift.
                continue;
            };
            let telemetry = self.ingester.get(&name).expect("registered");
            let Some(live) = telemetry.live_profile(&name, self.cfg.horizon) else {
                continue;
            };
            let report =
                self.cfg
                    .detector
                    .check(planned, &live, telemetry.samples_seen().saturating_sub(1));
            if report.drifted {
                max_overload = max_overload.max(report.max_overload);
                max_slack = max_slack.max(report.max_slack);
                drifted.push(report.workload);
            }
        }
        if drifted.is_empty() {
            TickOutcome::Stable
        } else {
            self.log.record(
                self.ticks(),
                DecisionEvent::DriftTripped {
                    workloads: drifted.clone(),
                    max_overload_bits: max_overload.to_bits(),
                    max_slack_bits: max_slack.to_bits(),
                    overload_threshold_bits: self.cfg.detector.overload_threshold.to_bits(),
                    slack_threshold_bits: self.cfg.detector.slack_threshold.to_bits(),
                },
            );
            self.replan(ReplanReason::Drift(drifted))
        }
    }

    /// Render a replan trigger for the decision trace.
    fn reason_label(reason: &ReplanReason) -> String {
        match reason {
            ReplanReason::Membership => "membership".to_string(),
            ReplanReason::Drift(names) => format!("drift[{}]", names.join(",")),
        }
    }

    /// Warm re-solve + capacity-safe migration.
    fn replan(&mut self, reason: ReplanReason) -> TickOutcome {
        let (profiles, envelopes) = self.forecast_fleet_flagged();
        let t0 = Instant::now();
        let outcome = match self.resolver.resolve(&profiles, &self.placement) {
            Ok(o) => o,
            Err(_) => {
                // Nothing placeable right now (e.g. a workload's forecast
                // momentarily outgrew the machine class). Keep the old
                // plan and leave `membership_changed` untouched so a
                // pending arrival is retried rather than orphaned; back
                // off one check period so a persistently infeasible fleet
                // doesn't pay a full solve every tick.
                self.replan_backoff_until = self.ticks() + self.cfg.check_every;
                self.last_resolve_failed = true;
                self.log.record(
                    self.ticks(),
                    DecisionEvent::ResolveFailed {
                        reason: Self::reason_label(&reason),
                        backoff_until: self.replan_backoff_until,
                    },
                );
                self.invalidate_summary();
                return TickOutcome::Stable;
            }
        };
        let solve_secs = t0.elapsed().as_secs_f64();
        self.last_resolve_failed = false;

        let migration = plan_migration(
            &outcome.problem,
            &outcome.baseline,
            &outcome.report.assignment,
        );
        let execution = self.executor.execute(&migration, &outcome.problem);

        let churn = outcome.churn();
        self.metrics.resolves.inc();
        self.metrics.total_moves.add(outcome.moves as u64);
        self.metrics.forced_steps.add(execution.forced_steps as u64);
        self.metrics.bytes_copied.add(execution.bytes_copied);
        self.metrics.max_churn.max(churn);
        self.metrics.solve_secs_total.add(solve_secs);
        self.metrics.solve_usecs.record((solve_secs * 1e6) as u64);

        self.placement = outcome.placement;
        self.planned = profiles.into_iter().map(|p| (p.name.clone(), p)).collect();
        self.membership_changed = false;
        self.last_plan_tick = self.ticks();
        let objective_after_bits = outcome.report.evaluation.objective.to_bits();
        self.log.record(
            self.ticks(),
            DecisionEvent::Replanned {
                reason: Self::reason_label(&reason),
                feasible: outcome.report.evaluation.feasible,
                moves: outcome.moves,
                machines: self.placement.machines_used(),
                objective_before_bits: self.last_objective_bits,
                objective_after_bits,
                churn_bits: churn.to_bits(),
            },
        );
        self.last_objective_bits = objective_after_bits;
        self.note_envelopes(envelopes);
        self.invalidate_summary();

        TickOutcome::Replanned(ReplanSummary {
            reason,
            feasible: outcome.report.evaluation.feasible,
            moves: outcome.moves,
            churn,
            machines: self.placement.machines_used(),
            execution,
            solve_secs,
        })
    }

    /// Re-evaluate the current placement against the current forecast —
    /// the "is the plan still sound" check exposed for tests and reports.
    /// `None` before the initial plan.
    pub fn verify_current(&self) -> Option<Evaluation> {
        if !self.planned_once {
            return None;
        }
        self.verify_with(&self.forecast_fleet())
    }

    /// [`ShardController::verify_current`] against an already-computed
    /// forecast (so callers holding one don't re-forecast the fleet).
    fn verify_with(&self, profiles: &[WorkloadProfile]) -> Option<Evaluation> {
        if !self.planned_once || profiles.is_empty() {
            return None;
        }
        let problem = self.resolver.problem(profiles).ok()?;
        let slots = problem.slots();
        let mut machine_of = Vec::with_capacity(slots.len());
        for slot in &slots {
            let name = &problem.workloads[slot.workload].name;
            machine_of.push(self.placement.machine_of(name, slot.replica)?);
        }
        Some(evaluate(&problem, &Assignment::new(machine_of)))
    }

    /// Build this shard's constraint-carrying solver problem (replica
    /// counts from the profiles, the shard's named anti-affinity pairs
    /// applied) for an arbitrary profile set — the fleet audit uses this
    /// to construct the *global* problem with a real shard engine rather
    /// than re-deriving the constraint plumbing.
    pub fn problem_for(
        &self,
        profiles: &[WorkloadProfile],
    ) -> kairos_types::Result<kairos_solver::ConsolidationProblem> {
        self.resolver.problem(profiles)
    }

    /// Latest drift reports without acting on them (observability hook).
    pub fn drift_snapshot(&self) -> Vec<DriftReport> {
        let mut out = Vec::new();
        for name in self.ingester.names() {
            let (Some(planned), Some(telemetry)) =
                (self.planned.get(&name), self.ingester.get(&name))
            else {
                continue;
            };
            if let Some(live) = telemetry.live_profile(&name, self.cfg.horizon) {
                out.push(self.cfg.detector.check(
                    planned,
                    &live,
                    telemetry.samples_seen().saturating_sub(1),
                ));
            }
        }
        out
    }

    // ----- checkpoint / restore -----

    /// Capture everything a restarted controller needs to resume this
    /// shard's loop exactly: rolling telemetry (drift-detector phase
    /// state included — `samples_seen` drives phase alignment), the
    /// current placement (the warm re-solver's seed), the planned
    /// profiles it was solved for, replica counts, anti-affinity pairs,
    /// cadence/cooldown counters, the balancer summary cache, and the
    /// executor's tenant routing. The shard's *configuration* (and its
    /// engine) deliberately stays out: a snapshot restores state into a
    /// freshly configured controller, so ops can tune the loop across a
    /// restart without invalidating checkpoints.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            telemetry: self
                .ingester
                .iter()
                .map(|(n, t)| (n.to_string(), t.clone()))
                .collect(),
            placement: self.placement.clone(),
            planned: self.planned.clone(),
            envelope_planned: self.envelope_planned.iter().cloned().collect(),
            profile_refresh_due: self.profile_refresh_due,
            replicas: self.replicas.clone(),
            anti_affinity: self.resolver.anti_affinity.clone(),
            planned_once: self.planned_once,
            membership_changed: self.membership_changed,
            last_plan_tick: self.last_plan_tick,
            replan_backoff_until: self.replan_backoff_until,
            last_resolve_failed: self.last_resolve_failed,
            summary_cache: self.summary_cache.clone(),
            stats: self.metrics.stats(),
            routing: self.executor.routing_snapshot(),
            trace: {
                // Like the fleet handoff log, checkpoints keep a bounded
                // tail of the trace so file size tracks current state.
                let events = self.log.to_vec();
                let skip = events.len().saturating_sub(TRACE_CHECKPOINT_CAP);
                events.into_iter().skip(skip).collect()
            },
            last_objective_bits: self.last_objective_bits,
        }
    }

    /// Rebuild a shard from a [`ShardSnapshot`]: telemetry windows are
    /// re-installed, the executor re-materializes every routed tenant on
    /// its machine, and all loop state (placement, planned profiles,
    /// counters, caches) is restored verbatim. Internally inconsistent
    /// snapshots (placements or routing for tenants with no telemetry)
    /// are rejected — a partial restore must never come up half-silent.
    ///
    /// Telemetry *sources* cannot be serialized; after restoring, re-bind
    /// one per tenant with [`ShardController::attach_source`] before
    /// ticking ([`ShardController::detached_workloads`] lists what is
    /// still missing).
    pub fn restore(
        cfg: ControllerConfig,
        engine: ConsolidationEngine,
        snapshot: ShardSnapshot,
    ) -> kairos_types::Result<ShardController> {
        let names: std::collections::BTreeSet<&str> =
            snapshot.telemetry.iter().map(|(n, _)| n.as_str()).collect();
        if names.len() != snapshot.telemetry.len() {
            return Err(KairosError::InvalidInput(
                "shard snapshot repeats a tenant".into(),
            ));
        }
        let known = |name: &str| names.contains(name);
        for ((w, _), _) in snapshot.placement.iter() {
            if !known(w) {
                return Err(KairosError::InvalidInput(format!(
                    "shard snapshot places unknown tenant {w}"
                )));
            }
        }
        for w in snapshot.planned.keys().chain(snapshot.replicas.keys()) {
            if !known(w) {
                return Err(KairosError::InvalidInput(format!(
                    "shard snapshot plans unknown tenant {w}"
                )));
            }
        }
        for w in &snapshot.envelope_planned {
            if !known(w) {
                return Err(KairosError::InvalidInput(format!(
                    "shard snapshot envelope-plans unknown tenant {w}"
                )));
            }
        }
        for (w, _, _, _) in &snapshot.routing {
            if !known(w) {
                return Err(KairosError::InvalidInput(format!(
                    "shard snapshot routes unknown tenant {w}"
                )));
            }
        }

        let mut shard = ShardController::new(cfg, engine);
        for (name, telemetry) in snapshot.telemetry {
            shard.ingester.insert(&name, telemetry);
        }
        shard.resolver.anti_affinity = snapshot.anti_affinity;
        shard.executor.restore_routing(&snapshot.routing);
        shard.placement = snapshot.placement;
        shard.planned = snapshot.planned;
        shard.envelope_planned = snapshot.envelope_planned.into_iter().collect();
        shard.profile_refresh_due = snapshot.profile_refresh_due;
        shard.replicas = snapshot.replicas;
        shard.planned_once = snapshot.planned_once;
        shard.membership_changed = snapshot.membership_changed;
        shard.last_plan_tick = snapshot.last_plan_tick;
        shard.replan_backoff_until = snapshot.replan_backoff_until;
        shard.last_resolve_failed = snapshot.last_resolve_failed;
        shard.summary_cache = snapshot.summary_cache;
        shard.metrics.restore(&snapshot.stats);
        shard.log =
            DecisionLog::restore(snapshot.trace, kairos_obs::events::DEFAULT_TRACE_CAP, true);
        shard.last_objective_bits = snapshot.last_objective_bits;
        Ok(shard)
    }

    /// Re-bind a live telemetry source to a restored tenant. Unlike
    /// [`ShardController::add_workload`] this does *not* mark membership
    /// as changed — the tenant never left the fleet, only the process
    /// died — so reattachment triggers no spurious re-plan. Rejects
    /// sources for tenants the shard has no telemetry for.
    pub fn attach_source(&mut self, source: Box<dyn TelemetrySource>) -> kairos_types::Result<()> {
        let name = source.name().to_string();
        if self.ingester.get(&name).is_none() {
            return Err(KairosError::InvalidInput(format!(
                "attach_source: {name} has no telemetry here — new tenants go through add_workload"
            )));
        }
        self.sources.insert(name, source);
        Ok(())
    }

    /// Replica counts for tenants running more than one copy — part of
    /// the membership view a network balancer adopts on failover (the
    /// shard is the ground truth for what it hosts).
    pub fn replica_counts(&self) -> Vec<(String, u32)> {
        self.replicas.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// Named anti-affinity pairs registered on this shard, in
    /// registration order (every shard carries the full fleet list).
    pub fn anti_affinity_pairs(&self) -> &[(String, String)] {
        &self.resolver.anti_affinity
    }

    /// Tenants with telemetry but no live source — what still needs
    /// [`ShardController::attach_source`] after a restore.
    pub fn detached_workloads(&self) -> Vec<String> {
        self.ingester
            .names()
            .into_iter()
            .filter(|n| !self.sources.contains_key(n))
            .collect()
    }

    // ----- balancer surface -----

    /// The shard's state rolled up for the balancer: aggregate rolling
    /// load (via [`kairos_traces::aggregate`]), machines in use,
    /// placement health, and per-tenant forecast peaks.
    pub fn summary(&self) -> ShardSummary {
        let names = self.ingester.names();
        let windows: Vec<[kairos_types::TimeSeries; 4]> = names
            .iter()
            .filter_map(|n| self.ingester.get(n).map(|t| t.history()))
            .collect();
        let full = ShardAggregate::from_windows(windows.iter(), self.cfg.telemetry.interval_secs);
        let aggregate = AggregateSketch::of(&full, &self.cfg.sketch);
        // One forecast pass feeds both the placement check and the
        // per-tenant peaks (forecasting every tenant is the expensive
        // part of a summary).
        let profiles = self.forecast_fleet();
        let (feasible, violation) = match self.verify_with(&profiles) {
            Some(e) => (e.feasible, e.violation),
            None => (!self.planned_once, 0.0),
        };
        let peak = |s: &kairos_types::TimeSeries| {
            if s.is_empty() {
                0.0
            } else {
                s.max()
            }
        };
        let tenant_loads = profiles
            .iter()
            .map(|p| TenantLoad {
                name: p.name.clone(),
                replicas: p.replicas,
                cpu_peak: peak(&p.cpu_cores),
                ram_peak: peak(&p.ram_bytes),
                ws_peak: peak(&p.disk_working_set_bytes),
                rate_peak: peak(&p.disk_update_rows_per_sec),
            })
            .collect();
        ShardSummary {
            tenants: names.len(),
            planned: self.planned_once,
            machines_used: self.placement.machines_used(),
            feasible,
            violation,
            resolve_failed: self.last_resolve_failed,
            drifting: self.drift_snapshot().iter().filter(|d| d.drifted).count(),
            aggregate,
            tenant_loads,
        }
    }

    /// [`ShardController::summary`] through a staleness-bounded cache:
    /// recomputed whenever the shard's state actually changed (plan,
    /// membership, handoff, failed solve — see the invalidation hooks) or
    /// when the cached copy is older than
    /// [`ControllerConfig::summary_refresh_ticks`]. This is the balance
    /// round's hot path: a quiet shard's summary is a clone, not a
    /// fleet-wide forecast pass. Caveat: forecast-derived fields
    /// (`feasible`, tenant peaks, `drifting`) have no invalidation hook
    /// of their own — telemetry that drifts without tripping the
    /// detector (so no replan happens) is only reflected once the
    /// staleness bound expires.
    pub fn summary_cached(&mut self) -> ShardSummary {
        let refresh = self.cfg.summary_refresh_ticks;
        let digest = self.cfg.sketch.digest();
        if refresh > 0 {
            if let Some((at, sketched_as, cached)) = &self.summary_cache {
                // A cached summary sketched under a different shape is
                // stale regardless of age (the shape can change between
                // computation and use via `set_sketch_config` or a
                // restore under a new config).
                if *sketched_as == digest && self.ticks().saturating_sub(*at) < refresh {
                    return cached.clone();
                }
            }
        }
        let fresh = self.summary();
        if refresh > 0 {
            self.summary_cache = Some((self.ticks(), digest, fresh.clone()));
        }
        fresh
    }

    /// The sketch shape this shard compresses summaries and handoff
    /// frames with.
    pub fn sketch_config(&self) -> SketchConfig {
        self.cfg.sketch
    }

    /// Re-shape the telemetry sketches (mark count / verbatim tail).
    /// Invalidates the summary cache eagerly; the digest check in
    /// [`ShardController::summary_cached`] is the belt-and-braces
    /// backstop for shape changes that bypass this setter (e.g. a
    /// snapshot restored under a different config).
    pub fn set_sketch_config(&mut self, sketch: SketchConfig) {
        if self.cfg.sketch != sketch {
            self.cfg.sketch = sketch;
            self.invalidate_summary();
        }
    }

    /// Phase 1 of the handoff (reservation): would this shard still pack
    /// within `machine_budget` target machines after admitting
    /// `incoming`? Conservative — uses the greedy packer, so a `true`
    /// here means a feasible placement certainly exists.
    pub fn can_admit(&self, incoming: &WorkloadProfile, machine_budget: usize) -> bool {
        let mut profiles = self.forecast_fleet();
        profiles.push(incoming.clone());
        let Ok(problem) = self.resolver.problem(&profiles) else {
            return false;
        };
        match greedy_pack(&problem) {
            Some(g) => {
                g.machines_used <= machine_budget && evaluate(&problem, &g.assignment).feasible
            }
            None => false,
        }
    }

    /// Machines this shard would need (greedy estimate) if the named
    /// tenants were evicted. `None` when even greedy cannot pack what
    /// remains; `Some(0)` when nothing remains.
    pub fn pack_estimate(&self, exclude: &[&str]) -> Option<usize> {
        let profiles: Vec<WorkloadProfile> = self
            .forecast_fleet()
            .into_iter()
            .filter(|p| !exclude.contains(&p.name.as_str()))
            .collect();
        if profiles.is_empty() {
            return Some(0);
        }
        let problem = self.resolver.problem(&profiles).ok()?;
        greedy_pack(&problem).map(|g| g.machines_used)
    }

    /// Phase 2a of the handoff: remove a tenant from this shard,
    /// returning it — with its telemetry history — for admission
    /// elsewhere. Frees capacity only (removal is always capacity-safe);
    /// schedules an opportunistic repack. `None` if unknown.
    pub fn evict(&mut self, name: &str) -> Option<TenantHandoff> {
        let source = self.sources.remove(name)?;
        let telemetry = self
            .ingester
            .take(name)
            .expect("registered source implies telemetry");
        let replicas = self.replicas.remove(name).unwrap_or(1);
        self.planned.remove(name);
        self.envelope_planned.remove(name);
        self.placement.remove_workload(name);
        self.executor.retire(name);
        if self.planned_once {
            self.membership_changed = true;
        }
        // Chain into the caller's trace: locally that's the balance
        // round's handoff span; over RPC it's the context the frame's
        // span section delivered. No installed context ⇒ no span.
        if let Some(parent) = kairos_obs::span::current() {
            self.spans
                .open_child(parent, "evict", self.ticks(), &[("tenant", name)]);
        }
        self.log.record(
            self.ticks(),
            DecisionEvent::TenantEvicted {
                tenant: name.to_string(),
            },
        );
        self.invalidate_summary();
        Some(TenantHandoff {
            name: name.to_string(),
            replicas,
            source,
            telemetry,
            sketch: self.cfg.sketch,
        })
    }

    /// Phase 2b of the handoff: adopt an evicted tenant. Its history
    /// arrives with it, so the next tick replans membership immediately
    /// instead of re-bootstrapping, and the placement goes through this
    /// shard's capacity-safe migration planner.
    pub fn admit(&mut self, handoff: TenantHandoff) {
        let TenantHandoff {
            name,
            replicas,
            source,
            telemetry,
            sketch: _,
        } = handoff;
        self.ingester.insert(&name, telemetry);
        if replicas > 1 {
            self.replicas.insert(name.clone(), replicas);
        }
        if let Some(parent) = kairos_obs::span::current() {
            self.spans
                .open_child(parent, "admit", self.ticks(), &[("tenant", &name)]);
        }
        self.log.record(
            self.ticks(),
            DecisionEvent::TenantAdmitted {
                tenant: name.clone(),
            },
        );
        self.sources.insert(name, source);
        if self.planned_once {
            self.membership_changed = true;
        }
        self.invalidate_summary();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::SyntheticSource;
    use kairos_types::Bytes;
    use kairos_workloads::RatePattern;

    fn quick_cfg() -> ControllerConfig {
        ControllerConfig {
            horizon: 8,
            check_every: 4,
            cooldown_ticks: 8,
            ..ControllerConfig::default()
        }
    }

    fn shard_with(n: usize, tps: f64) -> ShardController {
        let mut s = ShardController::new(quick_cfg(), ConsolidationEngine::builder().build());
        for i in 0..n {
            s.add_workload(Box::new(
                SyntheticSource::new(
                    format!("t{i:02}"),
                    300.0,
                    Bytes::gib(4),
                    RatePattern::Flat { tps },
                )
                .with_noise(0.0),
            ));
        }
        s
    }

    fn run_until_planned(s: &mut ShardController, max_ticks: u64) {
        for _ in 0..max_ticks {
            if let TickOutcome::InitialPlan { .. } = s.tick() {
                return;
            }
        }
        panic!("shard never bootstrapped");
    }

    #[test]
    fn summary_reports_aggregate_and_tenants() {
        let mut s = shard_with(4, 200.0);
        run_until_planned(&mut s, 20);
        let sum = s.summary();
        assert_eq!(sum.tenants, 4);
        assert!(sum.planned);
        assert!(sum.feasible);
        assert!(sum.machines_used >= 1);
        assert_eq!(sum.tenant_loads.len(), 4);
        // 4 × 200 tps × 0.01 cores/tps = 8 aggregate cores.
        let [cpu, ram, _, rate] = sum.aggregate.peaks();
        assert!((cpu - 8.0).abs() < 0.5, "aggregate cpu {cpu}");
        assert!(ram > 0.0);
        assert!(rate > 0.0);
    }

    #[test]
    fn evict_then_admit_transfers_history_and_replans() {
        let mut donor = shard_with(4, 200.0);
        let mut receiver = shard_with(3, 200.0);
        run_until_planned(&mut donor, 20);
        run_until_planned(&mut receiver, 20);

        let forecast = donor.forecast_workload("t00").expect("known tenant");
        assert!(receiver.can_admit(&forecast, 8));

        let handoff = donor.evict("t00").expect("evictable");
        assert!(handoff.telemetry.window_len() >= 8, "history travels");
        assert!(!donor.has_workload("t00"));
        assert!(donor.placement().machine_of("t00", 0).is_none());
        assert!(donor.executor().machine_of("t00", 0).is_none());

        receiver.admit(handoff);
        assert!(receiver.has_workload("t00"));
        // The receiver replans on the next tick — membership, not a
        // bootstrap — because the telemetry arrived with the tenant.
        let outcome = receiver.tick();
        match outcome {
            TickOutcome::Replanned(r) => {
                assert_eq!(r.reason, ReplanReason::Membership);
                assert!(r.feasible);
            }
            other => panic!("expected immediate membership replan, got {other:?}"),
        }
        assert!(receiver.placement().machine_of("t00", 0).is_some());
        assert!(receiver.verify_current().expect("planned").feasible);
    }

    #[test]
    fn evict_unknown_tenant_is_none() {
        let mut s = shard_with(2, 100.0);
        assert!(s.evict("ghost").is_none());
    }

    #[test]
    fn can_admit_rejects_over_budget() {
        let mut s = shard_with(5, 200.0); // ~2 cores each → one machine
        run_until_planned(&mut s, 20);
        let big = WorkloadProfile::flat(
            "giant",
            300.0,
            8,
            10.0,
            Bytes::gib(8),
            kairos_types::DiskDemand::new(Bytes::gib(1), kairos_types::Rate(100.0)),
        );
        // A 10-core tenant cannot share the single allowed machine.
        assert!(!s.can_admit(&big, 1));
        assert!(s.can_admit(&big, 2));
    }

    #[test]
    fn pack_estimate_shrinks_with_exclusions() {
        let mut s = shard_with(6, 400.0); // 4 cores each → ~3 machines
        run_until_planned(&mut s, 20);
        let all = s.pack_estimate(&[]).expect("packable");
        let fewer = s.pack_estimate(&["t00", "t01"]).expect("packable");
        assert!(fewer <= all);
        assert_eq!(
            s.pack_estimate(&["t00", "t01", "t02", "t03", "t04", "t05"]),
            Some(0)
        );
    }
}
