//! Adapters plugging the empirical disk model into the solver.

use kairos_diskmodel::DiskModel;
use kairos_solver::DiskCombiner;
use kairos_types::{Bytes, DiskDemand, Rate};
use std::sync::Arc;

/// [`DiskCombiner`] backed by a fitted [`DiskModel`]: a machine's disk
/// utilization is the aggregate update rate over the saturation rate at
/// the aggregate working set — the §5 non-linear `diskModel(DISK_ti,
/// x_ij) < MaxDISK_j` constraint.
#[derive(Clone)]
pub struct ModelDiskCombiner {
    model: Arc<DiskModel>,
}

impl ModelDiskCombiner {
    pub fn new(model: Arc<DiskModel>) -> ModelDiskCombiner {
        ModelDiskCombiner { model }
    }

    pub fn model(&self) -> &DiskModel {
        &self.model
    }
}

impl DiskCombiner for ModelDiskCombiner {
    fn utilization(&self, ws_bytes: f64, rows_per_sec: f64) -> f64 {
        if rows_per_sec <= 0.0 {
            return 0.0;
        }
        let demand = DiskDemand::new(Bytes(ws_bytes.max(0.0) as u64), Rate(rows_per_sec));
        self.model.utilization(demand)
    }
}

/// A fixed analytic combiner for when no profile has been collected,
/// calibrated to the simulator's SATA disk + 512 MB redo log. The
/// saturation frontier has two regimes, mirroring the mechanism behind
/// Fig 4's dashed line:
///
/// * small working sets: flushing keeps up; the flat cap reflects
///   foreground log bandwidth/forces;
/// * large working sets: log reclaim binds. Sustained log bytes/s ≤
///   `log_capacity × flush_pages_per_sec × page_bytes / ws_bytes`, i.e.
///   the sustainable row rate falls as `1/ws` — the `log_row_constant`
///   default is 512 MB × 2160 pages/s × 16 KiB / 240 B-per-row ≈ 7.5e13.
#[derive(Debug, Clone)]
pub struct AnalyticDiskCombiner {
    /// Flat cap at small working sets, rows/s.
    pub rate_at_zero_ws: f64,
    /// `cap(ws) = log_row_constant / ws_bytes` in the reclaim-bound regime.
    pub log_row_constant: f64,
    /// Floor on the saturation rate.
    pub min_rate: f64,
}

impl Default for AnalyticDiskCombiner {
    fn default() -> AnalyticDiskCombiner {
        AnalyticDiskCombiner {
            rate_at_zero_ws: 28_000.0,
            log_row_constant: 7.5e13,
            min_rate: 1_200.0,
        }
    }
}

impl AnalyticDiskCombiner {
    /// The saturation row rate for a working set.
    pub fn saturation_rate(&self, ws_bytes: f64) -> f64 {
        let reclaim_bound = if ws_bytes > 0.0 {
            self.log_row_constant / ws_bytes
        } else {
            f64::INFINITY
        };
        reclaim_bound.min(self.rate_at_zero_ws).max(self.min_rate)
    }
}

impl DiskCombiner for AnalyticDiskCombiner {
    fn utilization(&self, ws_bytes: f64, rows_per_sec: f64) -> f64 {
        rows_per_sec / self.saturation_rate(ws_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_diskmodel::{DiskPoint, DiskProfile};

    fn fitted_model() -> Arc<DiskModel> {
        let mut points = Vec::new();
        for i in 1..=5 {
            let ws = i as f64 * 0.5e9;
            let sat = 40_000.0 - ws * 5e-6;
            for j in 1..=8 {
                let rate = (j as f64 * 5_000.0).min(sat);
                points.push(DiskPoint {
                    ws_bytes: ws,
                    rows_per_sec: rate,
                    write_bytes_per_sec: 240.0 * rate + ws * 0.002,
                    achieved_fraction: if j as f64 * 5_000.0 <= sat { 1.0 } else { 0.5 },
                });
            }
        }
        Arc::new(
            DiskModel::fit(&DiskProfile {
                machine: "t".into(),
                points,
            })
            .unwrap(),
        )
    }

    #[test]
    fn model_combiner_tracks_saturation() {
        let c = ModelDiskCombiner::new(fitted_model());
        let ws = 1e9;
        let sat = c.model().saturation_rate(Bytes(ws as u64));
        let u = c.utilization(ws, sat * 0.5);
        assert!((u - 0.5).abs() < 0.02, "utilization {u}");
    }

    #[test]
    fn model_combiner_zero_rate_is_free() {
        let c = ModelDiskCombiner::new(fitted_model());
        assert_eq!(c.utilization(5e9, 0.0), 0.0);
    }

    #[test]
    fn model_combiner_superlinear_in_colocated_demand() {
        // Doubling both ws and rate more than doubles utilization
        // (saturation falls with ws) — the non-linearity that breaks
        // naive packing.
        let c = ModelDiskCombiner::new(fitted_model());
        let u1 = c.utilization(1e9, 8_000.0);
        let u2 = c.utilization(2e9, 16_000.0);
        assert!(u2 > 2.0 * u1, "u1 {u1}, u2 {u2}");
    }

    #[test]
    fn analytic_combiner_shape() {
        let c = AnalyticDiskCombiner::default();
        // Flat regime at small working sets.
        assert_eq!(c.saturation_rate(1e8), c.rate_at_zero_ws);
        // Reclaim-bound regime: capacity falls as 1/ws.
        let at4 = c.saturation_rate(4e9);
        let at8 = c.saturation_rate(8e9);
        assert!((at4 / at8 - 2.0).abs() < 1e-9, "{at4} vs {at8}");
        assert!(c.utilization(0.0, 10_000.0) < c.utilization(8e9, 10_000.0));
        // Floor prevents division blowups.
        let huge = c.utilization(1e12, 1_200.0);
        assert!((huge - 1.0).abs() < 1e-9);
    }
}
