//! Sharded-control-plane scaling benchmark: tick latency and per-shard
//! re-solve time vs. shard count, under weak scaling (fixed tenants per
//! shard, so the fleet grows with the shard count), plus a strong-scaling
//! section comparing `tick_threads = 1` against the machine's full
//! parallelism at the largest fleet. The hierarchical claim under test:
//! per-shard re-solve cost stays flat as the fleet grows (each re-solver
//! only ever sees its own shard), and with enough cores the steady tick
//! stays near-flat too, because shard ticks fan out across threads.
//! Emits a JSON baseline on stdout (recorded as `BENCH_fleet.json`).
//!
//! ```text
//! cargo run --release -p kairos-bench --bin fleet_scale > BENCH_fleet.json
//! KAIROS_QUICK=1 cargo run --release -p kairos-bench --bin fleet_scale
//! KAIROS_FLEET_THREADS=4 cargo run --release -p kairos-bench --bin fleet_scale
//! ```

use kairos_bench::quick;
use kairos_controller::{ControllerConfig, SyntheticSource, TelemetryConfig, TickOutcome};
use kairos_fleet::{
    default_tick_threads, BalancerConfig, FleetConfig, FleetController, RootBalancer, RootConfig,
    Zone,
};
use kairos_net::{
    rpc, LoopbackTransport, RemoteZone, Request, Response, ShardNode, SourceEscrow, Transport,
    ZoneNode,
};
use kairos_types::Bytes;
use kairos_workloads::RatePattern;
use std::time::Instant;

const BUDGET: usize = 8;

/// Sort a sample set once; percentiles then read via the workspace's
/// shared linear-interpolated definition
/// (`kairos_types::percentile_of_sorted`, the same convention
/// `TimeSeries::percentile` reports).
fn sorted(samples: &[f64]) -> Vec<f64> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    sorted
}

/// p-th percentile over an already-sorted sample set; 0 for no samples.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    kairos_types::percentile_of_sorted(sorted, p)
}

struct ScaleResult {
    shards: usize,
    tenants: usize,
    ticks: u64,
    tick_threads: usize,
    steady_tick_usecs: f64,
    steady_tick_p50_usecs: f64,
    steady_tick_p99_usecs: f64,
    /// All ticks, including solves and balance rounds — the latency the
    /// control plane actually exhibits. Kept for baseline continuity,
    /// but it conflates two populations that differ by orders of
    /// magnitude; read the registry-sourced poll/solve split below.
    tick_p50_usecs: f64,
    tick_p99_usecs: f64,
    /// The fleet registry's own tick-latency split: quiet
    /// poll-and-ingest ticks vs. ticks that solved or moved tenants
    /// (`kairos_fleet_{poll,solve}_tick_usecs`). Log-bucketed
    /// upper-bound percentiles (≤25% bucket error) — the honest
    /// replacement for the conflated `tick_p99_usecs`.
    poll_ticks: u64,
    poll_tick_p50_usecs: f64,
    poll_tick_p99_usecs: f64,
    solve_ticks: u64,
    solve_tick_p50_usecs: f64,
    solve_tick_p99_usecs: f64,
    /// Mean wall-clock per solve (bootstrap + re-solves), averaged over
    /// shards — the quantity that must stay flat under weak scaling, and
    /// the figure comparable with pre-overhaul baselines.
    mean_resolve_ms: f64,
    /// Warm re-solves only (drift/membership replans — the online hot
    /// path the solver overhaul targets).
    mean_warm_resolve_ms: f64,
    resolve_p50_ms: f64,
    resolve_p99_ms: f64,
    /// One-time cold bootstrap solves (one per shard).
    mean_bootstrap_ms: f64,
    resolves: u64,
    handoffs_completed: u64,
    handoffs_rejected: u64,
    total_machines: usize,
    zero_violations: bool,
    within_budget: bool,
}

fn run_scale(
    shards: usize,
    tenants_per_shard: usize,
    ticks: u64,
    tick_threads: usize,
    tracing: bool,
    spans: bool,
) -> ScaleResult {
    let cfg = FleetConfig {
        shards,
        shard: ControllerConfig {
            horizon: 12,
            check_every: 4,
            cooldown_ticks: 12,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: BUDGET,
            balance_every: 6,
            max_moves_per_round: 4,
            ..BalancerConfig::default()
        },
        tick_threads,
    };
    let mut fleet = FleetController::new(cfg);
    if !tracing {
        // Disabled-sink run: decision recording becomes a branch and
        // nothing else — the overhead section compares this against the
        // traced default.
        fleet.set_tracing(false);
    }
    if spans {
        // Spans-on run: every balance round opens a root span, handoffs
        // chain balancer → shard child spans, and each shard's evict and
        // admit record into its log — the full causal-tracing hot path.
        fleet.set_span_tracing(true);
    }
    let spike_start = ticks / 3;
    let spike_end = (2 * ticks) / 3;
    for shard in 0..shards {
        for i in 0..tenants_per_shard {
            let base = 190.0 + 10.0 * (i % 4) as f64;
            let name = format!("s{shard}-t{i:02}");
            // Shard 0 takes a regional spike; the rest stay flat — the
            // balancer's cross-shard work scales with the fleet.
            let src = if shard == 0 && i < tenants_per_shard * 2 / 5 {
                SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps: base })
                    .then_at(spike_start, RatePattern::Flat { tps: 640.0 })
                    .then_at(spike_end, RatePattern::Flat { tps: base })
            } else {
                SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps: base })
            };
            fleet.add_workload_to(shard, Box::new(src));
        }
    }

    let mut steady_usecs: Vec<f64> = Vec::with_capacity(ticks as usize);
    let mut all_usecs: Vec<f64> = Vec::with_capacity(ticks as usize);
    let mut resolve_ms: Vec<f64> = Vec::new();
    let mut bootstrap_ms: Vec<f64> = Vec::new();
    for _ in 0..ticks {
        let t0 = Instant::now();
        let report = fleet.tick();
        let wall = t0.elapsed().as_secs_f64();
        all_usecs.push(wall * 1e6);
        let mut eventful = report.handoffs.iter().any(|h| h.completed());
        for o in &report.outcomes {
            match o {
                TickOutcome::InitialPlan { solve_secs, .. } => {
                    eventful = true;
                    bootstrap_ms.push(solve_secs * 1e3);
                }
                TickOutcome::Replanned(r) => {
                    eventful = true;
                    resolve_ms.push(r.solve_secs * 1e3);
                }
                _ => {}
            }
        }
        if !eventful {
            steady_usecs.push(wall * 1e6);
        }
    }

    let mut resolves = 0u64;
    for s in fleet.shards() {
        resolves += s.stats().resolves;
    }
    let audit = fleet.audit();
    let stats = fleet.stats();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let steady_sorted = sorted(&steady_usecs);
    let all_sorted = sorted(&all_usecs);
    let resolve_sorted = sorted(&resolve_ms);
    // The registry's own split of the same tick population: handles are
    // get-or-register, so fetching by name reads the live histograms the
    // fleet recorded into.
    let poll_hist = fleet
        .metrics_registry()
        .histogram("kairos_fleet_poll_tick_usecs");
    let solve_hist = fleet
        .metrics_registry()
        .histogram("kairos_fleet_solve_tick_usecs");
    ScaleResult {
        shards,
        tenants: shards * tenants_per_shard,
        ticks,
        tick_threads,
        steady_tick_usecs: mean(&steady_usecs),
        steady_tick_p50_usecs: percentile(&steady_sorted, 50.0),
        steady_tick_p99_usecs: percentile(&steady_sorted, 99.0),
        tick_p50_usecs: percentile(&all_sorted, 50.0),
        tick_p99_usecs: percentile(&all_sorted, 99.0),
        poll_ticks: poll_hist.count(),
        poll_tick_p50_usecs: poll_hist.percentile(0.50) as f64,
        poll_tick_p99_usecs: poll_hist.percentile(0.99) as f64,
        solve_ticks: solve_hist.count(),
        solve_tick_p50_usecs: solve_hist.percentile(0.50) as f64,
        solve_tick_p99_usecs: solve_hist.percentile(0.99) as f64,
        mean_resolve_ms: {
            let all: Vec<f64> = bootstrap_ms.iter().chain(&resolve_ms).copied().collect();
            mean(&all)
        },
        mean_warm_resolve_ms: mean(&resolve_ms),
        resolve_p50_ms: percentile(&resolve_sorted, 50.0),
        resolve_p99_ms: percentile(&resolve_sorted, 99.0),
        mean_bootstrap_ms: mean(&bootstrap_ms),
        resolves,
        handoffs_completed: stats.handoffs_completed,
        handoffs_rejected: stats.handoffs_rejected,
        total_machines: audit.total_machines(),
        zero_violations: audit.zero_violations(),
        within_budget: audit.within_budget(BUDGET),
    }
}

fn result_json(r: &ScaleResult) -> String {
    format!(
        concat!(
            "{{\"shards\":{},\"tenants\":{},\"ticks\":{},\"tick_threads\":{},",
            "\"steady_tick_usecs\":{:.2},\"steady_tick_p50_usecs\":{:.2},\"steady_tick_p99_usecs\":{:.2},",
            "\"tick_p50_usecs\":{:.2},\"tick_p99_usecs\":{:.2},",
            "\"poll_ticks\":{},\"poll_tick_p50_usecs\":{:.2},\"poll_tick_p99_usecs\":{:.2},",
            "\"solve_ticks\":{},\"solve_tick_p50_usecs\":{:.2},\"solve_tick_p99_usecs\":{:.2},",
            "\"mean_resolve_ms\":{:.3},\"mean_warm_resolve_ms\":{:.3},\"resolve_p50_ms\":{:.3},\"resolve_p99_ms\":{:.3},\"mean_bootstrap_ms\":{:.3},\"resolves\":{},",
            "\"handoffs_completed\":{},\"handoffs_rejected\":{},",
            "\"total_machines\":{},\"zero_violations\":{},\"within_budget\":{}}}"
        ),
        r.shards,
        r.tenants,
        r.ticks,
        r.tick_threads,
        r.steady_tick_usecs,
        r.steady_tick_p50_usecs,
        r.steady_tick_p99_usecs,
        r.tick_p50_usecs,
        r.tick_p99_usecs,
        r.poll_ticks,
        r.poll_tick_p50_usecs,
        r.poll_tick_p99_usecs,
        r.solve_ticks,
        r.solve_tick_p50_usecs,
        r.solve_tick_p99_usecs,
        r.mean_resolve_ms,
        r.mean_warm_resolve_ms,
        r.resolve_p50_ms,
        r.resolve_p99_ms,
        r.mean_bootstrap_ms,
        r.resolves,
        r.handoffs_completed,
        r.handoffs_rejected,
        r.total_machines,
        r.zero_violations,
        r.within_budget,
    )
}

/// RPC latency of the network plane (`kairos-net`), measured over the
/// deterministic loopback (the same dispatch path TCP wraps, minus the
/// socket): the Ping floor and the full two-phase handoff round trip
/// (forecast → reserve → evict → admit, a tenant ping-ponged between
/// two planned shard nodes with its telemetry as the real wire frame).
/// A TCP Ping over localhost records the socket floor alongside. The
/// loopback handoff figure is what `bench_gate` holds the boundary to.
struct NetResult {
    ping_rpc_usecs: f64,
    ping_rpc_p99_usecs: f64,
    handoff_rpc_roundtrip_usecs: f64,
    handoff_rpc_roundtrip_p99_usecs: f64,
    /// The same two-phase handoff with causal span tracing armed end to
    /// end: the caller holds an open root span, every frame carries the
    /// 28-byte span section, and both shard nodes record child spans.
    handoff_rpc_roundtrip_spans_usecs: f64,
    handoff_frame_bytes: usize,
    /// Localhost TCP Ping mean; negative when the bind failed (no
    /// loopback networking in the sandbox).
    tcp_ping_rpc_usecs: f64,
}

fn run_net_bench() -> NetResult {
    let cfg = ControllerConfig {
        horizon: 8,
        check_every: 4,
        cooldown_ticks: 8,
        ..ControllerConfig::default()
    };
    let transport = LoopbackTransport::new();
    let escrow = SourceEscrow::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    for shard in 0..2 {
        let node = ShardNode::new(
            cfg,
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        handles.push(
            node.serve(&transport, &format!("shard-{shard}"))
                .expect("loopback serves"),
        );
        nodes.push(node);
    }
    for (shard, node) in nodes.iter().enumerate() {
        node.with_shard(|s| {
            for i in 0..8 {
                s.add_workload(Box::new(
                    SyntheticSource::new(
                        format!("n{shard}-t{i:02}"),
                        300.0,
                        Bytes::gib(4),
                        RatePattern::Flat { tps: 200.0 },
                    )
                    .with_noise(0.0),
                ));
            }
            for _ in 0..20 {
                if let TickOutcome::InitialPlan { .. } = s.tick() {
                    break;
                }
            }
        });
    }
    let mut conns: Vec<_> = (0..2)
        .map(|s| transport.connect(&format!("shard-{s}")).expect("connects"))
        .collect();

    // Ping floor.
    let mut ping_usecs = Vec::with_capacity(2000);
    for _ in 0..2000 {
        let t0 = Instant::now();
        let response = rpc::call(conns[0].as_mut(), &Request::Ping).expect("ping");
        ping_usecs.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(matches!(response, Response::Pong { .. }));
    }

    // The two-phase handoff, ping-ponged: donor forecasts the tenant,
    // the receiver certifies the reservation, then evict + admit carry
    // the telemetry as its checksummed wire frame.
    let tenant = "n0-t00".to_string();
    let mut handoff_usecs = Vec::with_capacity(64);
    let mut frame_bytes = 0usize;
    for round in 0..64u64 {
        let donor = (round % 2) as usize;
        let receiver = 1 - donor;
        let t0 = Instant::now();
        let Response::Forecast(Some(profile)) = rpc::call(
            conns[donor].as_mut(),
            &Request::Forecast {
                tenant: tenant.clone(),
            },
        )
        .expect("forecast") else {
            panic!("tenant must forecast on its current shard");
        };
        let Response::CanAdmit(true) = rpc::call(
            conns[receiver].as_mut(),
            &Request::CanAdmit {
                profile,
                budget: 16,
            },
        )
        .expect("reserve") else {
            panic!("reservation must hold at a loose budget");
        };
        let Response::Evicted(Some(wire)) = rpc::call(
            conns[donor].as_mut(),
            &Request::Evict {
                tenant: tenant.clone(),
            },
        )
        .expect("evict") else {
            panic!("tenant must evict");
        };
        frame_bytes = wire.len();
        let response =
            rpc::call(conns[receiver].as_mut(), &Request::Admit { frame: wire }).expect("admit");
        assert!(matches!(response, Response::Done));
        handoff_usecs.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    // The same handshake with span tracing armed: shard logs record
    // evict/admit child spans, and the bench holds an open root so every
    // frame pays the span section. bench_gate holds the spans-on mean to
    // 1.15× of the plain figure above.
    for (shard, node) in nodes.iter().enumerate() {
        node.with_shard(|s| {
            s.configure_spans(kairos_obs::span::node_for_shard(shard), true);
        });
    }
    let mut bench_spans = kairos_obs::SpanLog::new(kairos_obs::span::NODE_BALANCER);
    bench_spans.set_enabled(true);
    let mut handoff_spans_usecs = Vec::with_capacity(64);
    for round in 0..64u64 {
        let donor = (round % 2) as usize;
        let receiver = 1 - donor;
        let root = bench_spans.open_root("bench_handoff", round, &[("tenant", &tenant)]);
        let _guard = kairos_obs::span::install(root);
        let t0 = Instant::now();
        let Response::Forecast(Some(profile)) = rpc::call(
            conns[donor].as_mut(),
            &Request::Forecast {
                tenant: tenant.clone(),
            },
        )
        .expect("forecast") else {
            panic!("tenant must forecast on its current shard");
        };
        let Response::CanAdmit(true) = rpc::call(
            conns[receiver].as_mut(),
            &Request::CanAdmit {
                profile,
                budget: 16,
            },
        )
        .expect("reserve") else {
            panic!("reservation must hold at a loose budget");
        };
        let Response::Evicted(Some(wire)) = rpc::call(
            conns[donor].as_mut(),
            &Request::Evict {
                tenant: tenant.clone(),
            },
        )
        .expect("evict") else {
            panic!("tenant must evict");
        };
        let response =
            rpc::call(conns[receiver].as_mut(), &Request::Admit { frame: wire }).expect("admit");
        assert!(matches!(response, Response::Done));
        handoff_spans_usecs.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    // Socket floor: the same Ping over a real localhost TCP connection.
    let tcp_ping_rpc_usecs = (|| -> Option<f64> {
        let tcp = kairos_net::TcpTransport::new();
        let handle = nodes[0].serve(&tcp, "127.0.0.1:0").ok()?;
        let mut conn = tcp.connect(&handle.endpoint).ok()?;
        let mut usecs = Vec::with_capacity(1000);
        for _ in 0..1000 {
            let t0 = Instant::now();
            rpc::call(conn.as_mut(), &Request::Ping).ok()?;
            usecs.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        Some(usecs.iter().sum::<f64>() / usecs.len() as f64)
    })()
    .unwrap_or(-1.0);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let ping_sorted = sorted(&ping_usecs);
    let handoff_sorted = sorted(&handoff_usecs);
    NetResult {
        ping_rpc_usecs: mean(&ping_usecs),
        ping_rpc_p99_usecs: percentile(&ping_sorted, 99.0),
        handoff_rpc_roundtrip_usecs: mean(&handoff_usecs),
        handoff_rpc_roundtrip_p99_usecs: percentile(&handoff_sorted, 99.0),
        handoff_rpc_roundtrip_spans_usecs: mean(&handoff_spans_usecs),
        handoff_frame_bytes: frame_bytes,
        tcp_ping_rpc_usecs,
    }
}

/// The hierarchy section: a fixed population of zones behind loopback
/// RPC ([`ZoneNode`] / [`RemoteZone`]), the root balancer running
/// [`RootBalancer::run_round`] against their constant-size roll-ups.
/// Shards per zone scale 10 → 40 (250 → 1,000 shards) while the zone
/// count stays fixed, so the flat-cost claim is directly testable: the
/// root's per-round work is O(zones), and the sketched roll-up keeps
/// each zone's answer the same size no matter how many shards (or how
/// long a telemetry window) sit beneath it. Measured rounds are steady
/// state (balanced load, no group moves) — the cost floor every round
/// pays; group moves are covered by the hierarchy test suites.
struct HierarchyScale {
    shards_per_zone: usize,
    shards: usize,
    tenants: usize,
    warmup_ticks: u64,
    rounds: u64,
    root_round_mean_usecs: f64,
    root_round_max_usecs: f64,
    /// Mean wall time of the zone-side roll-up refresh per round — the
    /// per-zone work (O(shards beneath it)) that deployments run
    /// concurrently inside each zone's tick, reported separately so the
    /// root's own O(zones) cost is what the flatness ratio gates.
    zone_refresh_mean_usecs: f64,
    /// Bytes of zone-summary roll-up the root ingested per round
    /// (`root_summary_bytes_total / rounds`).
    summary_bytes_per_round: u64,
    /// Mean encoded size of one zone's roll-up frame.
    zone_rollup_bytes: f64,
    groups_moved: u64,
}

/// Deterministic flat source for hierarchy-bench tenants: rate keyed
/// off the name's digits only, so zone binders rebuild it from the
/// wire name alone and every zone carries the same balanced load.
fn hier_source(name: &str) -> Box<dyn kairos_controller::TelemetrySource> {
    let digits: u64 = name
        .bytes()
        .filter(u8::is_ascii_digit)
        .fold(0, |acc, b| acc * 10 + u64::from(b - b'0'));
    let tps = 190.0 + 10.0 * (digits % 4) as f64;
    Box::new(
        SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps }).with_noise(0.0),
    )
}

fn run_hierarchy(
    zones: usize,
    shards_per_zone: usize,
    tenants_per_shard: usize,
    groups: usize,
    warmup_ticks: u64,
    rounds: u64,
    tick_threads: usize,
) -> HierarchyScale {
    let transport = LoopbackTransport::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    let mut remotes = Vec::new();
    for z in 0..zones {
        let cfg = FleetConfig {
            shards: shards_per_zone,
            shard: ControllerConfig {
                horizon: 6,
                check_every: 4,
                cooldown_ticks: 8,
                // Short windows keep 25k tenants in memory; the roll-up
                // size would be the same at capacity 288 — that is the
                // sketch's point.
                telemetry: TelemetryConfig {
                    window_capacity: 48,
                    ..TelemetryConfig::default()
                },
                ..ControllerConfig::default()
            },
            balancer: BalancerConfig {
                machines_per_shard: BUDGET,
                balance_every: 6,
                max_moves_per_round: 2,
                ..BalancerConfig::default()
            },
            tick_threads,
        };
        let mut fleet = FleetController::new(cfg);
        fleet.set_tracing(false);
        for s in 0..shards_per_zone {
            for i in 0..tenants_per_shard {
                fleet.add_workload_to(s, hier_source(&format!("z{z:02}s{s:02}t{i:02}")));
            }
        }
        let zone = Zone::new(
            z,
            fleet,
            groups,
            Box::new(|name: &str, _tick: u64| Some(hier_source(name))),
        );
        let node = ZoneNode::new(zone);
        let handle = node
            .serve(&transport, &format!("hz-{z}"))
            .expect("zone serves on loopback");
        let remote =
            RemoteZone::connect(&transport, &handle.endpoint, 300.0).expect("root connects");
        nodes.push(node);
        handles.push(handle);
        remotes.push(remote);
    }

    for _ in 0..warmup_ticks {
        for remote in &mut remotes {
            remote.tick().expect("zone ticks over rpc");
        }
    }

    let mut root = RootBalancer::new(RootConfig {
        balancer: BalancerConfig {
            // `machines_per_shard` reads as machines per *zone* here.
            machines_per_shard: BUDGET * shards_per_zone,
            balance_every: 1,
            max_moves_per_round: 2,
            low_watermark: 0,
            cooldown_rounds: 1,
        },
        groups,
    });
    let mut round_usecs: Vec<f64> = Vec::with_capacity(rounds as usize);
    let mut refresh_usecs: Vec<f64> = Vec::with_capacity(rounds as usize);
    for round in 1..=rounds {
        for remote in &mut remotes {
            remote.tick().expect("zone ticks over rpc");
        }
        // Zone-side roll-up refresh, timed separately: each zone
        // recomputes its roll-up memo for the new tick. This work is
        // zone-local — in a deployment the zones do it concurrently as
        // part of their own tick — so it is reported, not folded into
        // the root's per-round cost.
        let t0 = Instant::now();
        for remote in &mut remotes {
            let _ = kairos_fleet::balancer::ShardHandle::summary(remote);
        }
        refresh_usecs.push(t0.elapsed().as_secs_f64() * 1e6);
        // The root's own round: O(zones) summary RPCs against the warm
        // memos (constant-size frames) plus the balance decision.
        let t0 = Instant::now();
        root.run_round(&mut remotes, warmup_ticks + round);
        round_usecs.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    let rollup_bytes: Vec<f64> = nodes
        .iter()
        .map(|n| n.with_zone(|z| z.rollup().encoded_len() as f64))
        .collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let metrics = root.metrics_registry();
    let result = HierarchyScale {
        shards_per_zone,
        shards: zones * shards_per_zone,
        tenants: zones * shards_per_zone * tenants_per_shard,
        warmup_ticks,
        rounds,
        root_round_mean_usecs: mean(&round_usecs),
        root_round_max_usecs: round_usecs.iter().copied().fold(0.0, f64::max),
        zone_refresh_mean_usecs: mean(&refresh_usecs),
        summary_bytes_per_round: metrics.counter("root_summary_bytes_total").get() / rounds.max(1),
        zone_rollup_bytes: mean(&rollup_bytes),
        groups_moved: metrics.counter("root_groups_moved").get(),
    };
    for handle in handles {
        handle.stop();
    }
    result
}

fn hierarchy_json(r: &HierarchyScale) -> String {
    format!(
        concat!(
            "{{\"shards_per_zone\":{},\"shards\":{},\"tenants\":{},",
            "\"warmup_ticks\":{},\"rounds\":{},",
            "\"root_round_mean_usecs\":{:.2},\"root_round_max_usecs\":{:.2},",
            "\"zone_refresh_mean_usecs\":{:.2},",
            "\"summary_bytes_per_round\":{},\"zone_rollup_bytes\":{:.1},\"groups_moved\":{}}}"
        ),
        r.shards_per_zone,
        r.shards,
        r.tenants,
        r.warmup_ticks,
        r.rounds,
        r.root_round_mean_usecs,
        r.root_round_max_usecs,
        r.zone_refresh_mean_usecs,
        r.summary_bytes_per_round,
        r.zone_rollup_bytes,
        r.groups_moved,
    )
}

fn main() {
    let (scales, tenants_per_shard, ticks): (&[usize], usize, u64) = if quick() {
        (&[1, 2, 4], 12, 90)
    } else {
        (&[1, 2, 4, 8], 25, 150)
    };
    let threads = default_tick_threads();
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    let results: Vec<ScaleResult> = scales
        .iter()
        .map(|&s| run_scale(s, tenants_per_shard, ticks, threads, true, false))
        .collect();

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fleet_scale\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"tenants_per_shard\":{tenants_per_shard},\"ticks\":{ticks},\"machines_per_shard\":{BUDGET},\"tick_threads\":{threads},\"available_parallelism\":{parallelism},\"quick\":{}}},\n",
        quick()
    ));
    out.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&result_json(r));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    // The weak-scaling headline: per-shard re-solve time at the largest
    // scale relative to one shard (must stay within ~2x for the
    // hierarchical decomposition to be doing its job).
    let max_shards = *scales.last().expect("non-empty scales");
    let base = results.first().map(|r| r.mean_resolve_ms).unwrap_or(0.0);
    let last = results.last().map(|r| r.mean_resolve_ms).unwrap_or(0.0);
    let ratio = if base > 0.0 { last / base } else { 0.0 };
    let warm_base = results
        .first()
        .map(|r| r.mean_warm_resolve_ms)
        .unwrap_or(0.0);
    let warm_last = results
        .last()
        .map(|r| r.mean_warm_resolve_ms)
        .unwrap_or(0.0);
    let warm_ratio = if warm_base > 0.0 {
        warm_last / warm_base
    } else {
        0.0
    };
    // Steady tick normalized per shard: the serial poll/ingest work is
    // inherently O(tenants), so the hierarchical claim is that the
    // *per-shard* cost stays flat as shards multiply.
    let steady_base = results.first().map(|r| r.steady_tick_usecs).unwrap_or(0.0);
    let steady_last = results.last().map(|r| r.steady_tick_usecs).unwrap_or(0.0);
    let per_shard_ratio = if steady_base > 0.0 && max_shards > 0 {
        (steady_last / max_shards as f64) / steady_base
    } else {
        0.0
    };
    out.push_str(&format!(
        "  \"weak_scaling\": {{\"resolve_ms_at_1_shard\":{base:.3},\"resolve_ms_at_max_shards\":{last:.3},\"ratio\":{ratio:.3},\"warm_resolve_ms_at_1_shard\":{warm_base:.3},\"warm_resolve_ms_at_max_shards\":{warm_last:.3},\"warm_ratio\":{warm_ratio:.3},\"steady_tick_per_shard_ratio\":{per_shard_ratio:.3}}},\n"
    ));

    // Strong scaling: the largest fleet, serial ticks vs. the full
    // thread fan-out. On a many-core box the threaded steady tick should
    // approach the 1-shard figure; on a 1-core box the two runs are the
    // same work and the ratio records that honestly (see
    // available_parallelism in config).
    let serial = run_scale(max_shards, tenants_per_shard, ticks, 1, true, false);
    // At least 2 threads so the scoped fan-out path is genuinely
    // measured even where the machine offers one core.
    let threaded = run_scale(
        max_shards,
        tenants_per_shard,
        ticks,
        threads.max(parallelism).max(2),
        true,
        false,
    );
    let speedup = if threaded.steady_tick_usecs > 0.0 {
        serial.steady_tick_usecs / threaded.steady_tick_usecs
    } else {
        0.0
    };
    let one_shard_steady = results.first().map(|r| r.steady_tick_usecs).unwrap_or(0.0);
    let vs_one_shard = if one_shard_steady > 0.0 {
        threaded.steady_tick_usecs / one_shard_steady
    } else {
        0.0
    };
    out.push_str("  \"strong_scaling\": {\n");
    out.push_str(&format!("    \"shards\": {max_shards},\n"));
    out.push_str(&format!("    \"serial\": {},\n", result_json(&serial)));
    out.push_str(&format!("    \"threaded\": {},\n", result_json(&threaded)));
    out.push_str(&format!(
        "    \"steady_tick_speedup\": {speedup:.3},\n    \"threaded_steady_vs_1_shard\": {vs_one_shard:.3}\n"
    ));
    out.push_str("  },\n");

    // Decision-trace overhead: the 1-shard scale run back-to-back with
    // the sink enabled and disabled (adjacent runs, so process warm-up
    // does not bias the pair). Recording is a branch plus a ring push on
    // rare events, so the traced steady tick should sit within noise of
    // the disabled run (the acceptance envelope is 10% on p50).
    let traced = run_scale(scales[0], tenants_per_shard, ticks, threads, true, false);
    let untraced = run_scale(scales[0], tenants_per_shard, ticks, threads, false, false);
    let overhead_ratio = if untraced.steady_tick_p50_usecs > 0.0 {
        traced.steady_tick_p50_usecs / untraced.steady_tick_p50_usecs
    } else {
        0.0
    };
    // Span-tracing overhead, same discipline: the spans-on run against
    // the traced default (spans are the increment over tracing, not over
    // a fully disabled sink). A steady tick opens no spans at all —
    // roots only open on balance rounds — so the p50 must sit within
    // noise; bench_gate holds the ratio to 1.15×.
    let spanned = run_scale(scales[0], tenants_per_shard, ticks, threads, true, true);
    let spans_ratio = if traced.steady_tick_p50_usecs > 0.0 {
        spanned.steady_tick_p50_usecs / traced.steady_tick_p50_usecs
    } else {
        0.0
    };
    out.push_str(&format!(
        concat!(
            "  \"obs_overhead\": {{\"shards\":{},",
            "\"steady_tick_p50_traced_usecs\":{:.2},",
            "\"steady_tick_p50_disabled_usecs\":{:.2},",
            "\"traced_over_disabled_p50_ratio\":{:.3},",
            "\"steady_tick_p50_spans_usecs\":{:.2},",
            "\"spans_over_plain_p50_ratio\":{:.3}}},\n"
        ),
        scales[0],
        traced.steady_tick_p50_usecs,
        untraced.steady_tick_p50_usecs,
        overhead_ratio,
        spanned.steady_tick_p50_usecs,
        spans_ratio,
    ));

    // The network plane: RPC latency floors and the two-phase handoff
    // round trip — gated by bench_gate so the new process boundary is
    // perf-guarded from day one.
    let net = run_net_bench();
    out.push_str(&format!(
        concat!(
            "  \"net\": {{\"transport\":\"loopback\",",
            "\"ping_rpc_usecs\":{:.2},\"ping_rpc_p99_usecs\":{:.2},",
            "\"handoff_rpc_roundtrip_usecs\":{:.2},\"handoff_rpc_roundtrip_p99_usecs\":{:.2},",
            "\"handoff_rpc_roundtrip_spans_usecs\":{:.2},",
            "\"handoff_spans_over_plain_ratio\":{:.3},",
            "\"handoff_frame_bytes\":{},\"tcp_ping_rpc_usecs\":{:.2}}}"
        ),
        net.ping_rpc_usecs,
        net.ping_rpc_p99_usecs,
        net.handoff_rpc_roundtrip_usecs,
        net.handoff_rpc_roundtrip_p99_usecs,
        net.handoff_rpc_roundtrip_spans_usecs,
        if net.handoff_rpc_roundtrip_usecs > 0.0 {
            net.handoff_rpc_roundtrip_spans_usecs / net.handoff_rpc_roundtrip_usecs
        } else {
            0.0
        },
        net.handoff_frame_bytes,
        net.tcp_ping_rpc_usecs,
    ));

    // The mega-fleet: a fixed zone population behind loopback RPC,
    // shards per zone scaling 250 → 1,000 total shards under the root
    // balancer. The gated claim is the flat per-round root cost
    // (root_cost_ratio, O(zones) work against constant-size sketched
    // roll-ups) and that a zone's roll-up frame does not grow with the
    // shard count beneath it (rollup_bytes_ratio).
    const ZONES: usize = 25;
    const GROUPS: usize = 64;
    let (hier_tenants_per_shard, hier_warmup, hier_rounds) =
        if quick() { (25, 12, 4) } else { (25, 16, 10) };
    let hier_threads = threads.max(parallelism);
    let hier: Vec<HierarchyScale> = [10usize, 40]
        .iter()
        .map(|&spz| {
            run_hierarchy(
                ZONES,
                spz,
                hier_tenants_per_shard,
                GROUPS,
                hier_warmup,
                hier_rounds,
                hier_threads,
            )
        })
        .collect();
    let base = &hier[0];
    let last = &hier[hier.len() - 1];
    let root_cost_ratio = if base.root_round_mean_usecs > 0.0 {
        last.root_round_mean_usecs / base.root_round_mean_usecs
    } else {
        0.0
    };
    let rollup_bytes_ratio = if base.zone_rollup_bytes > 0.0 {
        last.zone_rollup_bytes / base.zone_rollup_bytes
    } else {
        0.0
    };
    out.push_str(",\n  \"hierarchy\": {\n");
    out.push_str(&format!(
        "    \"zones\": {ZONES}, \"groups\": {GROUPS}, \"tenants_per_shard\": {hier_tenants_per_shard},\n"
    ));
    out.push_str("    \"scales\": [\n");
    for (i, r) in hier.iter().enumerate() {
        out.push_str("      ");
        out.push_str(&hierarchy_json(r));
        out.push_str(if i + 1 < hier.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"root_cost_ratio\": {root_cost_ratio:.3},\n    \"rollup_bytes_ratio\": {rollup_bytes_ratio:.3}\n"
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    print!("{out}");
}
