//! Property-based tests on the system's core invariants.
//!
//! Originally written against `proptest`; the build environment is offline,
//! so the same properties now run on an in-repo harness: each case is
//! generated from a seeded [`SplitMix64`] stream, which keeps the tests
//! fully deterministic while still sweeping the input space. Failures
//! report the offending case index/seed for replay.
//!
//! Seeds come from [`SplitMix64::from_env`]: CI sweeps `KAIROS_TEST_SEED`
//! over a fixed matrix so every property is exercised on several slices
//! of the input space, while any one run stays replayable.

use kairos::dbsim::{ClockCache, PageId};
use kairos::diskmodel::{DiskModel, DiskPoint, DiskProfile};
use kairos::solver::{
    evaluate, fractional_lower_bound, greedy_pack, polish, solve, Assignment, ConsolidationProblem,
    LinearDiskCombiner, SolverConfig, TargetMachine, WorkloadSpec,
};
use kairos::types::{Bytes, DiskDemand, Rate, SplitMix64, TimeSeries};
use std::sync::Arc;

/// A random consolidation problem: 2–11 workloads, 1–5 windows.
fn random_problem(rng: &mut SplitMix64) -> ConsolidationProblem {
    let n = 2 + rng.next_range(10) as usize;
    let windows = 1 + rng.next_range(5) as usize;
    let workloads: Vec<WorkloadSpec> = (0..n)
        .map(|i| {
            let cpu = rng.next_in(0.1, 5.0);
            let ram = rng.next_in(1e9, 30e9);
            let ws = ram * 0.3;
            let rate = rng.next_in(10.0, 2_000.0);
            WorkloadSpec::flat(format!("w{i}"), windows, cpu, ram, ws, rate)
        })
        .collect();
    ConsolidationProblem::new(
        workloads,
        TargetMachine::paper_target(),
        n,
        Arc::new(LinearDiskCombiner::default()),
    )
}

/// Any plan the solver returns satisfies every constraint, and never beats
/// the fractional lower bound.
#[test]
fn solver_output_is_feasible_and_bounded() {
    let mut rng = SplitMix64::from_env(0xFEA51B1E);
    for case in 0..24 {
        let problem = random_problem(&mut rng);
        let cfg = SolverConfig {
            probe_evals: 300,
            final_evals: 800,
            polish_rounds: 20,
            ..Default::default()
        };
        if let Ok(report) = solve(&problem, &cfg) {
            assert!(report.evaluation.feasible, "case {case}");
            let again = evaluate(&problem, &report.assignment);
            assert!(again.feasible, "case {case}: replay must stay feasible");
            assert!(
                report.assignment.machines_used() >= fractional_lower_bound(&problem),
                "case {case}: integer solution beat the fractional bound"
            );
            assert_eq!(
                report.assignment.machine_of.len(),
                problem.slots().len(),
                "case {case}"
            );
        }
    }
}

/// Greedy solutions, when produced, are feasible.
#[test]
fn greedy_output_is_feasible() {
    let mut rng = SplitMix64::from_env(0x6EEED1);
    for case in 0..24 {
        let problem = random_problem(&mut rng);
        if let Some(g) = greedy_pack(&problem) {
            assert!(
                evaluate(&problem, &g.assignment).feasible,
                "case {case}: greedy returned an infeasible packing"
            );
        }
    }
}

/// Local search never worsens the objective.
#[test]
fn polish_never_worsens() {
    let mut rng = SplitMix64::from_env(0x0115);
    for case in 0..24 {
        let problem = random_problem(&mut rng);
        let slots = problem.slots().len();
        let k = problem.max_machines;
        let start = Assignment::new(
            (0..slots)
                .map(|_| rng.next_range(k as u64) as usize)
                .collect(),
        );
        let before = evaluate(&problem, &start).objective;
        let report = polish(&problem, &start, k, 25);
        assert!(
            report.evaluation.objective <= before + 1e-9,
            "case {case}: polish worsened {before} -> {}",
            report.evaluation.objective
        );
    }
}

/// The exponential objective prefers fewer machines whenever both
/// assignments are feasible.
#[test]
fn fewer_machines_win_when_feasible() {
    for n in 2usize..8 {
        let workloads: Vec<WorkloadSpec> = (0..n)
            .map(|i| WorkloadSpec::flat(format!("w{i}"), 2, 1.0, 2e9, 5e8, 50.0))
            .collect();
        let problem = ConsolidationProblem::new(
            workloads,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        );
        let packed = evaluate(&problem, &Assignment::new(vec![0; n]));
        let spread = evaluate(&problem, &Assignment::new((0..n).collect()));
        if packed.feasible && spread.feasible {
            assert!(packed.objective < spread.objective, "n = {n}");
        }
    }
}

/// Time-series downsampling with AVG conserves the mean on exact bucket
/// boundaries.
#[test]
fn downsample_avg_conserves_mean() {
    let mut rng = SplitMix64::from_env(0xD0_5A);
    for case in 0..48 {
        let len = 4 + rng.next_range(60) as usize;
        let factor = 1 + rng.next_range(7) as usize;
        let n = (len / factor) * factor;
        if n == 0 {
            continue;
        }
        let vals: Vec<f64> = (0..n).map(|_| rng.next_in(-1e6, 1e6)).collect();
        let ts = TimeSeries::new(1.0, vals);
        let down = ts.downsample_avg(factor);
        assert!(
            (down.mean() - ts.mean()).abs() < 1e-6,
            "case {case}: mean drifted {} -> {}",
            ts.mean(),
            down.mean()
        );
    }
}

/// MAX consolidation dominates AVG pointwise.
#[test]
fn downsample_max_dominates_avg() {
    let mut rng = SplitMix64::from_env(0x3A_11);
    for case in 0..48 {
        let len = 4 + rng.next_range(60) as usize;
        let factor = 1 + rng.next_range(7) as usize;
        let vals: Vec<f64> = (0..len).map(|_| rng.next_in(0.0, 1e6)).collect();
        let ts = TimeSeries::new(1.0, vals);
        let avg = ts.downsample_avg(factor);
        let max = ts.downsample_max(factor);
        for (a, m) in avg.values().iter().zip(max.values()) {
            assert!(m >= a, "case {case}: max {m} below avg {a}");
        }
    }
}

/// Percentiles are monotone in p and bracketed by min/max.
#[test]
fn percentiles_are_monotone() {
    let mut rng = SplitMix64::from_env(0x9E9C);
    for case in 0..48 {
        let len = 1 + rng.next_range(127) as usize;
        let vals: Vec<f64> = (0..len).map(|_| rng.next_in(-1e9, 1e9)).collect();
        let ts = TimeSeries::new(1.0, vals);
        let p1 = rng.next_in(0.0, 100.0);
        let p2 = rng.next_in(0.0, 100.0);
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        assert!(ts.percentile(lo) <= ts.percentile(hi) + 1e-9, "case {case}");
        assert!(ts.percentile(0.0) >= ts.min() - 1e-9, "case {case}");
        assert!(ts.percentile(100.0) <= ts.max() + 1e-9, "case {case}");
    }
}

mod buffer_pool {
    use super::*;

    /// The cache never exceeds capacity, never loses dirty pages silently
    /// (dirty_count matches ground truth), and hits+misses equals the
    /// access count.
    #[test]
    fn clock_cache_invariants() {
        let mut rng = SplitMix64::from_env(0xCAC4E);
        for case in 0..32 {
            let capacity = 1 + rng.next_range(63) as usize;
            let ops = 1 + rng.next_range(255) as usize;
            let mut cache = ClockCache::new(capacity);
            let mut accesses = 0u64;
            for _ in 0..ops {
                let page = rng.next_range(128);
                let dirty = rng.next_range(2) == 1;
                cache.touch(PageId(page), dirty);
                accesses += 1;
                assert!(cache.resident() <= capacity, "case {case}");
                assert!(cache.dirty_count() <= cache.resident(), "case {case}");
            }
            let stats = cache.stats();
            assert_eq!(stats.hits + stats.misses, accesses, "case {case}");
        }
    }

    /// Flushing each dirty batch eventually cleans everything, and batches
    /// come out sorted.
    #[test]
    fn dirty_batches_are_sorted_and_drain() {
        let mut rng = SplitMix64::from_env(0xF1054);
        for case in 0..32 {
            let n = 1 + rng.next_range(127) as usize;
            let pages: Vec<u64> = (0..n).map(|_| rng.next_range(512)).collect();
            let mut cache = ClockCache::new(1024);
            for &p in &pages {
                cache.touch(PageId(p), true);
            }
            let mut total = 0;
            loop {
                let batch = cache.take_dirty_batch(7);
                if batch.is_empty() {
                    break;
                }
                for w in batch.windows(2) {
                    assert!(w[0] < w[1], "case {case}: batch not sorted");
                }
                total += batch.len();
            }
            let distinct: std::collections::HashSet<u64> = pages.iter().copied().collect();
            assert_eq!(total, distinct.len(), "case {case}");
            assert_eq!(cache.dirty_count(), 0, "case {case}");
        }
    }
}

mod disk_model {
    use super::*;

    fn profile_from_seed(seed: u64) -> DiskProfile {
        let mut rng = SplitMix64::new(seed);
        let a = rng.next_in(150.0, 300.0); // log bytes per row
        let b = rng.next_in(0.0005, 0.003); // ws coupling
        let mut points = Vec::new();
        for i in 1..=5 {
            let ws = i as f64 * 0.6e9;
            for j in 1..=8 {
                let rate = j as f64 * 4_000.0;
                points.push(DiskPoint {
                    ws_bytes: ws,
                    rows_per_sec: rate,
                    write_bytes_per_sec: a * rate + b * ws + rng.next_in(0.0, 1e5),
                    achieved_fraction: 1.0,
                });
            }
        }
        DiskProfile {
            machine: "prop".into(),
            points,
        }
    }

    /// For monotone profiles the fitted model predicts monotonically in
    /// rate and stays within the clamp envelope.
    #[test]
    fn model_predicts_monotone_in_rate() {
        let mut rng = SplitMix64::from_env(0xD15C);
        for case in 0..16 {
            let seed = rng.next_range(10_000);
            let model = DiskModel::fit(&profile_from_seed(seed)).unwrap();
            let ws = Bytes(1_500_000_000);
            let mut prev = 0.0;
            for j in 1..=6 {
                let v = model.predict_write_bytes(DiskDemand::new(ws, Rate(j as f64 * 5_000.0)));
                assert!(
                    v >= prev - 1e5,
                    "case {case} seed {seed} rate step {j}: {v} < {prev}"
                );
                assert!(v.is_finite() && v >= 0.0, "case {case}");
                prev = v;
            }
        }
    }
}

mod migration_order {
    use super::*;
    use kairos::controller::{plan_migration, MigrationStep};

    /// A random placement diff on a tightly-packed fleet: flat workloads
    /// whose incumbent (`from`) and target (`to`) placements squeeze into
    /// about half as many machines as workloads, so move order genuinely
    /// matters. `None` entries in `from` are pending provisions. Only
    /// cases with a *feasible* target are returned (the solver guarantees
    /// that much before the planner ever runs).
    fn random_diff(
        rng: &mut SplitMix64,
    ) -> Option<(ConsolidationProblem, Vec<Option<usize>>, Assignment)> {
        let n = 4 + rng.next_range(6) as usize;
        let windows = 1 + rng.next_range(3) as usize;
        let workloads: Vec<WorkloadSpec> = (0..n)
            .map(|i| {
                let cpu = rng.next_in(1.0, 5.5);
                WorkloadSpec::flat(format!("w{i}"), windows, cpu, 2e9, 2e8, 50.0)
            })
            .collect();
        let problem = ConsolidationProblem::new(
            workloads,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        );
        let m_range = (n / 2).max(2) as u64;
        let from: Vec<Option<usize>> = (0..n)
            .map(|_| {
                if rng.next_f64() < 0.15 {
                    None
                } else {
                    Some(rng.next_range(m_range) as usize)
                }
            })
            .collect();
        for _ in 0..40 {
            let to = Assignment::new((0..n).map(|_| rng.next_range(m_range) as usize).collect());
            if evaluate(&problem, &to).feasible {
                return Some((problem, from, to));
            }
        }
        None
    }

    /// Replay `steps` in the given order through a ledger written
    /// independently of the planner's, reporting each step's destination
    /// peak utilization *after* the step applies (movers occupy their
    /// source until their own step runs).
    fn replay_dest_peaks(problem: &ConsolidationProblem, steps: &[&MigrationStep]) -> Vec<f64> {
        let slots = problem.slots();
        let machines = problem
            .max_machines
            .max(steps.iter().map(|s| s.mv.to + 1).max().unwrap_or(0))
            .max(
                steps
                    .iter()
                    .filter_map(|s| s.mv.from.map(|f| f + 1))
                    .max()
                    .unwrap_or(0),
            );
        let w = problem.windows;
        // loads[machine][resource][window], resource = cpu/ram/ws/rate.
        let mut loads = vec![vec![vec![0.0f64; w]; 4]; machines];
        #[allow(clippy::needless_range_loop)]
        fn apply(
            problem: &ConsolidationProblem,
            loads: &mut [Vec<Vec<f64>>],
            wl: usize,
            m: usize,
            sign: f64,
        ) {
            let spec = &problem.workloads[wl];
            for t in 0..problem.windows {
                loads[m][0][t] += sign * spec.cpu_at(t);
                loads[m][1][t] += sign * spec.ram_at(t);
                loads[m][2][t] += sign * spec.ws_at(t);
                loads[m][3][t] += sign * spec.rate_at(t);
            }
        }
        #[allow(clippy::needless_range_loop)]
        fn peak_of(problem: &ConsolidationProblem, machine: &[Vec<f64>]) -> f64 {
            let mut peak = 0.0f64;
            for t in 0..problem.windows {
                let c = machine[0][t] / problem.machine.cpu_cores;
                let r = machine[1][t] / problem.machine.ram_bytes;
                let d = problem.disk.utilization(machine[2][t], machine[3][t]);
                peak = peak.max(c).max(r).max(d);
            }
            peak
        }
        // Seed: movers occupy their source until their own step runs;
        // stayers (slots absent from the step list — plan_migration only
        // omits slots with from == to) sit on their baseline machine,
        // which `with_baseline` stashed in the problem's migration slot.
        let moving: std::collections::HashSet<usize> = steps.iter().map(|s| s.mv.slot).collect();
        for step in steps {
            if let Some(src) = step.mv.from {
                apply(problem, &mut loads, slots[step.mv.slot].workload, src, 1.0);
            }
        }
        for (s, slot) in slots.iter().enumerate() {
            if !moving.contains(&s) {
                if let Some(m) = problem
                    .migration
                    .as_ref()
                    .and_then(|mc| mc.baseline.get(s).copied().flatten())
                {
                    apply(problem, &mut loads, slot.workload, m, 1.0);
                }
            }
        }
        let mut peaks = Vec::with_capacity(steps.len());
        for step in steps {
            let wl = slots[step.mv.slot].workload;
            if let Some(src) = step.mv.from {
                apply(problem, &mut loads, wl, src, -1.0);
            }
            apply(problem, &mut loads, wl, step.mv.to, 1.0);
            peaks.push(peak_of(problem, &loads[step.mv.to]));
        }
        peaks
    }

    /// Attach the stay-put placements to the problem so the replay can
    /// seed absolute machine loads (reuses the migration-baseline slot).
    fn with_baseline(
        problem: ConsolidationProblem,
        from: &[Option<usize>],
        to: &Assignment,
    ) -> ConsolidationProblem {
        // Stayers are slots with from == to; movers/provisions are
        // handled through the step list itself, so blank them here.
        let stay: Vec<Option<usize>> = from
            .iter()
            .zip(to.machine_of.iter())
            .map(|(&f, &t)| match f {
                Some(f) if f == t => Some(f),
                _ => None,
            })
            .collect();
        problem.with_migration(stay, 0.0)
    }

    /// The planner's move order never violates host capacity at any
    /// intermediate fleet state — every step it does not explicitly flag
    /// as `forced` lands within the headroom ceiling, and a plan marked
    /// `capacity_safe` contains no forced steps at all.
    #[test]
    fn planned_order_never_violates_capacity_mid_flight() {
        let mut rng = SplitMix64::from_env(0x0D0E12);
        let mut checked = 0;
        for case in 0..60 {
            let Some((problem, from, to)) = random_diff(&mut rng) else {
                continue;
            };
            let plan = plan_migration(&problem, &from, &to);
            let problem = with_baseline(problem, &from, &to);
            let steps: Vec<&MigrationStep> = plan.steps.iter().collect();
            let peaks = replay_dest_peaks(&problem, &steps);
            for (step, peak) in steps.iter().zip(&peaks) {
                if !step.forced {
                    assert!(
                        *peak <= problem.headroom + 1e-9,
                        "case {case}: unforced step of {} to machine {} peaked at {peak}",
                        step.mv.workload,
                        step.mv.to,
                    );
                }
                // The planner's own ledger agrees with the independent one.
                assert!(
                    (step.dest_peak_utilization - peak).abs() < 1e-6,
                    "case {case}: planner ledger {} vs replay {peak}",
                    step.dest_peak_utilization,
                );
            }
            if plan.capacity_safe {
                assert!(steps.iter().all(|s| !s.forced), "case {case}");
            }
            // Every changed slot appears exactly once and ends at target.
            let mut seen = std::collections::HashSet::new();
            for step in &steps {
                assert!(seen.insert(step.mv.slot), "case {case}: slot repeated");
                assert_eq!(step.mv.to, to.machine_of[step.mv.slot], "case {case}");
            }
            checked += 1;
        }
        assert!(checked >= 20, "generator starved: only {checked} cases");
    }

    /// Fault injection: executing the same plans in *reverse* order must
    /// violate capacity mid-flight in at least some generated cases —
    /// i.e., the property above genuinely constrains the planner's
    /// ordering, and reverting it would be caught.
    #[test]
    fn reversed_order_violates_capacity_somewhere() {
        let mut rng = SplitMix64::from_env(0x0D0E12);
        let mut violations = 0;
        for _ in 0..60 {
            let Some((problem, from, to)) = random_diff(&mut rng) else {
                continue;
            };
            let plan = plan_migration(&problem, &from, &to);
            if !plan.capacity_safe || plan.steps.len() < 2 {
                continue;
            }
            let problem = with_baseline(problem, &from, &to);
            let reversed: Vec<&MigrationStep> = plan.steps.iter().rev().collect();
            let peaks = replay_dest_peaks(&problem, &reversed);
            if peaks.iter().any(|&p| p > problem.headroom + 1e-9) {
                violations += 1;
            }
        }
        assert!(
            violations >= 1,
            "reversing the planner's order never violated capacity — the \
             ordering property would not catch a reverted planner"
        );
    }

    /// Deterministic witness for the same fault injection: the
    /// vacate-before-fill construction, executed backwards, transiently
    /// overloads the vacated machine's destination.
    #[test]
    fn reversed_vacate_before_fill_is_caught() {
        let workloads = vec![
            WorkloadSpec::flat("w0", 2, 6.0, 2e9, 2e8, 50.0),
            WorkloadSpec::flat("w1", 2, 5.0, 2e9, 2e8, 50.0),
            WorkloadSpec::flat("w2", 2, 6.0, 2e9, 2e8, 50.0),
        ];
        let problem = ConsolidationProblem::new(
            workloads,
            TargetMachine::paper_target(),
            3,
            Arc::new(LinearDiskCombiner::default()),
        );
        let from = vec![Some(0), Some(0), Some(1)];
        let to = Assignment::new(vec![2, 0, 0]);
        let plan = plan_migration(&problem, &from, &to);
        assert!(plan.capacity_safe);
        let problem = with_baseline(problem, &from, &to);

        let forward: Vec<&MigrationStep> = plan.steps.iter().collect();
        let fwd_peaks = replay_dest_peaks(&problem, &forward);
        assert!(fwd_peaks.iter().all(|&p| p <= problem.headroom + 1e-9));

        let reversed: Vec<&MigrationStep> = plan.steps.iter().rev().collect();
        let rev_peaks = replay_dest_peaks(&problem, &reversed);
        assert!(
            rev_peaks.iter().any(|&p| p > problem.headroom),
            "moving w2 onto the un-vacated machine must overload it: {rev_peaks:?}"
        );
    }
}

mod drift_one_sidedness {
    use super::*;
    use kairos::controller::DriftDetector;
    use kairos::types::WorkloadProfile;

    fn mk_profile(name: &str, cpu: Vec<f64>) -> WorkloadProfile {
        let n = cpu.len();
        WorkloadProfile::new(
            name,
            TimeSeries::new(300.0, cpu),
            TimeSeries::new(300.0, vec![4e9; n]),
            TimeSeries::new(300.0, vec![1e9; n]),
            TimeSeries::new(300.0, vec![100.0; n]),
        )
    }

    fn scaled(planned: &[f64], factor: f64) -> Vec<f64> {
        planned.iter().map(|v| (v * factor).max(0.0)).collect()
    }

    /// For mirrored deviations of equal magnitude (live = planned·(1±d)),
    /// the one-sided errors mirror exactly — the overload error of the
    /// `+d` window equals the slack error of the `−d` window — and the
    /// detector never trips on the slack side faster than on the overload
    /// side. Overload must also trip *strictly* earlier for some
    /// magnitudes (its threshold is tighter by design: scale-up is
    /// urgent, scale-down is housekeeping).
    #[test]
    fn overload_trips_no_slower_than_slack_on_mirrored_deviations() {
        let mut rng = SplitMix64::from_env(0x0DD51DE);
        let detector = DriftDetector::default();
        let mut overload_only = 0;
        for case in 0..64 {
            let windows = 4 + rng.next_range(9) as usize;
            let planned_cpu: Vec<f64> = (0..windows).map(|_| rng.next_in(0.5, 4.0)).collect();
            let d = rng.next_in(0.02, 0.95);
            let planned = mk_profile("w", planned_cpu.clone());
            let over = mk_profile("w", scaled(&planned_cpu, 1.0 + d));
            let under = mk_profile("w", scaled(&planned_cpu, 1.0 - d));
            let now = windows as u64 - 1; // phase-aligned full window

            let r_over = detector.check(&planned, &over, now);
            let r_under = detector.check(&planned, &under, now);

            // Mirror symmetry of the error measure itself.
            assert!(
                (r_over.max_overload - r_under.max_slack).abs() < 1e-9,
                "case {case} (d={d:.3}): overload {} vs mirrored slack {}",
                r_over.max_overload,
                r_under.max_slack,
            );
            assert!(r_over.max_slack < 1e-12, "case {case}: pure excess");
            assert!(r_under.max_overload < 1e-12, "case {case}: pure shortfall");

            // One-sidedness: slack tripping implies overload tripping at
            // the same magnitude — never the other way around.
            if r_under.drifted {
                assert!(
                    r_over.drifted,
                    "case {case} (d={d:.3}): slack tripped before overload"
                );
            }
            if r_over.drifted && !r_under.drifted {
                overload_only += 1;
            }
        }
        assert!(
            overload_only >= 1,
            "overload must trip strictly earlier for mid-range deviations"
        );
    }

    /// Fault injection: a detector whose thresholds are swapped (slack
    /// tighter than overload — the reverted configuration) violates the
    /// one-sidedness property for mid-magnitude deviations, and the
    /// property harness detects it.
    #[test]
    fn swapped_thresholds_are_caught() {
        let mut rng = SplitMix64::from_env(0x0DD51DE);
        let swapped = DriftDetector {
            overload_threshold: 0.5,
            slack_threshold: 0.25,
            min_windows: 4,
        };
        let mut violations = 0;
        for _ in 0..64 {
            let windows = 4 + rng.next_range(9) as usize;
            let planned_cpu: Vec<f64> = (0..windows).map(|_| rng.next_in(0.5, 4.0)).collect();
            let d = rng.next_in(0.02, 0.95);
            let planned = mk_profile("w", planned_cpu.clone());
            let over = mk_profile("w", scaled(&planned_cpu, 1.0 + d));
            let under = mk_profile("w", scaled(&planned_cpu, 1.0 - d));
            let now = windows as u64 - 1;
            let r_over = swapped.check(&planned, &over, now);
            let r_under = swapped.check(&planned, &under, now);
            if r_under.drifted && !r_over.drifted {
                violations += 1;
            }
        }
        assert!(
            violations >= 1,
            "the one-sidedness property must fail under swapped thresholds \
             — otherwise it does not constrain the detector"
        );
    }
}
