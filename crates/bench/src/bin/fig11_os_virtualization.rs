//! Figure 11 — OS virtualization (one MySQL process per database) vs the
//! consolidated DBMS across consolidation levels: average achievable
//! throughput per database as the tenant count grows.
//!
//! Expected shape: both fall with tenant count; the consolidated DBMS
//! supports 1.9–3.3× higher consolidation for a given per-database
//! throughput target.

use kairos_bench::{print_table, quick, section};
use kairos_vmsim::{consolidation_sweep, ComparisonConfig, LoadShape, Strategy};

fn main() {
    let levels: Vec<usize> = if quick() {
        vec![10, 30, 60]
    } else {
        vec![10, 20, 30, 40, 50, 60, 70, 80]
    };
    let offered_per_db = 40.0;
    // Fig 11 runs on the full 32 GB server: RAM is ample at every level,
    // so the strategies differ purely in log/flush coordination and CPU
    // overheads, as in the paper's OS-virtualization experiment.
    let base = ComparisonConfig {
        machine: kairos_types::MachineSpec::server1(),
        warmup_secs: if quick() { 10.0 } else { 25.0 },
        measure_secs: if quick() { 30.0 } else { 80.0 },
        warehouses_per_db: 1,
        ..ComparisonConfig::fig10(LoadShape::Uniform {
            tps_per_db: offered_per_db,
        })
    };

    section(&format!(
        "Figure 11: avg per-DB throughput vs consolidation level (offered {offered_per_db} tps/db)"
    ));
    let cons = consolidation_sweep(Strategy::ConsolidatedDbms, &levels, offered_per_db, &base);
    let osv = consolidation_sweep(Strategy::OsVirtualization, &levels, offered_per_db, &base);

    let mut rows = Vec::new();
    for (i, &n) in levels.iter().enumerate() {
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", cons[i].1),
            format!("{:.1}", osv[i].1),
        ]);
    }
    print_table(
        &["#workloads", "consolidated tps/db", "os-virt tps/db"],
        &rows,
    );

    // Consolidation-level advantage at fixed target throughput: for each
    // os-virt level, find the consolidated level achieving at least the
    // same per-DB throughput.
    section("consolidation-level advantage at equal per-DB throughput");
    let mut rows = Vec::new();
    for &(n_os, tps_os) in &osv {
        if tps_os <= 0.0 {
            continue;
        }
        let best_cons = cons
            .iter()
            .filter(|&&(_, t)| t >= tps_os)
            .map(|&(n, _)| n)
            .max();
        if let Some(n_cons) = best_cons {
            rows.push(vec![
                format!("{tps_os:.1}"),
                n_os.to_string(),
                n_cons.to_string(),
                format!("{:.1}x", n_cons as f64 / n_os as f64),
            ]);
        }
    }
    print_table(
        &[
            "target tps/db",
            "os-virt level",
            "consolidated level",
            "advantage",
        ],
        &rows,
    );
    println!("\npaper: 1.9x-3.3x higher consolidation levels for a given target throughput");
}
