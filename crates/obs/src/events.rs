//! The structured decision log: typed, tick-stamped, seed-reproducible.
//!
//! Every event field is deterministic under a fixed seed and config —
//! tick numbers, tenant names, machine counts, and `f64` values carried
//! as IEEE-754 **bit patterns** (so traces compare exactly, with no
//! formatting or rounding in the way). Wall-clock durations are banned
//! here by construction: they live in [`crate::metrics`].
//!
//! The log itself is a bounded ring ([`DecisionLog`]): recording is O(1)
//! (one branch when disabled, a `VecDeque` push when enabled), the
//! sequence number keeps counting across evictions so a truncated ring
//! is detectable, and the whole trace serializes through the workspace
//! codec — byte-identical traces are the equality the net equivalence
//! suite asserts between the in-process and RPC fleets.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Version tag for serialized trace frames (`kairos-store` framing).
/// Bump on any change to [`TracedEvent`] / [`DecisionEvent`] layout.
///
/// v3: hierarchy events ([`DecisionEvent::ZoneSummarized`],
/// [`DecisionEvent::GroupMoved`]) appended for the balancer-of-balancers.
///
/// v4: [`DecisionEvent::HealthFlagged`] appended for the watchdog.
pub const TRACE_WIRE_VERSION: u32 = 4;

/// Default ring capacity: large enough to hold every event of the test
/// and example runs (so checkpoint/restore preserves full history), small
/// enough that a long-lived fleet's memory stays bounded.
pub const DEFAULT_TRACE_CAP: usize = 65_536;

/// One decision the control plane made, with the fields that explain it.
///
/// Shard-level events are stamped with the *shard's* tick; balancer
/// events with the *fleet* tick. `*_bits` fields are `f64::to_bits`
/// values — render with `f64::from_bits` (see [`crate::why`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionEvent {
    // --- shard loop ----------------------------------------------------
    /// Cold bootstrap solved the first placement.
    Bootstrapped {
        machines: usize,
        objective_bits: u64,
    },
    /// The drift detector tripped: these workloads' live windows diverged
    /// from the profiles the current plan was solved for. Thresholds are
    /// recorded so the trace says *which* watermark fired.
    DriftTripped {
        workloads: Vec<String>,
        max_overload_bits: u64,
        max_slack_bits: u64,
        overload_threshold_bits: u64,
        slack_threshold_bits: u64,
    },
    /// A warm re-solve adopted a new placement. `objective_before_bits`
    /// is the incumbent plan's objective at *its* adoption; `after` is
    /// the new plan's.
    Replanned {
        reason: String,
        feasible: bool,
        moves: usize,
        machines: usize,
        objective_before_bits: u64,
        objective_after_bits: u64,
        churn_bits: u64,
    },
    /// A re-solve failed; the loop backs off until the given tick.
    ResolveFailed { reason: String, backoff_until: u64 },
    /// The scheduled zero-move refresh tightened envelope-planned
    /// profiles from the post-drift window.
    ProfileRefreshed { workloads: Vec<String> },
    /// A tenant left this shard (balancer-driven eviction).
    TenantEvicted { tenant: String },
    /// A tenant joined this shard (balancer-driven admission).
    TenantAdmitted { tenant: String },

    // --- balancer round -------------------------------------------------
    /// A shard was flagged as a donor, with the summary fields that
    /// triggered it: over machine budget, an infeasible plan, or a failed
    /// re-solve.
    DonorFlagged {
        shard: usize,
        machines_used: usize,
        budget: usize,
        feasible: bool,
        resolve_failed: bool,
    },
    /// A receiver accepted a reservation for this tenant at the shed
    /// target (the low-watermark admission bar).
    HandoffProposed {
        tenant: String,
        donor: usize,
        receiver: usize,
        shed_target: usize,
        receiver_machines: usize,
    },
    /// No shard could take the tenant at the shed target.
    HandoffNoReceiver { tenant: String, donor: usize },
    /// Two-phase handoff committed: the tenant moved donor → receiver.
    HandoffCompleted {
        tenant: String,
        donor: usize,
        receiver: usize,
    },
    /// The handoff failed mid-flight; `returned_to_donor` says whether
    /// the rollback re-admitted the tenant at the donor.
    HandoffFailed {
        tenant: String,
        donor: usize,
        receiver: usize,
        returned_to_donor: bool,
    },
    /// Unresolvable mid-flight state: the tenant parked in the balancer's
    /// retry lot (never dropped, never blindly re-admitted).
    HandoffParked {
        tenant: String,
        donor: usize,
        receiver: usize,
    },
    /// A parked handoff was probed this round; resolution is one of
    /// `"completed-late"`, `"returned-to-donor"`, `"still-parked"` —
    /// or `"recovered-at-promotion"`, when a promoted standby re-admits
    /// a stranded tenant found in a shard's evict outbox.
    ParkedRetried {
        tenant: String,
        donor: usize,
        receiver: usize,
        resolution: String,
    },

    // --- network plane --------------------------------------------------
    /// A shard link missed a lease renewal (transport-level failure).
    LeaseMiss {
        shard: usize,
        missed: u64,
        limit: u64,
    },
    /// The miss counter crossed the lease limit: the shard is down.
    ShardDown { shard: usize },
    /// A shard rejoined after checkpoint-restore; the map reconciled
    /// ownership (stale copies retired, lost tenants re-seeded).
    ShardRejoined {
        shard: usize,
        retired: Vec<String>,
        reseeded: Vec<String>,
    },
    /// A standby balancer promoted itself and adopted the fleet state
    /// from the shards (ground truth).
    StandbyPromoted { rank: u64, adopted_ticks: u64 },
    /// A standby ingested a replicated soft-state snapshot from the
    /// primary. `sync_round` is the balancer round the state describes;
    /// `parked`/`cooldowns`/`log_events` size the replicated payload.
    StandbySynced {
        sync_round: u64,
        parked: usize,
        cooldowns: usize,
        log_events: usize,
    },
    /// A frame failed shared-secret authentication and was rejected
    /// before any decode — zero state change on the receiver.
    AuthRejected { endpoint: String },
    /// A shard node announced itself to the balancer (self-healing
    /// membership): first contact, post-restore, or after backoff.
    NodeAnnounced {
        shard: usize,
        endpoint: String,
        generation: u64,
    },

    // --- hierarchy (balancer-of-balancers) ------------------------------
    // Appended in trace v3; enum wire tags are variant indices, so new
    // variants go at the end.
    /// A zone rolled its shard summaries up into one constant-size zone
    /// summary for the root balancer. `summary_bytes` is the roll-up's
    /// encoded size — the quantity the sketches keep independent of
    /// window length.
    ZoneSummarized {
        zone: usize,
        tenants: usize,
        groups: usize,
        machines_used: usize,
        summary_bytes: usize,
    },
    /// The root balancer moved a tenant group between zones (every member
    /// travelled inside one group frame).
    GroupMoved {
        group: String,
        tenants: usize,
        from_zone: usize,
        to_zone: usize,
    },

    // --- health watchdog -------------------------------------------------
    // Appended in trace v4; enum wire tags are variant indices, so new
    // variants go at the end.
    /// A health rule **started** firing (the edge, not every firing
    /// observation — the watchdog records transitions so the trace
    /// links a why chain without an alarm storm). The observed value
    /// stays out: it is wall-clock-shaped and belongs to the metrics
    /// registry, and the watchdog itself is never enabled inside
    /// determinism-fingerprinted runs.
    HealthFlagged {
        /// The rule-kind slug (`gauge-above`, `gauge-growing`,
        /// `counter-rate`, `p99-regression`).
        rule: String,
        metric: String,
        /// Severity name (`info`/`warning`/`critical`).
        severity: String,
    },
}

/// A [`DecisionEvent`] with its position in the stream: a monotone
/// sequence number (survives ring eviction) and the tick it fired at.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracedEvent {
    pub seq: u64,
    pub tick: u64,
    pub event: DecisionEvent,
}

/// A bounded, O(1) ring of [`TracedEvent`]s.
///
/// The disabled constructor makes `record` a single branch — the bench
/// acceptance criterion (steady-tick p50 within 10% of baseline with the
/// sink disabled) rides on this being the whole cost.
#[derive(Clone, Debug)]
pub struct DecisionLog {
    events: VecDeque<TracedEvent>,
    cap: usize,
    next_seq: u64,
    enabled: bool,
}

impl Default for DecisionLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionLog {
    /// An enabled log with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAP)
    }

    /// An enabled log holding at most `cap` events (oldest evicted).
    pub fn with_capacity(cap: usize) -> Self {
        DecisionLog {
            events: VecDeque::new(),
            cap: cap.max(1),
            next_seq: 0,
            enabled: true,
        }
    }

    /// A no-op sink: `record` returns after one branch, nothing is kept.
    pub fn disabled() -> Self {
        DecisionLog {
            events: VecDeque::new(),
            cap: 1,
            next_seq: 0,
            enabled: false,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Toggle recording; already-recorded events are kept either way.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Record one event at `tick`. O(1); a branch when disabled.
    pub fn record(&mut self, tick: u64, event: DecisionEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
        }
        self.events.push_back(TracedEvent {
            seq: self.next_seq,
            tick,
            event,
        });
        self.next_seq += 1;
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TracedEvent> {
        self.events.iter()
    }

    /// The ring's contents as an owned `Vec` (checkpoint / RPC payload).
    pub fn to_vec(&self) -> Vec<TracedEvent> {
        self.events.iter().cloned().collect()
    }

    /// The canonical trace encoding: the event vector through the
    /// workspace codec. Byte equality of two traces is the determinism
    /// property the test suites assert.
    pub fn trace_bytes(&self) -> Vec<u8> {
        serde::to_bytes(&self.to_vec())
    }

    /// Rebuild a log from checkpointed events; the sequence counter
    /// resumes after the last restored event so post-restore history
    /// appends rather than forking.
    pub fn restore(events: Vec<TracedEvent>, cap: usize, enabled: bool) -> Self {
        let next_seq = events.last().map(|e| e.seq + 1).unwrap_or(0);
        DecisionLog {
            events: events.into(),
            cap: cap.max(1),
            next_seq,
            enabled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: &str) -> DecisionEvent {
        DecisionEvent::TenantEvicted { tenant: n.into() }
    }

    #[test]
    fn ring_evicts_oldest_but_seq_keeps_counting() {
        let mut log = DecisionLog::with_capacity(2);
        log.record(1, ev("a"));
        log.record(2, ev("b"));
        log.record(3, ev("c"));
        let got: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = DecisionLog::disabled();
        log.record(1, ev("a"));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn trace_bytes_round_trip_through_codec() {
        let mut log = DecisionLog::new();
        log.record(
            4,
            DecisionEvent::Replanned {
                reason: "drift[t1]".into(),
                feasible: true,
                moves: 3,
                machines: 5,
                objective_before_bits: 1.25f64.to_bits(),
                objective_after_bits: 1.5f64.to_bits(),
                churn_bits: 0.3f64.to_bits(),
            },
        );
        log.record(
            9,
            DecisionEvent::LeaseMiss {
                shard: 2,
                missed: 1,
                limit: 3,
            },
        );
        let bytes = log.trace_bytes();
        let decoded: Vec<TracedEvent> = serde::from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded, log.to_vec());
    }

    #[test]
    fn ring_at_the_default_cap_keeps_seq_continuity_across_eviction() {
        let mut log = DecisionLog::new();
        let overflow = 137u64;
        for i in 0..DEFAULT_TRACE_CAP as u64 + overflow {
            log.record(i, ev(&format!("t{i}")));
        }
        assert_eq!(log.len(), DEFAULT_TRACE_CAP, "ring caps at exactly 65536");
        // The oldest `overflow` events evicted; seqs run contiguously
        // from `overflow` to cap+overflow-1 with no gap at the seam.
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs[0], overflow);
        assert_eq!(
            *seqs.last().unwrap(),
            DEFAULT_TRACE_CAP as u64 + overflow - 1
        );
        assert!(
            seqs.windows(2).all(|w| w[1] == w[0] + 1),
            "seq gap inside the ring"
        );
    }

    #[test]
    fn restore_of_a_full_ring_resumes_after_the_cap() {
        let mut log = DecisionLog::new();
        for i in 0..DEFAULT_TRACE_CAP as u64 + 5 {
            log.record(i, ev("x"));
        }
        let mut restored = DecisionLog::restore(log.to_vec(), DEFAULT_TRACE_CAP, true);
        assert_eq!(restored.len(), DEFAULT_TRACE_CAP);
        restored.record(99_999, ev("after"));
        log.record(99_999, ev("after"));
        assert_eq!(
            restored.trace_bytes(),
            log.trace_bytes(),
            "restored full ring must continue byte-identically"
        );
        // A further record still evicts exactly one from the front.
        assert_eq!(restored.len(), DEFAULT_TRACE_CAP);
    }

    #[test]
    fn query_over_a_partially_evicted_tick_range_returns_the_retained_tail() {
        let mut log = DecisionLog::new();
        // One event per tick; ticks 0..cap+100, so ticks 0..99 evict.
        let total = DEFAULT_TRACE_CAP as u64 + 100;
        for tick in 0..total {
            log.record(tick, ev(&format!("t{tick}")));
        }
        let events = log.to_vec();
        // Requested range [50, 150] straddles the eviction horizon at
        // tick 100: the answer is exactly the retained ticks 100..=150,
        // not an error and not a silent full-range claim.
        let q = crate::query::TraceQuery {
            tick_from: Some(50),
            tick_to: Some(150),
            ..crate::query::TraceQuery::default()
        };
        let got = crate::query::run_query(&q, &events, &[]);
        let ticks: Vec<u64> = got.events.iter().map(|e| e.tick).collect();
        assert_eq!(ticks.first(), Some(&100), "evicted head not resurrected");
        assert_eq!(ticks.last(), Some(&150));
        assert_eq!(ticks.len(), 51);
        // Detectability: the first surviving seq exceeds the requested
        // lower bound, which is how a caller knows the range truncated.
        assert!(got.events.first().unwrap().seq > 50);
    }

    #[test]
    fn restore_resumes_sequence_without_forking() {
        let mut log = DecisionLog::new();
        log.record(1, ev("a"));
        log.record(2, ev("b"));
        let mut restored = DecisionLog::restore(log.to_vec(), DEFAULT_TRACE_CAP, true);
        restored.record(3, ev("c"));
        log.record(3, ev("c"));
        assert_eq!(restored.trace_bytes(), log.trace_bytes());
    }
}
