//! The Consolidation Engine facade: profiles in, deployment plan out.
//!
//! Wraps `kairos-solver` with the Kairos-specific glue: converting
//! monitored [`WorkloadProfile`]s into solver specs, wiring the disk
//! model in, and reporting plans the way a DBA would consume them
//! ("one way to think of Kairos is as a consolidation advisor", §2).

use crate::combiner::{AnalyticDiskCombiner, ModelDiskCombiner};
use kairos_diskmodel::DiskModel;
use kairos_solver::{
    evaluate, fractional_lower_bound, greedy_pack, solve, Assignment, ConsolidationProblem,
    DiskCombiner, ResourceWeights, SolveReport, SolverConfig, TargetMachine, WorkloadSpec,
};
use kairos_types::{KairosError, Result, WorkloadProfile};
use std::sync::Arc;

/// Builder for [`ConsolidationEngine`].
pub struct EngineBuilder {
    target: TargetMachine,
    headroom: f64,
    weights: ResourceWeights,
    disk: Option<Arc<dyn DiskCombiner>>,
    solver: SolverConfig,
    max_machines: Option<usize>,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder {
            target: TargetMachine::paper_target(),
            headroom: 0.95,
            weights: ResourceWeights::default(),
            disk: None,
            solver: SolverConfig::default(),
            max_machines: None,
        }
    }
}

impl EngineBuilder {
    /// Consolidate onto machines with these capacities (default: the
    /// paper's 12-core / 96 GB target class).
    pub fn target(mut self, target: TargetMachine) -> EngineBuilder {
        self.target = target;
        self
    }

    /// Per-resource utilization ceiling (default 0.95 — the 5 % "margin
    /// of error" of §7.3).
    pub fn headroom(mut self, headroom: f64) -> EngineBuilder {
        assert!((0.0..=1.0).contains(&headroom));
        self.headroom = headroom;
        self
    }

    /// Balance weights for the objective's resource combination.
    pub fn weights(mut self, weights: ResourceWeights) -> EngineBuilder {
        self.weights = weights;
        self
    }

    /// Use a fitted empirical disk model (recommended).
    pub fn disk_model(mut self, model: Arc<DiskModel>) -> EngineBuilder {
        self.disk = Some(Arc::new(ModelDiskCombiner::new(model)));
        self
    }

    /// Use a custom disk combiner.
    pub fn disk_combiner(mut self, combiner: Arc<dyn DiskCombiner>) -> EngineBuilder {
        self.disk = Some(combiner);
        self
    }

    /// Solver budgets/knobs.
    pub fn solver(mut self, solver: SolverConfig) -> EngineBuilder {
        self.solver = solver;
        self
    }

    /// Cap on target machines (default: one per workload).
    pub fn max_machines(mut self, n: usize) -> EngineBuilder {
        assert!(n >= 1);
        self.max_machines = Some(n);
        self
    }

    pub fn build(self) -> ConsolidationEngine {
        ConsolidationEngine {
            target: self.target,
            headroom: self.headroom,
            weights: self.weights,
            disk: self
                .disk
                .unwrap_or_else(|| Arc::new(AnalyticDiskCombiner::default())),
            solver: self.solver,
            max_machines: self.max_machines,
        }
    }
}

/// A placement recommendation for one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    pub workload: String,
    pub replica: u32,
    pub machine: usize,
}

/// The engine's output: which workload goes where, and why it is safe.
#[derive(Debug, Clone)]
pub struct ConsolidationPlan {
    pub placements: Vec<Placement>,
    pub report: SolveReport,
    /// Machines before consolidation (one per workload replica).
    pub reference_machines: usize,
}

impl ConsolidationPlan {
    pub fn machines_used(&self) -> usize {
        self.report.assignment.machines_used()
    }

    /// The paper's headline metric.
    pub fn consolidation_ratio(&self) -> f64 {
        self.reference_machines as f64 / self.machines_used().max(1) as f64
    }

    /// Workloads placed on a given machine.
    pub fn on_machine(&self, machine: usize) -> Vec<&Placement> {
        self.placements
            .iter()
            .filter(|p| p.machine == machine)
            .collect()
    }
}

/// Alternative strategies for comparison experiments (Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Full Kairos: DIRECT + K′ bounding + polish.
    Kairos,
    /// Single-resource greedy first-fit (§7.3 baseline).
    Greedy,
}

/// The consolidation engine.
pub struct ConsolidationEngine {
    target: TargetMachine,
    headroom: f64,
    weights: ResourceWeights,
    disk: Arc<dyn DiskCombiner>,
    solver: SolverConfig,
    max_machines: Option<usize>,
}

impl ConsolidationEngine {
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The solver budgets this engine was built with (what
    /// [`ConsolidationEngine::consolidate`] runs under) — exposed so
    /// callers replacing the one-shot solve path can honour them.
    pub fn solver_config(&self) -> SolverConfig {
        self.solver
    }

    /// Convert profiles into a solver problem.
    pub fn problem(&self, profiles: &[WorkloadProfile]) -> Result<ConsolidationProblem> {
        if profiles.is_empty() {
            return Err(KairosError::InvalidInput("no workload profiles".into()));
        }
        let specs: Vec<WorkloadSpec> = profiles
            .iter()
            .map(|p| WorkloadSpec {
                name: p.name.clone(),
                cpu: p.cpu_cores.values().to_vec(),
                ram: p.ram_bytes.values().to_vec(),
                ws: p.disk_working_set_bytes.values().to_vec(),
                rate: p.disk_update_rows_per_sec.values().to_vec(),
                replicas: p.replicas,
                pinned: None,
            })
            .collect();
        let slots: usize = specs.iter().map(|s| s.replicas.max(1) as usize).sum();
        let max_machines = self.max_machines.unwrap_or(slots).max(1);
        Ok(
            ConsolidationProblem::new(specs, self.target, max_machines, self.disk.clone())
                .with_headroom(self.headroom)
                .with_weights(self.weights),
        )
    }

    /// Produce a consolidation plan with the requested strategy.
    pub fn consolidate_with(
        &self,
        profiles: &[WorkloadProfile],
        strategy: PlanStrategy,
    ) -> Result<ConsolidationPlan> {
        let problem = self.problem(profiles)?;
        let slots = problem.slots();
        let report = match strategy {
            PlanStrategy::Kairos => solve(&problem, &self.solver)?,
            PlanStrategy::Greedy => {
                let g = greedy_pack(&problem).ok_or_else(|| {
                    KairosError::Infeasible(
                        "greedy single-resource packing violates cross-resource constraints".into(),
                    )
                })?;
                let evaluation = evaluate(&problem, &g.assignment);
                SolveReport {
                    k_final: g.machines_used,
                    k_bounds: (fractional_lower_bound(&problem), g.machines_used),
                    evals_used: 0,
                    probes: Vec::new(),
                    assignment: g.assignment,
                    evaluation,
                }
            }
        };
        let placements = slots
            .iter()
            .zip(report.assignment.machine_of.iter())
            .map(|(slot, &machine)| Placement {
                workload: problem.workloads[slot.workload].name.clone(),
                replica: slot.replica,
                machine,
            })
            .collect();
        Ok(ConsolidationPlan {
            placements,
            reference_machines: slots.len(),
            report,
        })
    }

    /// Produce the recommended (Kairos) plan.
    pub fn consolidate(&self, profiles: &[WorkloadProfile]) -> Result<ConsolidationPlan> {
        self.consolidate_with(profiles, PlanStrategy::Kairos)
    }

    /// The idealized fractional lower bound on machines (Fig 7's last
    /// comparison line).
    pub fn fractional_bound(&self, profiles: &[WorkloadProfile]) -> Result<usize> {
        Ok(fractional_lower_bound(&self.problem(profiles)?))
    }

    /// Would these workloads fit *together on one target machine* without
    /// violating any constraint? (The §7.2 recommendation check behind
    /// Table 1.)
    pub fn fits_together(&self, profiles: &[WorkloadProfile]) -> Result<bool> {
        let mut problem = self.problem(profiles)?;
        problem.max_machines = 1;
        let n = problem.slots().len();
        let all_on_one = Assignment::new(vec![0; n]);
        Ok(evaluate(&problem, &all_on_one).feasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_types::{Bytes, DiskDemand, Rate};

    fn profile(name: &str, cpu: f64, ram_gb: f64, rate: f64) -> WorkloadProfile {
        WorkloadProfile::flat(
            name,
            300.0,
            6,
            cpu,
            Bytes((ram_gb * 1e9) as u64),
            DiskDemand::new(Bytes((ram_gb * 0.25e9) as u64), Rate(rate)),
        )
    }

    #[test]
    fn engine_consolidates_idle_fleet() {
        let profiles: Vec<WorkloadProfile> = (0..10)
            .map(|i| profile(&format!("w{i}"), 0.4, 4.0, 100.0))
            .collect();
        let engine = ConsolidationEngine::builder().build();
        let plan = engine.consolidate(&profiles).unwrap();
        assert!(plan.report.evaluation.feasible);
        assert!(plan.machines_used() <= 2, "used {}", plan.machines_used());
        assert!(plan.consolidation_ratio() >= 5.0);
        assert_eq!(plan.placements.len(), 10);
    }

    #[test]
    fn greedy_strategy_also_produces_plans() {
        let profiles: Vec<WorkloadProfile> = (0..6)
            .map(|i| profile(&format!("w{i}"), 1.0, 8.0, 500.0))
            .collect();
        let engine = ConsolidationEngine::builder().build();
        let kairos = engine.consolidate(&profiles).unwrap();
        let greedy = engine
            .consolidate_with(&profiles, PlanStrategy::Greedy)
            .unwrap();
        assert!(kairos.machines_used() <= greedy.machines_used());
    }

    #[test]
    fn fits_together_gates_on_capacity() {
        let engine = ConsolidationEngine::builder().build();
        let light = vec![profile("a", 1.0, 4.0, 200.0), profile("b", 1.0, 4.0, 200.0)];
        assert!(engine.fits_together(&light).unwrap());
        let heavy = vec![
            profile("a", 8.0, 60.0, 2_000.0),
            profile("b", 8.0, 60.0, 2_000.0),
        ];
        assert!(!engine.fits_together(&heavy).unwrap());
    }

    #[test]
    fn fractional_bound_reported() {
        let profiles: Vec<WorkloadProfile> = (0..9)
            .map(|i| profile(&format!("w{i}"), 4.0, 8.0, 500.0))
            .collect();
        let engine = ConsolidationEngine::builder().build();
        // 36 cores / (12 × 0.95) = 3.16 → 4 machines.
        assert_eq!(engine.fractional_bound(&profiles).unwrap(), 4);
    }

    #[test]
    fn replicated_profiles_spread() {
        let mut p = profile("r", 0.5, 2.0, 100.0);
        p.replicas = 2;
        let engine = ConsolidationEngine::builder().max_machines(3).build();
        let plan = engine.consolidate(&[p]).unwrap();
        assert_eq!(plan.placements.len(), 2);
        assert_ne!(plan.placements[0].machine, plan.placements[1].machine);
    }

    #[test]
    fn empty_profiles_error() {
        let engine = ConsolidationEngine::builder().build();
        assert!(engine.consolidate(&[]).is_err());
    }

    #[test]
    fn plan_lookup_by_machine() {
        let profiles = vec![profile("a", 0.2, 2.0, 50.0), profile("b", 0.2, 2.0, 50.0)];
        let engine = ConsolidationEngine::builder().build();
        let plan = engine.consolidate(&profiles).unwrap();
        let m = plan.placements[0].machine;
        assert!(!plan.on_machine(m).is_empty());
    }
}
