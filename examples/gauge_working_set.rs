//! Buffer-pool gauging demo (§3.1 / Fig 2): measure a live database's
//! working set from the outside, with plain SQL against an unmodified
//! DBMS.
//!
//! ```text
//! cargo run --release --example gauge_working_set
//! ```

use kairos::dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos::monitor::{BufferGauge, GaugeParams, SimGaugeEnv};
use kairos::types::{Bytes, MachineSpec};
use kairos::workloads::{Driver, TpccWorkload, Workload};

fn main() {
    // A TPC-C tenant with a ~375 MB working set inside a 953 MB pool: the
    // OS reports the whole pool as active; gauging finds the truth.
    let pool = Bytes::mib(953);
    let workload = TpccWorkload::new(3, 120.0);
    let true_ws = workload.working_set();

    let mut host = Host::new(MachineSpec::server1());
    host.add_instance(DbmsInstance::new(DbmsConfig::mysql(pool)));
    let mut driver = Driver::new();
    driver.bind(&mut host, 0, Box::new(workload));
    let db = driver.bindings()[0].handle.db;

    println!("warming up the tenant ...");
    driver.warmup(&mut host, 20.0);
    let os_view = host.instance(0).ram_allocated();

    println!("growing the probe table ...");
    let mut env = SimGaugeEnv::new(&mut host, &mut driver, 0, db);
    let outcome = BufferGauge::new(GaugeParams::default()).run(&mut env);

    println!();
    println!("buffer pool:        {pool}");
    println!("OS 'active' view:   {os_view}");
    println!("true working set:   {true_ws}");
    println!("gauged working set: {}", outcome.working_set);
    println!(
        "safely stolen:      {} over {:.0} simulated seconds ({:.1} MB/s probe growth)",
        outcome.safely_stolen,
        outcome.duration_secs,
        outcome.growth_bytes_per_sec() / 1e6
    );
    println!(
        "RAM claim reduced by {:.1}x vs the OS view",
        os_view.as_f64() / outcome.working_set.as_f64()
    );
}
