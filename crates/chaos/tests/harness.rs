//! The chaos harness's own acceptance tests: the invariant suite holds
//! on a quiet fleet and under seeded schedules, reruns are
//! byte-identical, and a hand-written worst-case (crash a shard while a
//! double-faulted handoff sits parked) recovers.
//!
//! The full seed sweep lives in the `chaos_sweep` binary (CI runs
//! hundreds); these tests keep the harness itself honest at unit cost.

use kairos_chaos::{
    generate, run, run_on, ChaosBackend, ChaosConfig, ChaosFault, Schedule, ScheduledFault,
};

#[test]
fn quiet_fleet_holds_every_invariant() {
    let cfg = ChaosConfig::default();
    let outcome = run(&cfg, &Schedule::quiet(1));
    assert!(
        outcome.passed(),
        "fault-free run violated an invariant:\n{}",
        outcome.violation.unwrap().render()
    );
    // The baseline fleet is deliberately imbalanced: shard 0's heavies
    // must shed, so chaos always has live handoffs to collide with.
    assert!(
        outcome.report.handoffs_completed > 0,
        "quiet run moved nothing; the fault window would hit an idle fleet"
    );
    let total = (cfg.shards * cfg.tenants_per_shard + cfg.heavies) as u64;
    assert_eq!(outcome.report.owned_p100, total, "census peak = registered");
}

#[test]
fn seeded_schedules_hold_the_invariant_suite() {
    let cfg = ChaosConfig::default();
    for seed in 100..108u64 {
        let schedule = generate(seed, &cfg.bounds());
        let outcome = run(&cfg, &schedule);
        assert!(
            outcome.passed(),
            "seed {seed} violated an invariant under\n{}\n{}",
            schedule.render(),
            outcome.violation.unwrap().render()
        );
    }
}

#[test]
fn same_schedule_reruns_byte_identical() {
    let cfg = ChaosConfig::default();
    let schedule = generate(4242, &cfg.bounds());
    assert!(
        !schedule.faults.is_empty(),
        "seed must actually inject faults for determinism to mean much"
    );
    let a = run(&cfg, &schedule);
    let b = run(&cfg, &schedule);
    assert!(a.passed() && b.passed());
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "same seed, same schedule — the decision traces must match byte for byte"
    );
}

#[test]
fn chaos_over_faulted_tcp_holds_invariants_and_reruns_byte_identical() {
    // The same schedule grammar against real sockets: the faulted
    // decorator routes the schedule's logical endpoint names over
    // kernel-assigned loopback ports and applies the same precedence
    // contract below the stream. What differs (by design) is the far
    // side of a corruption — the TCP reader rejects the frame and the
    // connection closes — and the invariants must hold either way.
    let cfg = ChaosConfig::default();
    let schedule = generate(4242, &cfg.bounds());
    assert!(!schedule.faults.is_empty());
    let a = run_on(&cfg, &schedule, ChaosBackend::Tcp);
    assert!(
        a.passed(),
        "tcp-backed chaos run violated an invariant:\n{}",
        a.violation.unwrap().render()
    );
    let b = run_on(&cfg, &schedule, ChaosBackend::Tcp);
    assert!(b.passed());
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "same schedule over TCP must fingerprint byte-identically"
    );
}

#[test]
fn spans_armed_chaos_reruns_byte_identical_on_both_transports() {
    // Span tracing is part of the observable-behaviour contract when
    // armed: the same faulted schedule must reproduce the entire
    // cross-node span forest byte-for-byte on rerun, over loopback and
    // over real sockets — including the crash/restore leg, where the
    // restored shard restarts an empty span log at the same tick both
    // times.
    let cfg = ChaosConfig {
        spans: true,
        ..ChaosConfig::default()
    };
    let schedule = generate(4242, &cfg.bounds());
    assert!(!schedule.faults.is_empty());
    let baseline = run(&ChaosConfig::default(), &schedule);
    assert!(baseline.passed());
    for backend in [ChaosBackend::Loopback, ChaosBackend::Tcp] {
        let a = run_on(&cfg, &schedule, backend);
        assert!(
            a.passed(),
            "spans-armed chaos run violated an invariant ({backend:?}):\n{}",
            a.violation.unwrap().render()
        );
        let b = run_on(&cfg, &schedule, backend);
        assert!(b.passed());
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "spans-armed rerun must fingerprint byte-identically ({backend:?})"
        );
        assert!(
            a.fingerprint.len() > baseline.fingerprint.len(),
            "armed spans must actually contribute bytes to the fingerprint"
        );
    }
}

#[test]
fn crash_with_a_parked_handoff_in_flight_recovers() {
    // The hand-written worst case the satellite bugfixes exist for:
    // corrupt the receiver's Admit *and* the probe-first Owns so a
    // handoff parks, then crash the donor (whose evict outbox and
    // checkpoint are the only places the tenant still exists), restore
    // it, and demand full convergence.
    let cfg = ChaosConfig::default();
    let t0 = cfg.warmup; // first balance-eligible faulted round
    let schedule = Schedule {
        seed: 0x5EED_CA55,
        faults: vec![
            ScheduledFault {
                tick: t0,
                fault: ChaosFault::CorruptAdmit { shard: 1 },
            },
            ScheduledFault {
                tick: t0,
                fault: ChaosFault::CorruptOwns { shard: 1 },
            },
            ScheduledFault {
                tick: t0 + 6,
                fault: ChaosFault::Crash { shard: 0 },
            },
            ScheduledFault {
                tick: t0 + 12,
                fault: ChaosFault::Restore { shard: 0 },
            },
        ],
    };
    let outcome = run(&cfg, &schedule);
    assert!(
        outcome.passed(),
        "parked+crash recovery failed:\n{}",
        outcome.violation.unwrap().render()
    );
}

#[test]
fn report_percentiles_are_pinned_to_the_census_extremes() {
    let cfg = ChaosConfig::default();
    let outcome = run(&cfg, &Schedule::quiet(9));
    assert!(outcome.report.owned_p0 <= outcome.report.owned_p50);
    assert!(outcome.report.owned_p50 <= outcome.report.owned_p100);
    assert_eq!(outcome.report.ticks, cfg.total_ticks());
}

#[test]
fn sketched_handoff_frames_survive_the_fault_schedule() {
    // The sketched-telemetry leg: the same seeded schedules, but every
    // handoff frame crossing the (faulted) wire carries a deliberately
    // tight lossy sketch — a short verbatim tail and a coarse quantile
    // grid — instead of the default shape. Corruption, drops, crashes
    // and restores must leave the invariant suite intact, and reruns
    // must stay byte-identical: lossy compression is still
    // deterministic compression.
    let cfg = ChaosConfig {
        sketch: kairos_traces::SketchConfig { marks: 5, tail: 8 },
        ..ChaosConfig::default()
    };
    for seed in 300..304u64 {
        let schedule = generate(seed, &cfg.bounds());
        let a = run(&cfg, &schedule);
        assert!(
            a.passed(),
            "seed {seed} violated an invariant with sketched handoffs under\n{}\n{}",
            schedule.render(),
            a.violation.unwrap().render()
        );
        let b = run(&cfg, &schedule);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "sketched run must stay deterministic under replay (seed {seed})"
        );
    }
}
