//! Replica- and anti-affinity-aware drift handling: the solver has
//! supported replication and anti-affinity since the one-shot pipeline,
//! but the online loop only exercised singleton tenants. This test
//! drives a fleet holding a 2-replica tenant and an anti-affinity pair
//! through a load spike and asserts the constraints hold at every plan —
//! bootstrap, drift re-solve, and the executor's physical routing.

use kairos_controller::{Controller, ControllerConfig, SyntheticSource, TickOutcome};
use kairos_types::Bytes;
use kairos_workloads::RatePattern;

fn quick_config() -> ControllerConfig {
    ControllerConfig {
        horizon: 12,
        check_every: 4,
        cooldown_ticks: 12,
        ..ControllerConfig::default()
    }
}

/// Both replicas of `name` run, on distinct machines, in both the
/// placement map and the executor's physical routing — and the two views
/// agree.
fn assert_replicas_separated(controller: &Controller, name: &str) {
    let m0 = controller
        .placement()
        .machine_of(name, 0)
        .expect("replica 0 placed");
    let m1 = controller
        .placement()
        .machine_of(name, 1)
        .expect("replica 1 placed");
    assert_ne!(m0, m1, "replicas of {name} must not share a host");
    assert_eq!(
        controller.executor().machine_of(name, 0),
        Some(m0),
        "executor routing must match the placement map"
    );
    assert_eq!(controller.executor().machine_of(name, 1), Some(m1));
}

fn assert_pair_separated(controller: &Controller, a: &str, b: &str) {
    let ma = controller.placement().machine_of(a, 0).expect("placed");
    let mb = controller.placement().machine_of(b, 0).expect("placed");
    assert_ne!(ma, mb, "anti-affine pair {a}/{b} must not share a host");
}

#[test]
fn replicas_and_anti_affinity_survive_a_drift_resolve() {
    let engine = kairos_core::ConsolidationEngine::builder().build();
    let mut controller = Controller::new(quick_config(), engine);

    // Six tenants at ~2 cores each; w0 runs 2 replicas, w1/w2 must stay
    // apart (think: two halves of the same logical service).
    for i in 0..6 {
        let source = SyntheticSource::new(
            format!("w{i}"),
            300.0,
            Bytes::gib(4),
            RatePattern::Flat { tps: 200.0 },
        )
        .with_noise(0.0);
        let source = if i == 0 {
            source.then_at(40, RatePattern::Flat { tps: 640.0 })
        } else {
            source
        };
        if i == 0 {
            controller.add_workload_with_replicas(Box::new(source), 2);
        } else {
            controller.add_workload(Box::new(source));
        }
    }
    controller.add_anti_affinity("w1", "w2");

    let mut initial_plan_tick = None;
    let mut resolve_ticks = Vec::new();
    for tick in 0..96u64 {
        match controller.tick() {
            TickOutcome::InitialPlan { .. } => {
                initial_plan_tick = Some(tick);
                // Constraints hold from the very first plan.
                assert_replicas_separated(&controller, "w0");
                assert_pair_separated(&controller, "w1", "w2");
            }
            TickOutcome::Replanned(summary) => {
                resolve_ticks.push(tick);
                assert!(summary.feasible, "re-solve must stay feasible");
            }
            _ => {}
        }
    }

    assert!(
        initial_plan_tick.is_some_and(|t| t < 40),
        "plan must land before the spike"
    );
    assert!(
        !resolve_ticks.is_empty() && resolve_ticks.iter().all(|&t| t > 40),
        "the spike must force a re-solve: {resolve_ticks:?}"
    );

    // After the drift re-solve: still no co-located replicas, the pair
    // still separated, and the placement replays as feasible under the
    // constraint-carrying problem (replicas + anti-affinity included).
    assert_replicas_separated(&controller, "w0");
    assert_pair_separated(&controller, "w1", "w2");
    let eval = controller.verify_current().expect("planned");
    assert!(eval.feasible);
    assert_eq!(eval.violation, 0.0);

    // The replicated spike really costs capacity: both replicas forecast
    // at the spiked level, so the fleet spreads across > 1 machine.
    assert!(controller.placement().machines_used() >= 2);
}

#[test]
fn anti_affinity_is_enforced_even_when_packing_would_prefer_one_host() {
    // Two tiny tenants that would trivially share one machine — the
    // anti-affinity pair must force a second host from the first plan.
    let engine = kairos_core::ConsolidationEngine::builder().build();
    let mut controller = Controller::new(quick_config(), engine);
    for i in 0..2 {
        controller.add_workload(Box::new(
            SyntheticSource::new(
                format!("tiny{i}"),
                300.0,
                Bytes::gib(2),
                RatePattern::Flat { tps: 50.0 },
            )
            .with_noise(0.0),
        ));
    }
    controller.add_anti_affinity("tiny0", "tiny1");

    for _ in 0..20 {
        if let TickOutcome::InitialPlan { machines, .. } = controller.tick() {
            assert_eq!(machines, 2, "anti-affinity must force two machines");
        }
    }
    assert_pair_separated(&controller, "tiny0", "tiny1");
}
