//! The RPC wire envelope: length-framed, CRC-trailed, version-tagged
//! messages over the workspace codec (`shims/serde`).
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"KNET"
//! 4       4     protocol version (u32 LE, see RPC_WIRE_VERSION; the
//!               high bit is SPAN_FLAG — span section present)
//! 8       8     payload length (u64 LE; payload only, excludes the
//!               span section)
//! [16     28    span section (only when SPAN_FLAG): trace id (u64),
//!               span id (u64), origin node (u32), tick (u64), all LE]
//! 16|44   n     payload (shims/serde wire format: a Request or Response)
//! …+n     4     CRC-32 (IEEE, u32 LE) over everything before it
//! ```
//!
//! The span section is **optional and additive**: a frame without
//! [`SPAN_FLAG`] is bit-for-bit the pre-span wire format, which is the
//! compatibility property the transport-equivalence suite pins. When
//! present, the section sits inside the CRC (and under the auth tag),
//! so a damaged or forged span context is rejected with the same
//! discipline as a damaged payload.
//!
//! The layout deliberately mirrors `kairos-store`'s snapshot frame (and
//! reuses its CRC) so one validation discipline covers both the
//! durability and the network boundary; only the magic differs, so a
//! snapshot file can never be mistaken for an RPC message or vice versa.
//! The length prefix sits at a fixed offset, which is what lets a
//! blocking stream reader ([`read_frame`]) recover message boundaries
//! from a TCP byte stream.
//!
//! Every validation failure is a clean [`NetError`] — a frame is checked
//! (magic, version, sane length, CRC) *before* any payload decoding, and
//! the codec itself bounds-checks every read, so damaged or truncated
//! bytes can never panic a node or half-apply a message.

use crate::transport::NetError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Magic prefix of every kairos RPC frame.
pub const NET_MAGIC: [u8; 4] = *b"KNET";

/// Protocol version carried by every frame. Bump on any change to the
/// `Request`/`Response` catalog or the codec; mismatched peers then fail
/// loudly instead of misdecoding each other.
pub const RPC_WIRE_VERSION: u32 = 1;

/// Hard cap on a frame's payload length. Far above any real message
/// (the largest is a full-telemetry handoff, tens of KiB), low enough
/// that a corrupted length prefix cannot make a reader allocate or block
/// on gigabytes.
pub const MAX_PAYLOAD_LEN: u64 = 64 << 20;

/// High bit of the version field: a 28-byte span section follows the
/// header. Frames without it are byte-identical to the pre-span format.
pub const SPAN_FLAG: u32 = 0x8000_0000;

/// Size of the optional span section: trace id + span id + origin + tick.
pub const SPAN_SECTION_LEN: usize = 8 + 8 + 4 + 8;

const HEADER_LEN: usize = 16;
const TRAILER_LEN: usize = 4;

use kairos_obs::span::SpanContext;

fn span_section(ctx: &SpanContext) -> [u8; SPAN_SECTION_LEN] {
    let mut out = [0u8; SPAN_SECTION_LEN];
    out[0..8].copy_from_slice(&ctx.trace_id.to_le_bytes());
    out[8..16].copy_from_slice(&ctx.span_id.to_le_bytes());
    out[16..20].copy_from_slice(&ctx.origin.to_le_bytes());
    out[20..28].copy_from_slice(&ctx.tick.to_le_bytes());
    out
}

fn parse_span_section(bytes: &[u8]) -> SpanContext {
    SpanContext {
        trace_id: u64::from_le_bytes(bytes[0..8].try_into().expect("sized slice")),
        span_id: u64::from_le_bytes(bytes[8..16].try_into().expect("sized slice")),
        origin: u32::from_le_bytes(bytes[16..20].try_into().expect("sized slice")),
        tick: u64::from_le_bytes(bytes[20..28].try_into().expect("sized slice")),
    }
}

/// Encode `value` into a complete frame (header + payload + CRC).
pub fn encode_frame<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    encode_frame_with_span(value, None)
}

/// [`encode_frame`], optionally carrying a span context in the frame
/// header's span section. `None` produces the exact pre-span bytes.
pub fn encode_frame_with_span<T: Serialize + ?Sized>(
    value: &T,
    span: Option<SpanContext>,
) -> Vec<u8> {
    let payload = serde::to_bytes(value);
    let span_len = if span.is_some() { SPAN_SECTION_LEN } else { 0 };
    let mut out = Vec::with_capacity(HEADER_LEN + span_len + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&NET_MAGIC);
    let version = RPC_WIRE_VERSION | if span.is_some() { SPAN_FLAG } else { 0 };
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    if let Some(ctx) = &span {
        out.extend_from_slice(&span_section(ctx));
    }
    out.extend_from_slice(&payload);
    let crc = kairos_store::crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validate a complete frame (magic, version, length, CRC) and decode
/// its payload, dropping any span section. Never panics on malformed
/// input.
pub fn decode_frame<T: Deserialize>(bytes: &[u8]) -> Result<T, NetError> {
    decode_frame_with_span(bytes).map(|(value, _)| value)
}

/// [`decode_frame`], also returning the span context the frame carried
/// (if its [`SPAN_FLAG`] was set). Server handlers install it for the
/// duration of the dispatch so nested work chains to the caller's span.
pub fn decode_frame_with_span<T: Deserialize>(
    bytes: &[u8],
) -> Result<(T, Option<SpanContext>), NetError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(NetError::Truncated);
    }
    if bytes[..4] != NET_MAGIC {
        return Err(NetError::BadMagic);
    }
    let version_field = u32::from_le_bytes(bytes[4..8].try_into().expect("sized slice"));
    let version = version_field & !SPAN_FLAG;
    if version != RPC_WIRE_VERSION {
        return Err(NetError::UnsupportedVersion {
            found: version,
            expected: RPC_WIRE_VERSION,
        });
    }
    let span_len = if version_field & SPAN_FLAG != 0 {
        SPAN_SECTION_LEN
    } else {
        0
    };
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("sized slice"));
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(NetError::Oversized(payload_len));
    }
    let expected_total = (HEADER_LEN as u64 + span_len as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN as u64));
    if expected_total != Some(bytes.len() as u64) {
        return Err(NetError::Truncated);
    }
    let body_end = bytes.len() - TRAILER_LEN;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().expect("sized slice"));
    if kairos_store::crc32(&bytes[..body_end]) != stored_crc {
        return Err(NetError::ChecksumMismatch);
    }
    let span =
        (span_len > 0).then(|| parse_span_section(&bytes[HEADER_LEN..HEADER_LEN + span_len]));
    let payload_start = HEADER_LEN + span_len;
    serde::from_bytes(&bytes[payload_start..body_end])
        .map(|value| (value, span))
        .map_err(NetError::Decode)
}

/// Write one frame to a blocking stream.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), NetError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Read one complete frame from a blocking stream: header first (fixed
/// 16 bytes → payload length), then payload + CRC, then full validation.
/// Returns the whole validated frame so callers can decode (or forward)
/// it. The length is sanity-capped *before* the payload read, so a
/// damaged prefix cannot make the reader allocate or block unboundedly.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, NetError> {
    read_frame_with_trailer(r, 0)
}

/// [`read_frame`] for streams whose frames carry `extra` trailer bytes
/// *after* the CRC — the keyed-auth tag (see [`crate::auth`]). The CRC
/// still covers exactly the header + payload; the extra trailer is read
/// but left for the auth layer to verify, so framing stays recoverable
/// from the byte stream whether or not a key is configured.
pub fn read_frame_with_trailer(r: &mut impl Read, extra: usize) -> Result<Vec<u8>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != NET_MAGIC {
        return Err(NetError::BadMagic);
    }
    let version_field = u32::from_le_bytes(header[4..8].try_into().expect("sized slice"));
    let version = version_field & !SPAN_FLAG;
    if version != RPC_WIRE_VERSION {
        return Err(NetError::UnsupportedVersion {
            found: version,
            expected: RPC_WIRE_VERSION,
        });
    }
    let span_len = if version_field & SPAN_FLAG != 0 {
        SPAN_SECTION_LEN
    } else {
        0
    };
    let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("sized slice"));
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(NetError::Oversized(payload_len));
    }
    let rest = span_len + payload_len as usize + TRAILER_LEN + extra;
    let mut frame = Vec::with_capacity(HEADER_LEN + rest);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + rest, 0);
    r.read_exact(&mut frame[HEADER_LEN..])?;
    let body_end = HEADER_LEN + span_len + payload_len as usize;
    let crc_bytes: [u8; TRAILER_LEN] = frame[body_end..body_end + TRAILER_LEN]
        .try_into()
        .expect("sized slice");
    if kairos_store::crc32(&frame[..body_end]) != u32::from_le_bytes(crc_bytes) {
        return Err(NetError::ChecksumMismatch);
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_a_stream() {
        let frame = encode_frame(&(String::from("tenant"), 7u64));
        let mut stream: &[u8] = &frame;
        let read = read_frame(&mut stream).expect("valid frame reads");
        assert_eq!(read, frame);
        let back: (String, u64) = decode_frame(&read).expect("decodes");
        assert_eq!(back, (String::from("tenant"), 7));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_reading() {
        let mut frame = encode_frame(&1u8);
        frame[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut stream: &[u8] = &frame;
        assert!(matches!(
            read_frame(&mut stream),
            Err(NetError::Oversized(_))
        ));
        assert!(matches!(
            decode_frame::<u8>(&frame),
            Err(NetError::Oversized(_))
        ));
    }

    #[test]
    fn span_section_roundtrips_and_stays_inside_the_crc() {
        let ctx = SpanContext {
            trace_id: 0xDEAD_BEEF_0000_0001,
            span_id: 0xDEAD_BEEF_0000_0002,
            origin: 7,
            tick: 42,
        };
        let frame = encode_frame_with_span(&(String::from("tenant"), 9u64), Some(ctx));
        // Streams the extra 28 bytes transparently.
        let mut stream: &[u8] = &frame;
        let read = read_frame_with_trailer(&mut stream, 0).expect("span frame reads");
        assert_eq!(read, frame);
        let (back, span): ((String, u64), _) =
            decode_frame_with_span(&read).expect("decodes with span");
        assert_eq!(back, (String::from("tenant"), 9));
        assert_eq!(span, Some(ctx));
        // decode_frame tolerates and drops the section.
        let plain: (String, u64) = decode_frame(&frame).expect("decodes without span");
        assert_eq!(plain, back);
        // A flipped bit inside the span section fails the CRC.
        let mut damaged = frame.clone();
        damaged[20] ^= 0x01;
        assert!(matches!(
            decode_frame_with_span::<(String, u64)>(&damaged),
            Err(NetError::ChecksumMismatch)
        ));
    }

    #[test]
    fn spanless_frames_are_byte_identical_to_the_pre_span_format() {
        let value = (String::from("tenant"), 7u64);
        let frame = encode_frame_with_span(&value, None);
        assert_eq!(frame, encode_frame(&value));
        // Reconstruct the pre-span layout by hand: the bytes must match
        // exactly — absent flag ⇒ the old wire format, bit for bit.
        let payload = serde::to_bytes(&value);
        let mut expected = Vec::new();
        expected.extend_from_slice(&NET_MAGIC);
        expected.extend_from_slice(&RPC_WIRE_VERSION.to_le_bytes());
        expected.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        expected.extend_from_slice(&payload);
        let crc = kairos_store::crc32(&expected);
        expected.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(frame, expected);
        let (_, span) = decode_frame_with_span::<(String, u64)>(&frame).expect("decodes");
        assert!(span.is_none());
    }

    #[test]
    fn store_snapshot_magic_is_rejected() {
        // A snapshot file fed to the RPC decoder must fail on magic, not
        // misdecode.
        let snap = kairos_store::encode_frame(1, &42u64);
        assert!(matches!(
            decode_frame::<u64>(&snap),
            Err(NetError::BadMagic)
        ));
    }
}
