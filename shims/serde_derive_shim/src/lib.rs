//! Field-wise `Serialize`/`Deserialize` derives for the workspace-local
//! serde shim.
//!
//! The shim's traits stopped being markers when the checkpoint/restore
//! stack (`kairos-store`) needed a real binary codec without network
//! access to crates.io: each derive now expands to a field-by-field
//! `encode_to`/`decode_from` implementation against the shim's canonical
//! little-endian wire format (see `shims/serde`).
//!
//! Supported shapes — which cover every derive site in this workspace:
//!
//! * named-field structs (`struct S { a: T, .. }`),
//! * tuple structs (`struct S(T, U);`),
//! * unit structs,
//! * enums whose variants are unit, tuple, or struct-like (tagged with a
//!   `u32` variant index in declaration order).
//!
//! Generic types are *not* supported and fail loudly at compile time
//! rather than silently mis-expanding (reproducing bounds would need a
//! real parser like `syn`, which the offline build cannot fetch).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    shape
        .serialize_impl()
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    shape
        .deserialize_impl()
        .parse()
        .expect("generated Deserialize impl must parse")
}

/// One variant's payload shape.
enum Fields {
    Unit,
    /// Tuple fields: arity only (types are recovered by inference).
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Shape {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

impl Shape {
    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::Struct(Fields::Unit) => String::new(),
            Kind::Struct(Fields::Tuple(n)) => (0..*n)
                .map(|i| format!("::serde::Serialize::encode_to(&self.{i}, out);"))
                .collect(),
            Kind::Struct(Fields::Named(fields)) => fields
                .iter()
                .map(|f| format!("::serde::Serialize::encode_to(&self.{f}, out);"))
                .collect(),
            Kind::Enum(variants) => {
                let mut arms = String::new();
                for (tag, (vname, fields)) in variants.iter().enumerate() {
                    let arm = match fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => {{ ::serde::Serialize::encode_to(&{tag}u32, out); }}"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let encodes: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::encode_to({b}, out);"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => {{ ::serde::Serialize::encode_to(&{tag}u32, out); {encodes} }}",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let encodes: String = fields
                                .iter()
                                .map(|f| format!("::serde::Serialize::encode_to({f}, out);"))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => {{ ::serde::Serialize::encode_to(&{tag}u32, out); {encodes} }}",
                                fields.join(", ")
                            )
                        }
                    };
                    arms.push_str(&arm);
                }
                format!("match self {{ {arms} }}")
            }
        };
        format!(
            "impl ::serde::Serialize for {name} {{\
                 fn encode_to(&self, out: &mut ::std::vec::Vec<u8>) {{ {body} }}\
             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::Struct(fields) => {
                format!("::std::result::Result::Ok({})", construct(name, fields))
            }
            Kind::Enum(variants) => {
                let mut arms = String::new();
                for (tag, (vname, fields)) in variants.iter().enumerate() {
                    arms.push_str(&format!(
                        "{tag}u32 => ::std::result::Result::Ok({}),",
                        construct(&format!("{name}::{vname}"), fields)
                    ));
                }
                format!(
                    "let tag: u32 = ::serde::Deserialize::decode_from(input)?;\
                     match tag {{ {arms} _ => ::std::result::Result::Err(\
                         ::serde::Error::msg(\"invalid enum tag for {name}\")) }}"
                )
            }
        };
        format!(
            "impl ::serde::Deserialize for {name} {{\
                 fn decode_from(input: &mut &[u8]) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
             }}"
        )
    }
}

/// Constructor expression decoding each field in declaration order.
fn construct(path: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Tuple(n) => format!(
            "{path}({})",
            (0..*n)
                .map(|_| "::serde::Deserialize::decode_from(input)?".to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Fields::Named(fields) => format!(
            "{path} {{ {} }}",
            fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::decode_from(input)?"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

// ----- input parsing (no syn: plain token scanning) -----

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility until the item keyword.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    break;
                }
                tokens.next(); // `pub` etc.
            }
            Some(TokenTree::Group(_)) => {
                tokens.next(); // `pub(crate)`'s group
            }
            other => panic!("serde shim derive: unexpected input before item keyword: {other:?}"),
        }
    }
    let kw = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item keyword, got {other:?}"),
    };
    if kw == "union" {
        panic!("serde shim derive does not support unions");
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types");
        }
    }
    let kind = if kw == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("serde shim derive: unexpected struct body: {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(enum_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        }
    };
    Shape { name, kind }
}

/// Split a brace-group token stream into top-level comma-separated
/// segments, tracking `<`/`>` depth so generic arguments (e.g.
/// `BTreeMap<String, usize>`) do not split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                segments.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Strip leading attributes and visibility from one field/variant segment.
fn strip_meta(segment: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < segment.len() {
        match &segment[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = segment.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate)
                    }
                }
            }
            _ => break,
        }
    }
    &segment[i..]
}

/// Field names of a named-field struct body, in declaration order.
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let seg = strip_meta(seg);
            match seg.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Arity of a tuple-struct / tuple-variant body.
fn tuple_arity(stream: TokenStream) -> usize {
    split_top_level(stream)
        .iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

/// Enum variants: name plus payload shape, in declaration order.
fn enum_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level(stream)
        .iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let seg = strip_meta(seg);
            let name = match seg.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected variant name, got {other:?}"),
            };
            let fields = match seg.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(tuple_arity(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                    "serde shim derive: explicit discriminants are not supported (variant {name})"
                ),
                None => Fields::Unit,
                other => panic!("serde shim derive: unexpected variant body: {other:?}"),
            };
            (name, fields)
        })
        .collect()
}
