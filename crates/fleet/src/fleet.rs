//! The sharded fleet control plane.
//!
//! [`FleetController`] owns N independent [`ShardController`]s — each
//! with its own telemetry ingester, drift detector, warm re-solver,
//! migration planner and executor over a disjoint slice of hosts — plus
//! the [`crate::balancer`] policy that moves tenants between shards via
//! the two-phase handoff of [`crate::handoff`]. One `tick()` advances
//! every shard one monitoring interval and, on the balance cadence, runs
//! one balance round.
//!
//! The hierarchy is what makes the control plane scale: per-shard
//! re-solves see only their shard's tenants (solve cost grows with shard
//! size, not fleet size), while the balancer sees only coarse per-shard
//! summaries ([`kairos_traces::aggregate`] roll-ups), never per-tenant
//! telemetry.

use crate::balancer::{run_balance_round, BalanceGate, BalancerConfig, ParkedHandoff};
use crate::handoff::{HandoffOutcome, HandoffRecord};
use crate::shardmap::ShardMap;
use crate::snapshot::{FleetSnapshot, FLEET_SNAPSHOT_VERSION};
use kairos_controller::{
    ControllerConfig, ShardController, ShardSummary, TelemetrySource, TenantHandoff, TickOutcome,
    TRACE_CHECKPOINT_CAP,
};
use kairos_core::ConsolidationEngine;
use kairos_obs::{
    DecisionLog, HealthMonitor, MetricsRegistry, ParkedAges, SpanLog, SpanRecord, TracedEvent,
};
use kairos_solver::{evaluate, Assignment, ConsolidationProblem, Evaluation};
use kairos_store::StoreError;
use kairos_types::WorkloadProfile;
use std::path::Path;
use std::time::Instant;

/// Fleet-level tuning.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of shards. Each runs an independent control loop over its
    /// own (shard-local) machine namespace.
    pub shards: usize,
    /// Per-shard loop tuning.
    pub shard: ControllerConfig,
    pub balancer: BalancerConfig,
    /// Worker threads for the per-shard tick fan-out (and the per-shard
    /// audit evaluations). Shard ticks — including any re-solves they
    /// trigger — are independent, so a drift burst hitting N shards costs
    /// one solve's latency instead of N on a machine with enough cores.
    /// `1` = fully serial (the reference behaviour; results are
    /// tick-for-tick identical at any thread count). Defaults to
    /// `KAIROS_FLEET_THREADS` if set, else the machine's available
    /// parallelism.
    pub tick_threads: usize,
}

/// Default tick-thread count: the `KAIROS_FLEET_THREADS` environment
/// override (the CI determinism matrix pins it to 1 and 4), else
/// whatever parallelism the machine offers.
pub fn default_tick_threads() -> usize {
    if let Ok(v) = std::env::var("KAIROS_FLEET_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 4,
            shard: ControllerConfig::default(),
            balancer: BalancerConfig::default(),
            tick_threads: default_tick_threads(),
        }
    }
}

/// Run `f` over `(job, out)` pairs, fanned across up to `threads` scoped
/// worker threads in contiguous chunks. Each result lands in its own
/// slot, so the merged `outs` is in job order regardless of which thread
/// finished first — the invariant the determinism property tests pin
/// down. `threads <= 1` runs inline with zero spawn overhead.
fn fan_out<J: Send, O: Send>(
    threads: usize,
    jobs: &mut [J],
    outs: &mut [O],
    f: impl Fn(&mut J, &mut O) + Sync,
) {
    debug_assert_eq!(jobs.len(), outs.len());
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads <= 1 {
        for (job, out) in jobs.iter_mut().zip(outs.iter_mut()) {
            f(job, out);
        }
        return;
    }
    let chunk = jobs.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (job_chunk, out_chunk) in jobs.chunks_mut(chunk).zip(outs.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (job, out) in job_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    f(job, out);
                }
            });
        }
    });
}

/// Fleet-level counters. Serializable: the tick counter drives the
/// balance cadence, so a restored fleet must resume from the
/// checkpointed counts.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct FleetStats {
    pub ticks: u64,
    pub balance_rounds: u64,
    pub handoffs_completed: u64,
    pub handoffs_rejected: u64,
    /// Handoffs that failed mid-handshake and were rolled back onto the
    /// donor ([`HandoffOutcome::Failed`]). Always 0 in-process; only a
    /// real transport can damage or lose a frame between the phases.
    pub handoffs_failed: u64,
}

/// The registry-backed live counters behind [`FleetStats`], plus the
/// fleet-only instruments the compatibility view doesn't carry: tick
/// wall-clock latency **split by what the tick did** (quiet
/// poll-and-ingest vs. a tick that solved or moved tenants — the two
/// populations whose conflation the old `tick_p99` hid) and the parked
/// handoff lot's depth.
///
/// Same pattern as [`kairos_controller::ShardMetrics`]: one code path
/// owns counting, [`FleetMetrics::stats`] assembles the serializable
/// view on demand, and the `Metrics` exporters render the registry.
pub struct FleetMetrics {
    registry: MetricsRegistry,
    pub ticks: kairos_obs::Counter,
    pub balance_rounds: kairos_obs::Counter,
    pub handoffs_completed: kairos_obs::Counter,
    pub handoffs_rejected: kairos_obs::Counter,
    pub handoffs_failed: kairos_obs::Counter,
    /// Wall-clock latency of ticks where no shard solved and no tenant
    /// moved — the steady-state polling cost.
    pub poll_tick_usecs: kairos_obs::Histogram,
    /// Wall-clock latency of ticks that bootstrapped, re-planned or
    /// completed handoffs — the solver-dominated population.
    pub solve_tick_usecs: kairos_obs::Histogram,
    /// Current depth of the parked-handoff retry lot.
    pub parked_depth: kairos_obs::FloatCell,
}

impl FleetMetrics {
    pub fn new(registry: MetricsRegistry) -> FleetMetrics {
        FleetMetrics {
            ticks: registry.counter("kairos_fleet_ticks_total"),
            balance_rounds: registry.counter("kairos_fleet_balance_rounds_total"),
            handoffs_completed: registry.counter("kairos_fleet_handoffs_completed_total"),
            handoffs_rejected: registry.counter("kairos_fleet_handoffs_rejected_total"),
            handoffs_failed: registry.counter("kairos_fleet_handoffs_failed_total"),
            poll_tick_usecs: registry.histogram("kairos_fleet_poll_tick_usecs"),
            solve_tick_usecs: registry.histogram("kairos_fleet_solve_tick_usecs"),
            parked_depth: registry.gauge("kairos_fleet_parked_depth"),
            registry,
        }
    }

    /// The registry these counters live in.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Assemble the compatibility view.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            ticks: self.ticks.get(),
            balance_rounds: self.balance_rounds.get(),
            handoffs_completed: self.handoffs_completed.get(),
            handoffs_rejected: self.handoffs_rejected.get(),
            handoffs_failed: self.handoffs_failed.get(),
        }
    }

    /// Seed the registry from a checkpointed view (restore path).
    pub fn restore(&self, stats: &FleetStats) {
        self.ticks.set(stats.ticks);
        self.balance_rounds.set(stats.balance_rounds);
        self.handoffs_completed.set(stats.handoffs_completed);
        self.handoffs_rejected.set(stats.handoffs_rejected);
        self.handoffs_failed.set(stats.handoffs_failed);
    }
}

/// What one fleet tick did.
#[derive(Debug)]
pub struct FleetTickReport {
    /// Per-shard outcome, indexed by shard.
    pub outcomes: Vec<TickOutcome>,
    /// Handoffs proposed by this tick's balance round (empty off-cadence).
    pub handoffs: Vec<HandoffRecord>,
}

/// Global placement audit: every shard's placement re-evaluated against
/// the shard-local restriction of one global problem
/// ([`kairos_solver::ConsolidationProblem::restrict`]).
#[derive(Debug)]
pub struct FleetAudit {
    /// Per shard: `None` while bootstrapping (or mid-handoff tenants not
    /// yet placed), otherwise the evaluation of its current placement.
    pub per_shard: Vec<Option<Evaluation>>,
    /// Machines in use per shard.
    pub machines_used: Vec<usize>,
}

impl FleetAudit {
    /// Every planned shard's placement is feasible — zero capacity
    /// violations fleet-wide.
    pub fn zero_violations(&self) -> bool {
        self.per_shard
            .iter()
            .flatten()
            .all(|e| e.feasible && e.violation == 0.0)
    }

    /// Every shard evaluated (none bootstrapping / mid-handoff).
    pub fn complete(&self) -> bool {
        self.per_shard.iter().all(|e| e.is_some())
    }

    /// All shards within the machine budget.
    pub fn within_budget(&self, budget: usize) -> bool {
        self.machines_used.iter().all(|&m| m <= budget)
    }

    pub fn total_machines(&self) -> usize {
        self.machines_used.iter().sum()
    }
}

/// The top-level control plane. See module docs.
pub struct FleetController {
    cfg: FleetConfig,
    shards: Vec<ShardController>,
    map: ShardMap,
    /// Fleet-wide anti-affinity pairs (by name); registered on every
    /// shard so they keep holding wherever a handoff lands a tenant.
    anti_affinity: Vec<(String, String)>,
    handoff_log: Vec<HandoffRecord>,
    /// Balance round at which each tenant was last probed for a handoff
    /// (completed or rejected) — the hysteresis cooldown's memory.
    probe_cooldown: std::collections::BTreeMap<String, u64>,
    /// Parking lot for handoffs stranded mid-handshake (see
    /// [`run_balance_round`]). In-process admits cannot fail, so this
    /// stays empty here — the field exists because the shared round
    /// owns the recovery contract — and is deliberately not
    /// checkpointed (a live telemetry source cannot serialize; an
    /// in-process fleet never has anything to persist in it).
    parked: Vec<ParkedHandoff>,
    /// Chaos-harness hook: skip/delay injections over the balance
    /// cadence. Idle (the default) it is a pass-through.
    gate: BalanceGate,
    metrics: FleetMetrics,
    /// Fleet-level decision trace: balancer-round events, recorded on
    /// the tick thread (cross-shard work is single-threaded after the
    /// fan-out join, so the stream is deterministic at any thread
    /// count). Shard-loop events live in each shard's own log.
    log: DecisionLog,
    /// Balancer-side causal span log (`balance_round` roots plus
    /// `handoff`/`parked_retry` children); shard-side spans live in each
    /// shard's own log. Disabled by default.
    spans: SpanLog,
    /// The health watchdog, when armed via [`FleetController::set_health`].
    /// Observed once per tick over the fleet + shard registries; newly
    /// fired rules record [`kairos_obs::DecisionEvent::HealthFlagged`]
    /// events. `None` (the default) costs nothing and keeps the decision
    /// trace byte-identical to a watchdog-free run.
    health: Option<HealthMonitor>,
    /// First-seen balance round per parked tenant — feeds the
    /// `kairos_fleet_parked_oldest_rounds` gauge the watchdog's
    /// aged-parked-handoff rule watches. Kept out of
    /// [`crate::balancer::BalancerSoftState`]: ages are derivable
    /// observability, not resume state.
    parked_ages: ParkedAges,
}

impl FleetController {
    /// A fleet whose shards all run the default consolidation engine.
    pub fn new(cfg: FleetConfig) -> FleetController {
        let engines = (0..cfg.shards)
            .map(|_| ConsolidationEngine::builder().build())
            .collect();
        FleetController::with_engines(cfg, engines)
    }

    /// A fleet with one pre-built engine per shard (custom machine
    /// classes, disk models, solver budgets).
    ///
    /// # Panics
    /// Panics unless `engines.len() == cfg.shards`.
    pub fn with_engines(cfg: FleetConfig, engines: Vec<ConsolidationEngine>) -> FleetController {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert_eq!(engines.len(), cfg.shards, "one engine per shard");
        let shards = engines
            .into_iter()
            .map(|e| ShardController::new(cfg.shard, e))
            .collect();
        FleetController {
            map: ShardMap::new(cfg.shards),
            cfg,
            shards,
            anti_affinity: Vec::new(),
            handoff_log: Vec::new(),
            probe_cooldown: std::collections::BTreeMap::new(),
            parked: Vec::new(),
            gate: BalanceGate::default(),
            metrics: FleetMetrics::new(MetricsRegistry::new()),
            log: DecisionLog::new(),
            spans: SpanLog::new(kairos_obs::span::NODE_BALANCER),
            health: None,
            parked_ages: ParkedAges::new(),
        }
    }

    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    pub fn stats(&self) -> FleetStats {
        self.metrics.stats()
    }

    /// The fleet-level metrics registry (balancer counters, tick-latency
    /// histograms split poll vs. solve, parked-lot depth). Per-shard
    /// registries are reachable via
    /// [`kairos_controller::ShardController::metrics_registry`]; the
    /// render helpers below merge all of them.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        self.metrics.registry()
    }

    /// Every registry in the control plane — fleet-level first, then one
    /// per shard — rendered as one flat JSON object.
    pub fn metrics_json(&self) -> String {
        let shard_regs: Vec<&MetricsRegistry> =
            self.shards.iter().map(|s| s.metrics_registry()).collect();
        let mut all = vec![self.metrics.registry()];
        all.extend(shard_regs);
        kairos_obs::render_json_all(&all)
    }

    /// Every registry in the control plane in Prometheus text format.
    pub fn metrics_prometheus(&self) -> String {
        let shard_regs: Vec<&MetricsRegistry> =
            self.shards.iter().map(|s| s.metrics_registry()).collect();
        let mut all = vec![self.metrics.registry()];
        all.extend(shard_regs);
        kairos_obs::render_prometheus_all(&all)
    }

    /// The fleet-level decision trace (balancer rounds).
    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    /// The fleet trace's events, oldest first.
    pub fn trace_events(&self) -> Vec<TracedEvent> {
        self.log.to_vec()
    }

    /// The canonical fleet trace bytes (workspace codec) — the
    /// byte-identity the net equivalence suite asserts against the RPC
    /// balancer's trace.
    pub fn trace_bytes(&self) -> Vec<u8> {
        self.log.trace_bytes()
    }

    /// Enable or disable decision tracing fleet-wide (the fleet log and
    /// every shard's). Disabled, recording is a single branch per event —
    /// the bench-overhead configuration.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.log.set_enabled(enabled);
        for shard in &mut self.shards {
            shard.set_tracing(enabled);
        }
    }

    /// Enable or disable causal span tracing fleet-wide: the balancer's
    /// span log (node id `span::NODE_BALANCER`) and every shard's (node
    /// id `span::node_for_shard(i)`). Disabled (the default) nothing
    /// records, and RPC deployments emit span-free frames.
    pub fn set_span_tracing(&mut self, enabled: bool) {
        self.spans.set_enabled(enabled);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.configure_spans(kairos_obs::span::node_for_shard(i), enabled);
        }
    }

    /// The balancer-side span log.
    pub fn span_log(&self) -> &SpanLog {
        &self.spans
    }

    /// Renumber the balancer-side span log's node id — a zone gives its
    /// internal fleet balancer a zone-scoped id
    /// (`span::node_for_zone_balancer`) so two zones' internal rounds
    /// never collide in span-id space.
    pub fn set_span_node(&mut self, node: u32) {
        self.spans.set_node(node);
    }

    /// The balancer-side canonical span bytes (workspace codec).
    pub fn span_bytes(&self) -> Vec<u8> {
        self.spans.span_bytes()
    }

    /// Every span in the control plane — balancer first, then each
    /// shard's, in shard order. The flight-recorder query layer and the
    /// span-tree assembler consume this merged view.
    pub fn all_spans(&self) -> Vec<SpanRecord> {
        let mut all = self.spans.to_vec();
        for shard in &self.shards {
            all.extend(shard.span_log().to_vec());
        }
        all
    }

    /// Arm the health watchdog with `monitor` (e.g.
    /// `HealthMonitor::new()` for the default rule set). Observed once
    /// per tick; newly fired rules land in the decision trace as
    /// `HealthFlagged` events.
    pub fn set_health(&mut self, monitor: Option<HealthMonitor>) {
        self.health = monitor;
    }

    /// The watchdog's current report, if one is armed.
    pub fn health_report(&self) -> Option<kairos_obs::HealthReport> {
        self.health.as_ref().map(|m| m.report().clone())
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    pub fn shards(&self) -> &[ShardController] {
        &self.shards
    }

    /// All handoffs ever proposed (completed and rejected).
    pub fn handoffs(&self) -> &[HandoffRecord] {
        &self.handoff_log
    }

    /// Admit a new tenant, assigned to the least-populated shard.
    /// Returns the shard chosen.
    pub fn add_workload(&mut self, source: Box<dyn TelemetrySource>) -> usize {
        let shard = self.map.least_populated();
        self.add_workload_to(shard, source);
        shard
    }

    /// Admit a new tenant to a specific shard (initial partitioning).
    pub fn add_workload_to(&mut self, shard: usize, source: Box<dyn TelemetrySource>) {
        self.map.assign(source.name(), shard);
        self.shards[shard].add_workload(source);
    }

    /// Admit a replicated tenant to a specific shard.
    pub fn add_workload_with_replicas(
        &mut self,
        shard: usize,
        source: Box<dyn TelemetrySource>,
        replicas: u32,
    ) {
        self.map.assign(source.name(), shard);
        self.shards[shard].add_workload_with_replicas(source, replicas);
    }

    /// Retire a tenant wherever it currently lives.
    pub fn remove_workload(&mut self, name: &str) {
        if let Some(shard) = self.map.remove(name) {
            self.shards[shard].remove_workload(name);
        }
        self.probe_cooldown.remove(name);
        // In-process handshakes never park, but a retired tenant must
        // never be resurrectable from the lot either.
        self.parked.retain(|p| p.tenant.name != name);
    }

    /// Declare a fleet-wide anti-affinity pair. Holds inside whatever
    /// shard the tenants occupy, including after handoffs (every shard
    /// carries the full pair list; pairs split across shards are
    /// trivially satisfied).
    pub fn add_anti_affinity(&mut self, a: &str, b: &str) {
        self.anti_affinity.push((a.to_string(), b.to_string()));
        for s in &mut self.shards {
            s.add_anti_affinity(a, b);
        }
    }

    /// Fleet-wide anti-affinity pairs registered so far.
    pub fn anti_affinity(&self) -> &[(String, String)] {
        &self.anti_affinity
    }

    /// Per-shard summaries (the balancer's input, exposed for
    /// observability).
    pub fn summaries(&self) -> Vec<ShardSummary> {
        self.shards.iter().map(|s| s.summary()).collect()
    }

    /// Chaos-harness injection: drop the next `n` due balance rounds.
    pub fn skip_balance_rounds(&mut self, n: u64) {
        self.gate.skip_rounds(n);
    }

    /// Chaos-harness injection: run each of the next `n` due balance
    /// rounds one tick late.
    pub fn delay_balance_rounds(&mut self, n: u64) {
        self.gate.delay_rounds(n);
    }

    /// The parked-handoff lot as `(tenant, donor, receiver)` triples —
    /// chaos-invariant introspection (an unowned-but-routed tenant must
    /// appear here, and the lot must drain once faults heal).
    pub fn parked_handoffs(&self) -> Vec<(String, usize, usize)> {
        self.parked
            .iter()
            .map(|p| (p.tenant.name.clone(), p.donor, p.receiver))
            .collect()
    }

    // ----- hierarchy surface (see `crate::hierarchy`) -----

    /// Mutable shard access, for callers that drive shards through the
    /// [`crate::balancer::ShardHandle`] surface themselves — the zone
    /// roll-up does (its constant-size summary consumes each shard's
    /// staleness-bounded `summary_cached`, which is `&mut`).
    pub fn shards_mut(&mut self) -> &mut [ShardController] {
        &mut self.shards
    }

    /// Evict `name` from whichever shard holds it, returning the tenant
    /// as a checksummed handoff frame (sketched telemetry inside; see
    /// [`kairos_controller::HANDOFF_WIRE_VERSION`]). The live source is
    /// dropped: a cross-zone admit re-binds its own, exactly like an RPC
    /// admit. This is the building block of the hierarchy's group moves.
    pub fn evict_tenant(&mut self, name: &str) -> Option<Vec<u8>> {
        let shard = self.map.shard_of(name)?;
        let handoff = self.shards[shard].evict(name)?;
        self.map.remove(name);
        self.probe_cooldown.remove(name);
        self.parked.retain(|p| p.tenant.name != name);
        let (wire, _source) = handoff.into_wire();
        Some(wire)
    }

    /// Admit a handoff frame into a specific shard, binding the given
    /// destination-side source — the inverse of
    /// [`FleetController::evict_tenant`]. Rejects damaged frames and a
    /// source whose name disagrees with the frame before any state is
    /// touched.
    pub fn admit_frame(
        &mut self,
        shard: usize,
        frame: &[u8],
        source: Box<dyn TelemetrySource>,
    ) -> Result<(), StoreError> {
        let mut handoff = TenantHandoff::from_wire(frame, source)?;
        handoff.sketch = self.shards[shard].sketch_config();
        self.map.assign(&handoff.name, shard);
        self.shards[shard].admit(handoff);
        Ok(())
    }

    /// Admit an already-decoded handoff into a specific shard, updating
    /// the routing map — the decoded-side counterpart of
    /// [`FleetController::admit_frame`] (the hierarchy's group admit
    /// binds all its members' sources *before* touching any state, so it
    /// arrives here with handoffs already built).
    pub fn admit_handoff(&mut self, shard: usize, handoff: TenantHandoff) {
        self.map.assign(&handoff.name, shard);
        self.shards[shard].admit(handoff);
    }

    /// Forecast one tenant wherever it currently lives.
    pub fn forecast_tenant(&self, name: &str) -> Option<WorkloadProfile> {
        let shard = self.map.shard_of(name)?;
        self.shards[shard].forecast_workload(name)
    }

    /// Summed greedy pack estimate across every shard — the zone-level
    /// analogue of a shard's `pack_estimate_remaining`. `None` if any
    /// shard cannot estimate (unbootstrapped).
    pub fn pack_estimate_total(&self) -> Option<usize> {
        self.shards.iter().map(|s| s.pack_estimate(&[])).sum()
    }

    /// One monitoring interval: every shard ticks — concurrently when
    /// `tick_threads > 1` — then, on the balance cadence, one balance
    /// round runs **on the calling thread**. Shards share no state, so
    /// the fan-out is embarrassingly parallel; everything that mutates
    /// cross-shard structures (the `ShardMap`, handoff transfers, the
    /// handoff log, fleet stats) stays single-threaded and runs after the
    /// join, which is why reports are tick-for-tick identical at any
    /// thread count.
    pub fn tick(&mut self) -> FleetTickReport {
        let started = Instant::now();
        self.metrics.ticks.inc();
        let outcomes = self.tick_shards();

        let on_cadence = self
            .metrics
            .ticks
            .get()
            .is_multiple_of(self.cfg.balancer.balance_every.max(1));
        let all_planned = self.shards.iter().all(|s| s.planned_once());
        let handoffs = if self.gate.admit(on_cadence && all_planned) {
            self.balance_round()
        } else {
            Vec::new()
        };
        // Tick latency, classified by what the tick actually did: quiet
        // poll-and-ingest ticks and solver/handoff ticks are different
        // populations by orders of magnitude, so one conflated histogram
        // would report a meaningless p99 (the fleet_scale bench's old
        // `tick_p99_usecs` did exactly that).
        let solved = !handoffs.is_empty()
            || outcomes.iter().any(|o| {
                matches!(
                    o,
                    TickOutcome::InitialPlan { .. } | TickOutcome::Replanned(_)
                )
            });
        let usecs = started.elapsed().as_micros() as u64;
        if solved {
            self.metrics.solve_tick_usecs.record(usecs);
        } else {
            self.metrics.poll_tick_usecs.record(usecs);
        }
        self.metrics.parked_depth.set(self.parked.len() as f64);
        self.observe_health();
        FleetTickReport { outcomes, handoffs }
    }

    /// One watchdog observation, when armed: refresh the parked-age
    /// gauge, evaluate every rule over the fleet + shard registries, and
    /// trace the rules that newly fired this tick.
    fn observe_health(&mut self) {
        let Some(mut monitor) = self.health.take() else {
            return;
        };
        let parked_tenants: Vec<String> =
            self.parked.iter().map(|p| p.tenant.name.clone()).collect();
        let oldest = self.parked_ages.update(
            self.metrics.balance_rounds.get(),
            parked_tenants.iter().map(|s| s.as_str()),
        );
        self.metrics
            .registry()
            .gauge("kairos_fleet_parked_oldest_rounds")
            .set(oldest as f64);
        let tick = self.metrics.ticks.get();
        let mut registries: Vec<&MetricsRegistry> = vec![self.metrics.registry()];
        registries.extend(self.shards.iter().map(|s| s.metrics_registry()));
        for finding in monitor.observe(tick, &registries) {
            self.log.record(
                tick,
                kairos_obs::DecisionEvent::HealthFlagged {
                    rule: finding.rule.clone(),
                    metric: finding.metric.clone(),
                    severity: finding.severity.name().to_string(),
                },
            );
        }
        self.health = Some(monitor);
    }

    /// Fan the per-shard ticks out across the configured worker threads.
    /// Shards are split into contiguous chunks, one scoped thread per
    /// chunk; each tick's outcome lands in its shard's slot, so the
    /// merged vector is in shard order regardless of which thread
    /// finished first (the determinism property tests pin this down).
    fn tick_shards(&mut self) -> Vec<TickOutcome> {
        // Fan out only when at least two shards might solve this tick
        // (bootstrap, drift-check cadence, pending membership): spawning
        // scoped threads costs tens of microseconds, which dwarfs a
        // quiet poll-and-ingest tick but vanishes against a re-solve.
        // The decision depends only on shard-local deterministic state,
        // so it is identical at every thread count.
        let solvers = self.shards.iter().filter(|s| s.tick_may_solve()).count();
        let threads = if solvers < 2 {
            1
        } else {
            self.cfg.tick_threads
        };
        let mut outcomes: Vec<Option<TickOutcome>> = Vec::new();
        outcomes.resize_with(self.shards.len(), || None);
        fan_out(threads, &mut self.shards, &mut outcomes, |shard, out| {
            *out = Some(shard.tick())
        });
        outcomes
            .into_iter()
            .map(|o| o.expect("every shard ticked"))
            .collect()
    }

    /// One balance round: donors shed their heaviest tenants to the
    /// emptiest shards that can reserve capacity for them. The policy
    /// itself is [`run_balance_round`] — the single code path shared
    /// with the RPC balancer (`kairos-net`), driven here through
    /// [`ShardController`]'s direct [`crate::balancer::ShardHandle`]
    /// implementation.
    fn balance_round(&mut self) -> Vec<HandoffRecord> {
        self.metrics.balance_rounds.inc();
        let records = run_balance_round(
            &mut self.shards,
            &self.cfg.balancer,
            self.metrics.balance_rounds.get(),
            self.metrics.ticks.get(),
            &mut self.probe_cooldown,
            &mut self.parked,
            &mut self.log,
            &mut self.spans,
        );
        debug_assert!(
            self.parked.is_empty(),
            "in-process admits cannot fail, so nothing may park"
        );
        for record in &records {
            match record.outcome {
                HandoffOutcome::Completed => {
                    let to = record.to.expect("completed handoffs carry a destination");
                    self.map.assign(&record.tenant, to);
                    self.metrics.handoffs_completed.inc();
                }
                HandoffOutcome::NoReceiver => self.metrics.handoffs_rejected.inc(),
                HandoffOutcome::Failed => self.metrics.handoffs_failed.inc(),
            }
        }
        self.handoff_log.extend(records.iter().cloned());
        records
    }

    // ----- checkpoint / restore -----

    /// The whole control plane's state as one serializable snapshot:
    /// every shard's [`kairos_controller::ShardSnapshot`] plus the shard
    /// map, the balancer's cooldown memory, the handoff audit log and
    /// fleet counters. Take it between ticks — everything in the image is
    /// then mutually consistent.
    ///
    /// The handoff log is persisted as its most recent
    /// [`crate::snapshot::HANDOFF_LOG_CHECKPOINT_CAP`] records: the log
    /// is observability, not resume state (only stats and cooldowns feed
    /// decisions), so checkpoint size must track *current* fleet state,
    /// not total handoffs ever performed.
    pub fn snapshot(&self) -> FleetSnapshot {
        let log_tail = self
            .handoff_log
            .len()
            .saturating_sub(crate::snapshot::HANDOFF_LOG_CHECKPOINT_CAP);
        FleetSnapshot {
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
            map: self
                .map
                .entries()
                .map(|(t, s)| (t.to_string(), s))
                .collect(),
            anti_affinity: self.anti_affinity.clone(),
            handoff_log: self.handoff_log[log_tail..].to_vec(),
            probe_cooldown: self.probe_cooldown.clone(),
            stats: self.stats(),
            trace: {
                let events = self.log.to_vec();
                let skip = events.len().saturating_sub(TRACE_CHECKPOINT_CAP);
                events.into_iter().skip(skip).collect()
            },
        }
    }

    /// Atomically persist [`FleetController::snapshot`] at `path` as a
    /// versioned, CRC-trailed `kairos-store` frame (temp-file-then-rename:
    /// a crash mid-write leaves the previous complete checkpoint).
    pub fn checkpoint(&self, path: &Path) -> Result<(), StoreError> {
        kairos_store::save(path, FLEET_SNAPSHOT_VERSION, &self.snapshot())
    }

    /// Rebuild a fleet from a checkpoint file written by
    /// [`FleetController::checkpoint`], with default engines per shard.
    /// Partial, truncated or bit-flipped files are rejected with a
    /// [`StoreError`] — never a panic or a silent partial restore.
    ///
    /// Telemetry sources cannot be persisted; re-bind one per tenant with
    /// [`FleetController::reattach`] before ticking
    /// ([`FleetController::missing_sources`] lists the remainder).
    pub fn resume_from(cfg: FleetConfig, path: &Path) -> Result<FleetController, StoreError> {
        let snapshot: FleetSnapshot = kairos_store::load(path, FLEET_SNAPSHOT_VERSION)?;
        let engines = (0..cfg.shards)
            .map(|_| ConsolidationEngine::builder().build())
            .collect();
        FleetController::resume_with_engines(cfg, engines, snapshot)
    }

    /// [`FleetController::resume_from`] with pre-built per-shard engines
    /// and an already-loaded snapshot. Validates the cross-shard
    /// invariants — the map and the shards' telemetry must describe the
    /// same partition of tenants — before adopting any state.
    ///
    /// # Panics
    /// Panics unless `engines.len() == cfg.shards` (same contract as
    /// [`FleetController::with_engines`]).
    pub fn resume_with_engines(
        cfg: FleetConfig,
        engines: Vec<ConsolidationEngine>,
        snapshot: FleetSnapshot,
    ) -> Result<FleetController, StoreError> {
        assert_eq!(engines.len(), cfg.shards, "one engine per shard");
        if cfg.shards != snapshot.shards.len() {
            return Err(StoreError::Inconsistent(format!(
                "config has {} shards but the snapshot has {}",
                cfg.shards,
                snapshot.shards.len()
            )));
        }
        let mut map = ShardMap::new(cfg.shards);
        for (tenant, shard) in &snapshot.map {
            if *shard >= cfg.shards {
                return Err(StoreError::Inconsistent(format!(
                    "tenant {tenant} mapped to out-of-range shard {shard}"
                )));
            }
            map.assign(tenant, *shard);
        }
        // The map and the shards must partition the same tenant set.
        for (idx, shard_snap) in snapshot.shards.iter().enumerate() {
            for (name, _) in &shard_snap.telemetry {
                if map.shard_of(name) != Some(idx) {
                    return Err(StoreError::Inconsistent(format!(
                        "shard {idx} holds telemetry for {name}, which the map routes to {:?}",
                        map.shard_of(name)
                    )));
                }
            }
        }
        let held: usize = snapshot.shards.iter().map(|s| s.telemetry.len()).sum();
        if held != map.len() {
            return Err(StoreError::Inconsistent(format!(
                "map routes {} tenants but shards hold {held}",
                map.len()
            )));
        }
        let mut shards = Vec::with_capacity(cfg.shards);
        for (engine, shard_snap) in engines.into_iter().zip(snapshot.shards) {
            let shard = ShardController::restore(cfg.shard, engine, shard_snap)
                .map_err(|e| StoreError::Inconsistent(e.to_string()))?;
            shards.push(shard);
        }
        let metrics = FleetMetrics::new(MetricsRegistry::new());
        metrics.restore(&snapshot.stats);
        Ok(FleetController {
            cfg,
            shards,
            map,
            anti_affinity: snapshot.anti_affinity,
            handoff_log: snapshot.handoff_log,
            probe_cooldown: snapshot.probe_cooldown,
            parked: Vec::new(),
            gate: BalanceGate::default(),
            metrics,
            log: DecisionLog::restore(snapshot.trace, kairos_obs::events::DEFAULT_TRACE_CAP, true),
            spans: SpanLog::new(kairos_obs::span::NODE_BALANCER),
            health: None,
            parked_ages: ParkedAges::new(),
        })
    }

    /// Re-bind a live telemetry source to a restored tenant, routed to
    /// whichever shard the restored map assigns it. Unlike
    /// [`FleetController::add_workload`] this triggers no membership
    /// re-plan — the tenant never left the fleet, only the process died.
    pub fn reattach(&mut self, source: Box<dyn TelemetrySource>) -> Result<(), StoreError> {
        let name = source.name().to_string();
        let Some(shard) = self.map.shard_of(&name) else {
            return Err(StoreError::Inconsistent(format!(
                "reattach: {name} is not in the restored shard map"
            )));
        };
        self.shards[shard]
            .attach_source(source)
            .map_err(|e| StoreError::Inconsistent(e.to_string()))
    }

    /// Tenants still waiting for [`FleetController::reattach`] after a
    /// resume. Tick only once this is empty: a tenant without a source is
    /// not polled, so its rolling window would silently stall.
    pub fn missing_sources(&self) -> Vec<String> {
        self.shards
            .iter()
            .flat_map(|s| s.detached_workloads())
            .collect()
    }

    /// Global audit: build one problem over every tenant's forecast,
    /// restrict it shard-by-shard
    /// ([`kairos_solver::ConsolidationProblem::restrict`]), and evaluate
    /// each shard's current placement against its restriction. The
    /// fleet-wide "are we violation-free" check the acceptance scenarios
    /// assert on.
    pub fn audit(&self) -> FleetAudit {
        let mut profiles: Vec<WorkloadProfile> = Vec::new();
        let mut shard_indices: Vec<Vec<usize>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let fleet = shard.forecast_fleet();
            let start = profiles.len();
            shard_indices.push((start..start + fleet.len()).collect());
            profiles.extend(fleet);
        }
        let machines_used: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.placement().machines_used())
            .collect();
        if profiles.is_empty() {
            return FleetAudit {
                per_shard: vec![None; self.shards.len()],
                machines_used,
            };
        }
        // Build the global problem with shard 0's real engine (machine
        // class, headroom, disk model) rather than a fresh default — the
        // audit must judge placements by the capacities the shards
        // actually solve under. Shards are assumed homogeneous (the
        // global problem is only meaningful for one target class), and
        // every shard carries the full fleet anti-affinity list, so the
        // shard's own constraint plumbing applies the pairs by name.
        let Ok(global) = self.shards[0].problem_for(&profiles) else {
            return FleetAudit {
                per_shard: vec![None; self.shards.len()],
                machines_used,
            };
        };

        // Phase 1 (serial): build each shard's restriction and read its
        // placement into the restriction's slot order. Phase 2
        // (parallel): the evaluations themselves — the expensive part,
        // independent per shard — fan out across the tick worker
        // threads, each consuming its prepared (sub-problem, assignment)
        // pair.
        let mut jobs: Vec<Option<(ConsolidationProblem, Assignment)>> =
            Vec::with_capacity(self.shards.len());
        for (shard, keep) in self.shards.iter().zip(&shard_indices) {
            if keep.is_empty() || !shard.planned_once() {
                jobs.push(None);
                continue;
            }
            let sub = global.restrict(keep);
            let slots = sub.slots();
            let mut machine_of = Vec::with_capacity(slots.len());
            let mut complete = true;
            for slot in &slots {
                let name = &sub.workloads[slot.workload].name;
                match shard.placement().machine_of(name, slot.replica) {
                    Some(m) => machine_of.push(m),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            jobs.push(if complete {
                Some((sub, Assignment::new(machine_of)))
            } else {
                None
            });
        }

        let mut per_shard: Vec<Option<Evaluation>> = Vec::new();
        per_shard.resize_with(self.shards.len(), || None);
        fan_out(
            self.cfg.tick_threads,
            &mut jobs,
            &mut per_shard,
            |job, out| {
                if let Some((sub, assignment)) = job.take() {
                    *out = Some(evaluate(&sub, &assignment));
                }
            },
        );
        FleetAudit {
            per_shard,
            machines_used,
        }
    }

    /// Explain an audit in terms of the decision trace: for every shard
    /// the audit flags (infeasible, violated, unevaluated, or over the
    /// balancer budget), render the why-chain — the decision events from
    /// the shard's last adopted plan forward, merged with the balancer
    /// events that touched it ([`kairos_obs::render_why_chain`]). The
    /// human-readable bridge from "the audit failed" to "here is the
    /// sequence of decisions that got us here".
    pub fn explain_audit(&self, audit: &FleetAudit) -> String {
        let budget = self.cfg.balancer.machines_per_shard;
        let fleet_events = self.log.to_vec();
        let mut out = String::new();
        for (shard, eval) in audit.per_shard.iter().enumerate() {
            let verdict = match eval {
                None => "not evaluated (bootstrapping or mid-handoff)".to_string(),
                Some(e) if !e.feasible || e.violation > 0.0 => {
                    format!("infeasible (violation {:.3})", e.violation)
                }
                Some(_) if audit.machines_used[shard] > budget => format!(
                    "over budget ({} machines > {budget})",
                    audit.machines_used[shard]
                ),
                Some(_) => continue,
            };
            out.push_str(&format!("shard {shard}: {verdict}\n"));
            out.push_str(&kairos_obs::render_why_chain(
                shard,
                &self.shards[shard].trace_events(),
                &fleet_events,
            ));
        }
        if out.is_empty() {
            "audit clean: every planned shard feasible and within budget\n".to_string()
        } else {
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_controller::SyntheticSource;
    use kairos_types::Bytes;
    use kairos_workloads::RatePattern;

    fn quick_cfg(shards: usize, budget: usize) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ControllerConfig {
                horizon: 8,
                check_every: 4,
                cooldown_ticks: 8,
                ..ControllerConfig::default()
            },
            balancer: BalancerConfig {
                machines_per_shard: budget,
                balance_every: 4,
                max_moves_per_round: 4,
                ..BalancerConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    fn flat(name: String, tps: f64) -> SyntheticSource {
        SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps }).with_noise(0.0)
    }

    fn run(fleet: &mut FleetController, ticks: u64) {
        for _ in 0..ticks {
            fleet.tick();
        }
    }

    #[test]
    fn shards_bootstrap_independently_and_audit_clean() {
        let mut fleet = FleetController::new(quick_cfg(2, 8));
        for i in 0..6 {
            fleet.add_workload(Box::new(flat(format!("t{i:02}"), 200.0)));
        }
        assert_eq!(fleet.map().counts(), vec![3, 3]);
        run(&mut fleet, 20);
        let audit = fleet.audit();
        assert!(audit.complete(), "both shards must have planned");
        assert!(audit.zero_violations());
        assert!(audit.within_budget(8));
        assert!(fleet.handoffs().is_empty(), "balanced fleet: no handoffs");
    }

    #[test]
    fn overloaded_shard_sheds_to_peer() {
        // Shard 0 gets 10 heavy tenants (4 cores each → ~4 machines),
        // shard 1 gets 2 light ones. Budget 3: shard 0 must shed.
        let mut fleet = FleetController::new(quick_cfg(2, 3));
        for i in 0..10 {
            fleet.add_workload_to(0, Box::new(flat(format!("heavy-{i:02}"), 400.0)));
        }
        for i in 0..2 {
            fleet.add_workload_to(1, Box::new(flat(format!("light-{i}"), 100.0)));
        }
        run(&mut fleet, 40);
        let stats = fleet.stats();
        assert!(
            stats.handoffs_completed >= 1,
            "balancer must move tenants: {stats:?}"
        );
        let audit = fleet.audit();
        assert!(audit.complete());
        assert!(audit.zero_violations());
        assert!(
            audit.within_budget(3),
            "both shards within budget, got {:?}",
            audit.machines_used
        );
        // The shard map agrees with who actually runs each tenant.
        for (i, shard) in fleet.shards().iter().enumerate() {
            for name in shard.workloads() {
                assert_eq!(fleet.map().shard_of(&name), Some(i));
            }
        }
    }

    #[test]
    fn single_shard_fleet_never_proposes_handoffs() {
        // Regression: a 1-shard fleet has no possible receiver, so the
        // balancer must not probe donors at all — previously an
        // over-budget single shard recorded a rejected handoff per
        // candidate per round, polluting the stats.
        let mut fleet = FleetController::new(quick_cfg(1, 2));
        for i in 0..10 {
            // ~4 cores each → way over a 2-machine budget.
            fleet.add_workload_to(0, Box::new(flat(format!("t{i:02}"), 400.0)));
        }
        run(&mut fleet, 60);
        let stats = fleet.stats();
        assert!(stats.balance_rounds > 0, "balance cadence must have run");
        assert_eq!(
            stats.handoffs_rejected, 0,
            "no receiver exists, so nothing may be counted as rejected"
        );
        assert_eq!(stats.handoffs_completed, 0);
        assert!(fleet.handoffs().is_empty());
    }

    #[test]
    fn cooldown_hysteresis_reduces_repeated_rejections() {
        // Both shards saturated over budget: every probe is rejected
        // (nobody can admit). Without the cooldown the same heavy
        // tenants are re-proposed every round; with it they sit out.
        let saturated = |cooldown_rounds: u64| {
            let mut cfg = quick_cfg(2, 1);
            cfg.balancer.cooldown_rounds = cooldown_rounds;
            let mut fleet = FleetController::new(cfg);
            for shard in 0..2 {
                for i in 0..6 {
                    fleet
                        .add_workload_to(shard, Box::new(flat(format!("s{shard}-t{i:02}"), 400.0)));
                }
            }
            run(&mut fleet, 80);
            fleet.stats()
        };
        let without = saturated(0);
        let with = saturated(3);
        assert!(
            without.handoffs_rejected > 0,
            "saturated fleet must be proposing (and failing) handoffs: {without:?}"
        );
        assert!(
            with.handoffs_rejected < without.handoffs_rejected,
            "cooldown must cut repeated rejections: {} (cooldown) vs {} (none)",
            with.handoffs_rejected,
            without.handoffs_rejected
        );
    }

    #[test]
    fn low_watermark_sheds_below_budget() {
        // Donor over a budget of 3; with a low watermark of 2 it keeps
        // shedding — within the round that triggered it — until its
        // greedy estimate fits 2 machines, not 3. (8 heavies ≈ 4
        // machines; shedding 4 of them fits the round's move budget.)
        let mut cfg = quick_cfg(2, 3);
        cfg.balancer.low_watermark = 2;
        cfg.balancer.cooldown_rounds = 0;
        let mut fleet = FleetController::new(cfg);
        for i in 0..8 {
            fleet.add_workload_to(0, Box::new(flat(format!("heavy-{i:02}"), 400.0)));
        }
        for i in 0..2 {
            fleet.add_workload_to(1, Box::new(flat(format!("light-{i}"), 100.0)));
        }
        run(&mut fleet, 60);
        assert!(fleet.stats().handoffs_completed >= 1);
        let donor_est = fleet.shards()[0].pack_estimate(&[]).expect("packable");
        assert!(
            donor_est <= 2,
            "donor must shed to the low watermark, estimate {donor_est}"
        );
    }

    #[test]
    fn remove_workload_routes_to_owning_shard() {
        let mut fleet = FleetController::new(quick_cfg(2, 8));
        for i in 0..4 {
            fleet.add_workload(Box::new(flat(format!("t{i}"), 150.0)));
        }
        run(&mut fleet, 12);
        let shard = fleet.map().shard_of("t1").unwrap();
        fleet.remove_workload("t1");
        assert_eq!(fleet.map().shard_of("t1"), None);
        assert!(!fleet.shards()[shard].has_workload("t1"));
    }
}
