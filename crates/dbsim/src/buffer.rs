//! Page-granular clock (second-chance) cache.
//!
//! Used twice in the simulator: as the DBMS buffer pool (with dirty-page
//! tracking for the flusher) and, in the PostgreSQL-style configuration, as
//! the OS file cache tier (clean pages only).
//!
//! The clock algorithm approximates LRU the way InnoDB/Postgres do, and its
//! eviction dynamics are what the paper's *buffer-pool gauging* (§3.1)
//! exploits: the probe table's pages compete with the user working set, and
//! the moment the combined footprint exceeds capacity, user pages start
//! getting evicted and re-read — visible as physical reads.

use crate::pages::PageId;
use std::collections::{BTreeSet, HashMap};

/// Result of touching a page in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// Page was resident.
    Hit,
    /// Page was inserted; if a victim was evicted it is reported along with
    /// whether it was dirty (a dirty eviction forces a foreground write).
    Miss { evicted: Option<(PageId, bool)> },
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    page: PageId,
    refbit: bool,
    dirty: bool,
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses so far (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Fixed-capacity clock cache with optional dirty tracking.
#[derive(Debug)]
pub struct ClockCache {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, u32>,
    hand: usize,
    /// Dirty pages in sorted order — the flusher's elevator queue.
    dirty: BTreeSet<PageId>,
    stats: CacheStats,
}

impl ClockCache {
    /// Create a cache holding `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ClockCache {
        assert!(capacity > 0, "cache capacity must be positive");
        // Pre-allocate only a modest prefix: consolidated pools are
        // sized in the hundreds of thousands of frames, but most hosts
        // in a simulated fleet never come close to filling them, and
        // eagerly mapping tens of MB per instance dominates fleet-scale
        // runs. The containers grow on demand past this.
        ClockCache {
            capacity,
            frames: Vec::with_capacity(capacity.min(1 << 14)),
            map: HashMap::with_capacity(capacity.min(1 << 14)),
            hand: 0,
            dirty: BTreeSet::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Fraction of capacity occupied by dirty pages.
    pub fn dirty_fraction(&self) -> f64 {
        self.dirty.len() as f64 / self.capacity as f64
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    pub fn is_dirty(&self, page: PageId) -> bool {
        self.dirty.contains(&page)
    }

    /// Access `page`, inserting it if absent; `make_dirty` marks it dirty
    /// (an update). Returns whether this was a hit and any eviction.
    pub fn touch(&mut self, page: PageId, make_dirty: bool) -> Touch {
        if let Some(&idx) = self.map.get(&page) {
            let f = &mut self.frames[idx as usize];
            f.refbit = true;
            if make_dirty && !f.dirty {
                f.dirty = true;
                self.dirty.insert(page);
            }
            self.stats.hits += 1;
            return Touch::Hit;
        }
        self.stats.misses += 1;
        let evicted = self.insert_new(page, make_dirty);
        Touch::Miss { evicted }
    }

    /// Insert a page known to be absent. Returns the eviction victim, if
    /// any, with its dirty flag.
    fn insert_new(&mut self, page: PageId, dirty: bool) -> Option<(PageId, bool)> {
        debug_assert!(!self.map.contains_key(&page));
        if self.frames.len() < self.capacity {
            let idx = self.frames.len() as u32;
            // Fresh pages enter cold (refbit clear), InnoDB-midpoint style:
            // a page must be re-referenced to survive a sweep, which keeps
            // one-shot scans from polluting the pool.
            self.frames.push(Frame {
                page,
                refbit: false,
                dirty,
            });
            self.map.insert(page, idx);
            if dirty {
                self.dirty.insert(page);
            }
            return None;
        }
        // Clock sweep: clear ref bits until a victim with refbit == false.
        let victim_idx = loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[i];
            if f.refbit {
                f.refbit = false;
            } else {
                break i;
            }
        };
        let victim = self.frames[victim_idx];
        self.map.remove(&victim.page);
        if victim.dirty {
            self.dirty.remove(&victim.page);
            self.stats.dirty_evictions += 1;
        }
        self.stats.evictions += 1;
        self.frames[victim_idx] = Frame {
            page,
            refbit: false,
            dirty,
        };
        self.map.insert(page, victim_idx as u32);
        if dirty {
            self.dirty.insert(page);
        }
        Some((victim.page, victim.dirty))
    }

    /// Insert a freshly-allocated page (no read required, so no miss is
    /// counted). If the page is somehow already resident it is simply
    /// (re)marked. Returns the eviction victim, if any.
    pub fn insert(&mut self, page: PageId, dirty: bool) -> Option<(PageId, bool)> {
        if let Some(&idx) = self.map.get(&page) {
            let f = &mut self.frames[idx as usize];
            f.refbit = true;
            if dirty && !f.dirty {
                f.dirty = true;
                self.dirty.insert(page);
            }
            return None;
        }
        self.insert_new(page, dirty)
    }

    /// Mark a page clean (after write-back). No-op if absent or clean.
    pub fn mark_clean(&mut self, page: PageId) {
        if self.dirty.remove(&page) {
            if let Some(&idx) = self.map.get(&page) {
                self.frames[idx as usize].dirty = false;
            }
        }
    }

    /// Take up to `n` dirty pages in sorted (page-id) order — the elevator
    /// batch for write-back. The pages are marked clean immediately; the
    /// caller charges the disk for them.
    pub fn take_dirty_batch(&mut self, n: usize) -> Vec<PageId> {
        let batch: Vec<PageId> = self.dirty.iter().take(n).copied().collect();
        for &p in &batch {
            self.mark_clean(p);
        }
        batch
    }

    /// Count of dirty pages whose id falls in `[start, end)` — used to
    /// estimate per-table clean fractions for coalescing math.
    pub fn dirty_in_range(&self, start: PageId, end: PageId) -> usize {
        self.dirty.range(start..end).count()
    }

    /// Drop a page from the cache entirely (table drop). Returns whether it
    /// was resident.
    pub fn discard(&mut self, page: PageId) -> bool {
        if let Some(idx) = self.map.remove(&page) {
            self.dirty.remove(&page);
            let last = self.frames.len() - 1;
            self.frames.swap(idx as usize, last);
            let moved = self.frames[idx as usize].page;
            if idx as usize != last {
                self.map.insert(moved, idx);
            }
            self.frames.pop();
            if self.hand >= self.frames.len() && !self.frames.is_empty() {
                self.hand = 0;
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId(i)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = ClockCache::new(4);
        assert!(matches!(c.touch(p(1), false), Touch::Miss { .. }));
        assert_eq!(c.touch(p(1), false), Touch::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = ClockCache::new(3);
        for i in 0..100 {
            c.touch(p(i), i % 2 == 0);
            assert!(c.resident() <= 3);
            assert!(c.dirty_count() <= c.resident());
        }
    }

    #[test]
    fn eviction_reports_victim() {
        let mut c = ClockCache::new(2);
        c.touch(p(1), false);
        c.touch(p(2), false);
        let t = c.touch(p(3), false);
        match t {
            Touch::Miss {
                evicted: Some((victim, dirty)),
            } => {
                assert!(victim == p(1) || victim == p(2));
                assert!(!dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn clock_gives_second_chance_to_hot_page() {
        let mut c = ClockCache::new(2);
        c.touch(p(1), false);
        c.touch(p(2), false);
        // Re-touch page 1 so its refbit is set; inserting page 3 must evict 2.
        c.touch(p(1), false);
        c.touch(p(3), false);
        assert!(c.contains(p(1)), "hot page should survive");
        assert!(!c.contains(p(2)));
    }

    #[test]
    fn dirty_tracking_and_batch_is_sorted() {
        let mut c = ClockCache::new(10);
        for i in [5u64, 1, 9, 3] {
            c.touch(p(i), true);
        }
        assert_eq!(c.dirty_count(), 4);
        let batch = c.take_dirty_batch(3);
        assert_eq!(batch, vec![p(1), p(3), p(5)]);
        assert_eq!(c.dirty_count(), 1);
        assert!(c.is_dirty(p(9)));
        // Flushed pages stay resident, just clean.
        assert!(c.contains(p(1)));
    }

    #[test]
    fn dirty_eviction_counted() {
        let mut c = ClockCache::new(1);
        c.touch(p(1), true);
        let t = c.touch(p(2), false);
        assert!(matches!(t, Touch::Miss { evicted: Some((page, true)) } if page == p(1)));
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn mark_clean_idempotent() {
        let mut c = ClockCache::new(2);
        c.touch(p(1), true);
        c.mark_clean(p(1));
        c.mark_clean(p(1));
        assert_eq!(c.dirty_count(), 0);
        assert!(c.contains(p(1)));
    }

    #[test]
    fn dirty_in_range_counts_only_range() {
        let mut c = ClockCache::new(10);
        for i in 0..6 {
            c.touch(p(i), true);
        }
        assert_eq!(c.dirty_in_range(p(2), p(5)), 3);
        assert_eq!(c.dirty_in_range(p(8), p(20)), 0);
    }

    #[test]
    fn insert_counts_no_miss_but_can_evict() {
        let mut c = ClockCache::new(1);
        c.insert(p(1), true);
        assert_eq!(c.stats().misses, 0);
        assert!(c.is_dirty(p(1)));
        let evicted = c.insert(p(2), false);
        assert!(matches!(evicted, Some((page, true)) if page == p(1)));
        assert_eq!(c.stats().misses, 0);
        // Re-inserting a resident page only updates flags.
        assert!(c.insert(p(2), true).is_none());
        assert!(c.is_dirty(p(2)));
    }

    #[test]
    fn discard_removes_page() {
        let mut c = ClockCache::new(4);
        c.touch(p(1), true);
        c.touch(p(2), false);
        assert!(c.discard(p(1)));
        assert!(!c.contains(p(1)));
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(c.resident(), 1);
        assert!(!c.discard(p(1)));
        // Map stays consistent after swap_remove relocation.
        assert!(c.contains(p(2)));
        assert_eq!(c.touch(p(2), false), Touch::Hit);
    }

    #[test]
    fn working_set_within_capacity_has_no_steady_state_misses() {
        let mut c = ClockCache::new(100);
        // Warm up a 50-page working set, then access it repeatedly.
        for round in 0..20 {
            for i in 0..50 {
                let t = c.touch(p(i), false);
                if round > 0 {
                    assert_eq!(t, Touch::Hit, "round {round}, page {i}");
                }
            }
        }
    }

    #[test]
    fn oversized_working_set_keeps_missing() {
        let mut c = ClockCache::new(10);
        for _ in 0..5 {
            for i in 0..20 {
                c.touch(p(i), false);
            }
        }
        // Sequential sweep over 2x capacity thrashes a clock cache.
        assert!(c.stats().misses > 50);
    }
}
