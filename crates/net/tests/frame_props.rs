//! Property tests for the RPC frame codec, mirroring
//! `crates/store/tests/frame_props.rs`: every single-bit flip and every
//! truncation point of a frame is rejected with a clean error (never a
//! panic, never a misdecode), real RPC messages round-trip bit-exactly,
//! and — the handshake-level guarantee — a shard node **never admits a
//! tenant from a damaged handoff frame**, whether the damage hits the
//! transport envelope or the nested handoff bytes, mid-handshake
//! included.
//!
//! Seeded on the workspace SplitMix64 harness; CI sweeps
//! `KAIROS_TEST_SEED`.

use kairos_controller::{ControllerConfig, SyntheticSource, TickOutcome};
use kairos_net::{
    frame, BalancerNode, LeaseConfig, LoopbackTransport, NetError, Request, Response, ShardNode,
    SourceEscrow, Transport,
};
use kairos_types::{Bytes, SplitMix64, WorkloadProfile};
use kairos_workloads::RatePattern;
use std::sync::Arc;

fn sample_request(rng: &mut SplitMix64) -> Request {
    match rng.next_range(6) {
        0 => Request::Ping,
        1 => Request::Tick,
        2 => Request::PackEstimate {
            exclude: (0..rng.next_range(4)).map(|i| format!("t{i}")).collect(),
        },
        3 => Request::CanAdmit {
            profile: WorkloadProfile::flat(
                "w",
                300.0,
                6,
                rng.next_in(0.5, 8.0),
                Bytes::gib(4),
                kairos_types::DiskDemand::new(Bytes::gib(1), kairos_types::Rate(100.0)),
            ),
            budget: rng.next_range(8) as usize,
        },
        4 => Request::Admit {
            frame: (0..rng.next_range(64)).map(|v| v as u8).collect(),
        },
        _ => Request::Checkpoint {
            path: format!("/tmp/ckpt-{}.ksnp", rng.next_range(1000)),
        },
    }
}

#[test]
fn every_bit_flip_of_an_rpc_frame_is_rejected() {
    let mut rng = SplitMix64::from_env(0xF1A6_0001);
    let request = sample_request(&mut rng);
    let encoded = frame::encode_frame(&request);
    for byte in 0..encoded.len() {
        for bit in 0..8 {
            let mut bad = encoded.clone();
            bad[byte] ^= 1 << bit;
            let r = frame::decode_frame::<Request>(&bad);
            assert!(r.is_err(), "bit flip at {byte}:{bit} must fail");
        }
    }
}

#[test]
fn every_truncation_of_an_rpc_frame_is_rejected() {
    let mut rng = SplitMix64::from_env(0xF1A6_0002);
    let request = sample_request(&mut rng);
    let encoded = frame::encode_frame(&request);
    for cut in 0..encoded.len() {
        let r = frame::decode_frame::<Request>(&encoded[..cut]);
        assert!(r.is_err(), "truncation at {cut} must fail");
    }
    // Trailing garbage equally so.
    let mut padded = encoded.clone();
    padded.push(0);
    assert!(frame::decode_frame::<Request>(&padded).is_err());
}

#[test]
fn random_messages_roundtrip_and_random_corruption_rejected() {
    let mut rng = SplitMix64::from_env(0xF1A6_0003);
    for round in 0..200 {
        let request = sample_request(&mut rng);
        let encoded = frame::encode_frame(&request);
        let back: Request = frame::decode_frame(&encoded).expect("clean frame decodes");
        assert_eq!(format!("{request:?}"), format!("{back:?}"));

        let mutated = match rng.next_range(3) {
            0 => {
                let cut = rng.next_range(encoded.len() as u64) as usize;
                encoded[..cut].to_vec()
            }
            1 => {
                let mut bad = encoded.clone();
                let byte = rng.next_range(bad.len() as u64) as usize;
                bad[byte] ^= 1 << rng.next_range(8);
                bad
            }
            _ => {
                let mut bad = encoded.clone();
                let byte = rng.next_range(bad.len() as u64) as usize;
                bad[byte] = if bad[byte] == 0 { 0xFF } else { 0 };
                bad
            }
        };
        assert!(
            frame::decode_frame::<Request>(&mutated).is_err(),
            "round {round}: corrupted frame must be rejected"
        );
    }
}

// ----- the handshake-level guarantee ---------------------------------

fn flat(name: &str, tps: f64) -> SyntheticSource {
    SyntheticSource::new(
        name.to_string(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps },
    )
    .with_noise(0.0)
}

fn quick_cfg() -> ControllerConfig {
    ControllerConfig {
        horizon: 8,
        check_every: 4,
        cooldown_ticks: 8,
        ..ControllerConfig::default()
    }
}

/// Stand up two planned shard nodes over loopback, hand tenants to the
/// donor, and return everything a handshake test needs.
struct Harness {
    transport: LoopbackTransport,
    _handles: Vec<kairos_net::ServerHandle>,
    nodes: Vec<ShardNode>,
    escrow: SourceEscrow,
}

fn harness(tenants: usize) -> Harness {
    let transport = LoopbackTransport::new();
    let escrow = SourceEscrow::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    for shard in 0..2 {
        let node = ShardNode::new(
            quick_cfg(),
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        handles.push(
            node.serve(&transport, &format!("shard-{shard}"))
                .expect("serves"),
        );
        nodes.push(node);
    }
    for i in 0..tenants {
        let name = format!("t{i:02}");
        escrow.park(Box::new(flat(&name, 300.0)));
        nodes[0].with_shard(|s| {
            s.add_workload(Box::new(flat(&name, 300.0)));
        });
        // The escrow copy stands in as the destination-side source.
    }
    // Plan the donor.
    nodes[0].with_shard(|s| {
        for _ in 0..20 {
            if let TickOutcome::InitialPlan { .. } = s.tick() {
                return;
            }
        }
        panic!("donor never planned");
    });
    Harness {
        transport,
        _handles: handles,
        nodes,
        escrow,
    }
}

fn rpc(transport: &LoopbackTransport, endpoint: &str, request: &Request) -> Response {
    let mut conn = transport.connect(endpoint).expect("connects");
    match kairos_net::rpc::call(conn.as_mut(), request) {
        Ok(response) => response,
        Err(NetError::Remote(msg)) => Response::Error(msg),
        Err(e) => panic!("transport-level failure: {e}"),
    }
}

/// Mid-handshake corruption: the eviction succeeded, the admit frame is
/// damaged in flight. The receiver must reject it with zero state
/// change — a shard never admits a tenant from a damaged frame — and
/// the donor-side rollback (re-admitting from the intact copy) must
/// restore single ownership.
#[test]
fn damaged_admit_frame_is_never_admitted_and_rolls_back() {
    let mut rng = SplitMix64::from_env(0xF1A6_0004);
    let h = harness(4);

    let Response::Evicted(Some(wire)) = rpc(
        &h.transport,
        "shard-0",
        &Request::Evict {
            tenant: "t00".into(),
        },
    ) else {
        panic!("eviction must yield a wire frame");
    };
    h.nodes[0].with_shard(|s| assert!(!s.has_workload("t00"), "evicted off the donor"));

    // A seeded batch of corruptions of the *nested handoff frame* —
    // every one must be rejected by the receiver's validation.
    for round in 0..200 {
        let mut bad = wire.clone();
        let byte = rng.next_range(bad.len() as u64) as usize;
        match rng.next_range(2) {
            0 => bad[byte] ^= 1 << rng.next_range(8),
            _ => bad.truncate(byte),
        }
        if bad == wire {
            continue;
        }
        let response = rpc(&h.transport, "shard-1", &Request::Admit { frame: bad });
        assert!(
            matches!(response, Response::Error(_)),
            "round {round}: damaged admit frame must be rejected"
        );
        h.nodes[1].with_shard(|s| {
            assert!(
                !s.has_workload("t00"),
                "round {round}: tenant admitted from a damaged frame"
            );
        });
    }
    // The receiver never bound the escrowed source either — rejection
    // happens before binding.
    assert!(h.escrow.parked().contains(&"t00".to_string()));

    // Rollback: the intact frame re-admits on the donor.
    let response = rpc(&h.transport, "shard-0", &Request::Admit { frame: wire });
    assert!(matches!(response, Response::Done), "rollback re-admits");
    h.nodes[0].with_shard(|s| assert!(s.has_workload("t00")));
    h.nodes[1].with_shard(|s| assert!(!s.has_workload("t00")));
}

/// The same guarantee end-to-end: corruption injected by the transport
/// itself mid-balance-round. The round records a Failed handoff, the
/// donor keeps the tenant, the receiver never sees it.
#[test]
fn transport_corruption_mid_round_records_failed_handoff_and_keeps_ownership() {
    let transport = Arc::new(LoopbackTransport::new());
    let escrow = SourceEscrow::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    for shard in 0..2 {
        let node = ShardNode::new(
            quick_cfg(),
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        handles.push(
            node.serve(transport.as_ref(), &format!("shard-{shard}"))
                .expect("serves"),
        );
        nodes.push(node);
    }
    let cfg = kairos_fleet::FleetConfig {
        shards: 2,
        shard: quick_cfg(),
        balancer: kairos_fleet::BalancerConfig {
            machines_per_shard: 2,
            balance_every: 4,
            max_moves_per_round: 2,
            cooldown_rounds: 0,
            ..Default::default()
        },
        tick_threads: 1,
    };
    let endpoints = vec!["shard-0".to_string(), "shard-1".to_string()];
    let mut balancer =
        BalancerNode::connect(cfg, LeaseConfig::default(), transport.clone(), &endpoints)
            .expect("balancer connects");
    // Shard 0 heavy (must shed), shard 1 light (can admit).
    for i in 0..8 {
        let name = format!("heavy-{i:02}");
        escrow.park(Box::new(flat(&name, 400.0)));
        balancer.add_workload_to(0, &name, 1).expect("registers");
    }
    for i in 0..2 {
        let name = format!("light-{i}");
        escrow.park(Box::new(flat(&name, 100.0)));
        balancer.add_workload_to(1, &name, 1).expect("registers");
    }

    // Arm the targeted fault before anything moves: the next Admit
    // frame reaching shard-1 is damaged in flight. Reservations, ticks
    // and summaries all flow clean — only the handshake's transfer
    // phase breaks, which is exactly the window the rollback protects.
    let admit_tag = kairos_net::rpc::wire_tag(&Request::Admit { frame: Vec::new() });
    transport.corrupt_next_calls_matching("shard-1", admit_tag, 1);

    let mut saw_failed = false;
    for _ in 0..80 {
        let report = balancer.tick();
        for handoff in &report.handoffs {
            if handoff.outcome == kairos_fleet::HandoffOutcome::Failed {
                saw_failed = true;
                assert_eq!(handoff.from, 0);
                assert_eq!(handoff.to, Some(1));
            }
        }
        if saw_failed && balancer.stats().handoffs_completed > 0 {
            break;
        }
    }
    let stats = balancer.stats();
    assert!(
        saw_failed,
        "the corrupted Admit must record a Failed handoff: {stats:?}"
    );
    assert_eq!(stats.handoffs_failed, 1, "exactly one damaged handshake");
    assert!(
        stats.handoffs_completed > 0,
        "later rounds (clean frames) must complete handoffs: {stats:?}"
    );
    // Ownership invariant: every mapped tenant lives on exactly the
    // shard the map says, nobody vanished or got duplicated.
    let owned: Vec<Vec<String>> = balancer
        .shard_workloads()
        .into_iter()
        .map(|w| w.expect("alive"))
        .collect();
    let total: usize = owned.iter().map(|w| w.len()).sum();
    assert_eq!(total, 10, "no tenant stranded or duplicated");
    for (shard, names) in owned.iter().enumerate() {
        for name in names {
            assert_eq!(balancer.map().shard_of(name), Some(shard));
        }
    }
}
