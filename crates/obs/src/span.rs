//! Causal span tracing: the deterministic skeleton of a cross-node
//! request tree.
//!
//! A **span** is one named unit of control-plane work — a balance
//! round, one handoff inside it, the evict that handoff triggered on a
//! shard three processes away. Spans carry a [`SpanContext`] (trace id,
//! own span id, origin node, tick) across RPC boundaries in the frame
//! header's optional span section (`kairos-net`), so the nested calls
//! of one root decision — root round → zone evict → member shard
//! evict/admit — reconstruct as a *single tree* no matter how many
//! processes they crossed.
//!
//! The split that keeps chaos reruns byte-identical with tracing on:
//!
//! * span **structure** — ids, parentage, names, tick stamps, tags —
//!   is fully deterministic (ids are `node << 32 | serial`, never
//!   random, never wall-clock) and joins the trace byte-identity
//!   contract next to [`crate::events::DecisionLog`];
//! * span **durations** are wall-clock and therefore live in the
//!   metrics registry (`kairos_span_usecs{span="..."}` histograms on
//!   [`crate::global`]), outside every fingerprint.
//!
//! Propagation is thread-local: [`install`] puts a context on the
//! current thread (a server handler installs the one the frame
//! carried), [`current`] reads it back (the RPC client attaches it to
//! outgoing frames), and the guard restores the previous context on
//! drop so nesting works. Spans are recorded **only in shared code
//! paths** (the balance policy, the shard controller) — never in the
//! transport — which is what makes an in-process fleet's span tree
//! record-identical to the same fleet over RPC.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::VecDeque;

/// Parent id of a root span (span ids start at serial 1, so 0 is free).
pub const NO_PARENT: u64 = 0;

/// Default span ring capacity, matching the decision log's.
pub const DEFAULT_SPAN_CAP: usize = 65_536;

/// Node id of a (fleet-level or zone-internal) balancer span log.
pub const NODE_BALANCER: u32 = 0xFFFF_FFFF;

/// Node id of the root (balancer-of-balancers) span log.
pub const NODE_ROOT: u32 = 0xFFFF_FFFE;

/// Node id of a top-level shard.
pub fn node_for_shard(shard: usize) -> u32 {
    shard as u32
}

/// Node id of a zone's own (zone-level) span log.
pub fn node_for_zone(zone: usize) -> u32 {
    0xFFFE_0000 | (zone as u32 & 0xFFFF)
}

/// Node id of shard `shard` inside zone `zone` (distinct from both
/// top-level shards and other zones' shards).
pub fn node_for_zone_shard(zone: usize, shard: usize) -> u32 {
    ((zone as u32 + 1) << 16) | (shard as u32 & 0xFFFF)
}

/// Node id of the balancer *inside* zone `zone` — distinct per zone so
/// two zones' internal balance-round spans can never collide in
/// span-id (and therefore trace-id) space.
pub fn node_for_zone_balancer(zone: usize) -> u32 {
    0xFFFD_0000 | (zone as u32 & 0xFFFF)
}

/// Human-readable node name for span rendering.
pub fn render_node(node: u32) -> String {
    match node {
        NODE_BALANCER => "balancer".to_string(),
        NODE_ROOT => "root".to_string(),
        n if n & 0xFFFF_0000 == 0xFFFE_0000 => format!("zone{}", n & 0xFFFF),
        n if n & 0xFFFF_0000 == 0xFFFD_0000 => format!("z{}-balancer", n & 0xFFFF),
        n if n >> 16 != 0 => format!("z{}-shard{}", (n >> 16) - 1, n & 0xFFFF),
        n => format!("shard{n}"),
    }
}

/// The propagated identity of an open span: what crosses an RPC
/// boundary (28 bytes on the wire — see the `kairos-net` frame layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanContext {
    /// The root span's id — shared by every span in the tree.
    pub trace_id: u64,
    /// This span's id: `origin << 32 | serial`.
    pub span_id: u64,
    /// The node that opened this span.
    pub origin: u32,
    /// The opener's tick at open time.
    pub tick: u64,
}

/// One recorded span: a [`SpanContext`] plus parentage, name and tags.
/// Everything here is deterministic under a fixed seed and schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u64,
    /// Parent span id, or [`NO_PARENT`] for a root.
    pub parent: u64,
    /// The node that recorded this span (see [`render_node`]).
    pub node: u32,
    pub name: String,
    pub tick: u64,
    /// Small, fixed-at-open key/value pairs (tenant, donor, receiver…).
    pub tags: Vec<(String, String)>,
}

/// A bounded ring of [`SpanRecord`]s, one per node-level component
/// (shard controller, fleet balancer, zone, root balancer).
///
/// **Disabled by default**: with no span open there is no thread-local
/// context, the RPC layer attaches no span section, and every frame is
/// byte-identical to the pre-span wire format. Enabling is a pure
/// opt-in ([`SpanLog::set_enabled`]).
#[derive(Clone, Debug)]
pub struct SpanLog {
    spans: VecDeque<SpanRecord>,
    cap: usize,
    node: u32,
    serial: u64,
    enabled: bool,
}

impl SpanLog {
    /// A disabled log for node id `node` with the default capacity.
    pub fn new(node: u32) -> SpanLog {
        SpanLog {
            spans: VecDeque::new(),
            cap: DEFAULT_SPAN_CAP,
            node,
            serial: 0,
            enabled: false,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Toggle recording; already-recorded spans are kept either way.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    pub fn node(&self) -> u32 {
        self.node
    }

    /// Re-home the log (e.g. a fleet embedded in a zone renumbers its
    /// shards). Only affects spans opened afterwards.
    pub fn set_node(&mut self, node: u32) {
        self.node = node;
    }

    fn next_id(&mut self) -> u64 {
        self.serial += 1;
        (u64::from(self.node) << 32) | (self.serial & 0xFFFF_FFFF)
    }

    fn push(&mut self, record: SpanRecord) {
        if self.spans.len() == self.cap {
            self.spans.pop_front();
        }
        self.spans.push_back(record);
    }

    fn open(
        &mut self,
        trace_id: Option<u64>,
        parent: u64,
        name: &str,
        tick: u64,
        tags: &[(&str, &str)],
    ) -> Option<SpanContext> {
        if !self.enabled {
            return None;
        }
        let span_id = self.next_id();
        let trace_id = trace_id.unwrap_or(span_id);
        self.push(SpanRecord {
            trace_id,
            span_id,
            parent,
            node: self.node,
            name: name.to_string(),
            tick,
            tags: tags
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
        Some(SpanContext {
            trace_id,
            span_id,
            origin: self.node,
            tick,
        })
    }

    /// Open a root span: a fresh trace whose id is the span's own id.
    /// Returns `None` (and records nothing) while disabled.
    pub fn open_root(
        &mut self,
        name: &str,
        tick: u64,
        tags: &[(&str, &str)],
    ) -> Option<SpanContext> {
        self.open(None, NO_PARENT, name, tick, tags)
    }

    /// Open a child of `parent` (typically [`current`] — the context a
    /// caller installed on this thread or an RPC frame carried in).
    pub fn open_child(
        &mut self,
        parent: SpanContext,
        name: &str,
        tick: u64,
        tags: &[(&str, &str)],
    ) -> Option<SpanContext> {
        self.open(Some(parent.trace_id), parent.span_id, name, tick, tags)
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Recorded spans, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    pub fn to_vec(&self) -> Vec<SpanRecord> {
        self.spans.iter().cloned().collect()
    }

    /// The canonical span encoding: the record vector through the
    /// workspace codec — the byte-identity unit chaos reruns compare.
    pub fn span_bytes(&self) -> Vec<u8> {
        serde::to_bytes(&self.to_vec())
    }
}

thread_local! {
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

/// The span context active on this thread, if any. The RPC client
/// attaches this to every outgoing request frame.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.get())
}

/// Scope guard for an installed span context: restores the previously
/// active context (and, for timed entries, records the span's
/// wall-clock duration into `kairos_span_usecs{span="..."}` on the
/// global registry) when dropped.
pub struct ContextGuard {
    prev: Option<SpanContext>,
    installed: bool,
    timer: Option<(String, std::time::Instant)>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.installed {
            CURRENT.with(|c| c.set(self.prev));
        }
        if let Some((name, started)) = self.timer.take() {
            crate::metrics::global()
                .histogram(&format!("kairos_span_usecs{{span=\"{name}\"}}"))
                .record(started.elapsed().as_micros() as u64);
        }
    }
}

/// Install `ctx` as the current thread's span context (server side: the
/// context an incoming frame carried). `None` is a no-op guard — the
/// existing context, if any, stays active, so a disabled layer in the
/// middle of a call chain passes its parent's context through.
pub fn install(ctx: Option<SpanContext>) -> ContextGuard {
    match ctx {
        Some(ctx) => {
            let prev = CURRENT.with(|c| c.replace(Some(ctx)));
            ContextGuard {
                prev,
                installed: true,
                timer: None,
            }
        }
        None => ContextGuard {
            prev: None,
            installed: false,
            timer: None,
        },
    }
}

/// [`install`] plus a duration timer: while the guard lives, `ctx` is
/// current; at drop the elapsed wall time lands in the
/// `kairos_span_usecs{span="name"}` histogram (metrics territory —
/// never in the deterministic record).
pub fn enter(ctx: Option<SpanContext>, name: &str) -> ContextGuard {
    let mut guard = install(ctx);
    if guard.installed {
        guard.timer = Some((name.to_string(), std::time::Instant::now()));
    }
    guard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_opens_nothing() {
        let mut log = SpanLog::new(3);
        assert!(log.open_root("round", 5, &[]).is_none());
        assert!(log.is_empty());
    }

    #[test]
    fn ids_are_deterministic_and_parentage_chains() {
        let mut log = SpanLog::new(2);
        log.set_enabled(true);
        let root = log
            .open_root("round", 10, &[("round", "1")])
            .expect("enabled");
        assert_eq!(root.trace_id, root.span_id);
        assert_eq!(root.span_id, (2u64 << 32) | 1);
        let child = log
            .open_child(root, "handoff", 10, &[("tenant", "t0")])
            .expect("enabled");
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.span_id, (2u64 << 32) | 2);
        let records = log.to_vec();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].parent, NO_PARENT);
        assert_eq!(records[1].parent, root.span_id);
        assert_eq!(
            records[1].tags,
            vec![("tenant".to_string(), "t0".to_string())]
        );

        // Two identically driven logs produce byte-identical records.
        let mut again = SpanLog::new(2);
        again.set_enabled(true);
        let r = again.open_root("round", 10, &[("round", "1")]).unwrap();
        again.open_child(r, "handoff", 10, &[("tenant", "t0")]);
        assert_eq!(log.span_bytes(), again.span_bytes());
    }

    #[test]
    fn context_install_nests_and_restores() {
        assert!(current().is_none());
        let a = SpanContext {
            trace_id: 1,
            span_id: 1,
            origin: 0,
            tick: 0,
        };
        let b = SpanContext {
            trace_id: 1,
            span_id: 2,
            origin: 0,
            tick: 0,
        };
        {
            let _ga = install(Some(a));
            assert_eq!(current(), Some(a));
            {
                let _gb = enter(Some(b), "inner");
                assert_eq!(current(), Some(b));
                // None install is a pass-through, not a clear.
                let _gn = install(None);
                assert_eq!(current(), Some(b));
            }
            assert_eq!(current(), Some(a));
        }
        assert!(current().is_none());
    }

    #[test]
    fn ring_caps_and_codec_round_trips() {
        let mut log = SpanLog::new(0);
        log.set_enabled(true);
        for i in 0..DEFAULT_SPAN_CAP + 3 {
            log.open_root("s", i as u64, &[]);
        }
        assert_eq!(log.len(), DEFAULT_SPAN_CAP);
        assert_eq!(log.records().next().unwrap().tick, 3);
        let bytes = log.span_bytes();
        let decoded: Vec<SpanRecord> = serde::from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded, log.to_vec());
    }

    #[test]
    fn node_names_render() {
        assert_eq!(render_node(NODE_BALANCER), "balancer");
        assert_eq!(render_node(NODE_ROOT), "root");
        assert_eq!(render_node(node_for_shard(4)), "shard4");
        assert_eq!(render_node(node_for_zone(2)), "zone2");
        assert_eq!(render_node(node_for_zone_shard(1, 3)), "z1-shard3");
    }
}
