//! # kairos-fleet — the sharded control plane
//!
//! The single-loop daemon (`kairos-controller`) plans one fleet in one
//! process; cloud-scale workload management decomposes hierarchically
//! (WiSeDB; Jain et al.'s database-agnostic workload management). This
//! crate is that hierarchy:
//!
//! ```text
//!                      ┌────────────────────────────────┐
//!                      │        FleetController         │
//!                      │  shard map · balancer · audit  │
//!                      └───┬──────────┬──────────┬──────┘
//!          summaries ▲     │          │          │     ▼ two-phase handoffs
//!                      ┌───┴────┐ ┌───┴────┐ ┌───┴────┐
//!                      │ shard 0│ │ shard 1│ │ shard N│   ShardController:
//!                      │ ingest │ │ ingest │ │ ingest │   telemetry → drift →
//!                      │ solve  │ │ solve  │ │ solve  │   warm re-solve →
//!                      │ migrate│ │ migrate│ │ migrate│   capacity-safe moves
//!                      └────────┘ └────────┘ └────────┘
//!                        hosts      hosts      hosts     (disjoint slices)
//! ```
//!
//! * [`shardmap`] — tenant → shard routing truth (single ownership);
//! * [`balancer`] — donor/receiver/candidate policy over per-shard
//!   summaries (machine budgets, headroom ordering);
//! * [`handoff`] — the two-phase (reserve → evict → admit) capacity-safe
//!   transfer protocol and its audit records;
//! * [`fleet`] — the [`FleetController`] driving N
//!   [`kairos_controller::ShardController`]s, plus the global
//!   [`fleet::FleetAudit`] built by restricting one fleet-wide problem
//!   shard-by-shard ([`kairos_solver::ConsolidationProblem::restrict`]);
//! * [`sketch`] — fixed-size, peak-preserving quantile sketches of
//!   rolling windows: the O(1) representation summaries and handoff
//!   frames carry, independent of window length;
//! * [`hierarchy`] — the balancer-of-balancers: zones run the ordinary
//!   balance round over their shards, and a [`RootBalancer`] reuses the
//!   same [`balancer::ShardHandle`] policy one level up, moving *tenant
//!   groups* between zones from constant-size zone roll-ups only.
//!
//! Why shards scale: a per-shard re-solve sees only that shard's tenants,
//! so solve cost tracks shard size while the fleet grows; the balancer
//! sees only coarse aggregate summaries
//! ([`kairos_traces::aggregate`]), never per-tenant telemetry.

pub mod balancer;
pub mod fleet;
pub mod handoff;
pub mod hierarchy;
pub mod shardmap;
pub mod sketch;
pub mod snapshot;

pub use balancer::{
    candidate_order, donor_order, is_overloaded, receiver_order, run_balance_round, BalanceGate,
    BalancerConfig, BalancerSoftState, EvictedTenant, ParkedHandoff, ShardHandle,
    SYNC_STATE_VERSION,
};
pub use fleet::{
    default_tick_threads, FleetAudit, FleetConfig, FleetController, FleetMetrics, FleetStats,
    FleetTickReport,
};
pub use handoff::{HandoffOutcome, HandoffRecord};
pub use hierarchy::{
    group_index, group_name, group_of, RootBalancer, RootConfig, TenantGroup, Zone, ZoneRollup,
    ZoneSourceBinder, GROUP_WIRE_VERSION,
};
pub use shardmap::ShardMap;
pub use sketch::{AggregateSketch, SeriesSketch, SketchConfig, SKETCH_WIRE_VERSION};
pub use snapshot::{FleetSnapshot, FLEET_SNAPSHOT_VERSION};

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::balancer::BalancerConfig;
    pub use crate::fleet::{FleetConfig, FleetController};
    pub use crate::handoff::HandoffOutcome;
    pub use kairos_controller::{ControllerConfig, ShardSummary, SyntheticSource};
}
