//! An rrdtool-style round-robin time-series store.
//!
//! §7.1: "The statistics were stored in the rrdtool format, used by open
//! source monitoring tools such as Cacti, Ganglia, and Munin [...] CPU,
//! RAM, and disk I/O numbers as reported by Linux, averaged over different
//! time intervals — ranging from every 15 seconds for the last hour to
//! every 24 hours for the last year."
//!
//! A [`Rrd`] holds several fixed-capacity archives at coarsening
//! resolutions; pushing a base-resolution sample updates them all through
//! their consolidation functions.

use kairos_types::TimeSeries;
use serde::{Deserialize, Serialize};

/// Consolidation function applied when folding base samples into a
/// coarser archive bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Consolidation {
    Average,
    Max,
    Min,
}

/// Declares one archive: every `step` base samples become one stored
/// point; the archive keeps the most recent `capacity` points.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArchiveSpec {
    pub step: usize,
    pub capacity: usize,
    pub cf: Consolidation,
}

impl ArchiveSpec {
    /// The invariants [`Archive::new`] asserts, as a decode-time check
    /// (restored snapshots must error, not panic, on nonsense specs).
    fn valid(&self) -> bool {
        self.step >= 1 && self.capacity >= 1
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Archive {
    spec: ArchiveSpec,
    /// Ring of consolidated points (oldest first after unrolling).
    ring: std::collections::VecDeque<f64>,
    /// Accumulator over the current (incomplete) bucket.
    acc: f64,
    acc_n: usize,
}

impl Archive {
    fn new(spec: ArchiveSpec) -> Archive {
        assert!(spec.step >= 1 && spec.capacity >= 1);
        Archive {
            spec,
            ring: std::collections::VecDeque::with_capacity(spec.capacity),
            acc: initial_acc(spec.cf),
            acc_n: 0,
        }
    }

    fn push(&mut self, v: f64) {
        match self.spec.cf {
            Consolidation::Average => self.acc += v,
            Consolidation::Max => self.acc = self.acc.max(v),
            Consolidation::Min => self.acc = self.acc.min(v),
        }
        self.acc_n += 1;
        if self.acc_n == self.spec.step {
            let point = match self.spec.cf {
                Consolidation::Average => self.acc / self.spec.step as f64,
                _ => self.acc,
            };
            if self.ring.len() == self.spec.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(point);
            self.acc = initial_acc(self.spec.cf);
            self.acc_n = 0;
        }
    }
}

fn initial_acc(cf: Consolidation) -> f64 {
    match cf {
        Consolidation::Average => 0.0,
        Consolidation::Max => f64::NEG_INFINITY,
        Consolidation::Min => f64::INFINITY,
    }
}

/// The multi-archive store.
#[derive(Debug, Clone, Serialize)]
pub struct Rrd {
    base_interval_secs: f64,
    archives: Vec<Archive>,
    samples_pushed: u64,
}

/// Decoding validates what [`Rrd::new`]/[`Archive::new`] would assert —
/// a corrupt or hand-built byte stream must surface as an error, never
/// as a store that panics on its first push.
impl Deserialize for Rrd {
    fn decode_from(input: &mut &[u8]) -> Result<Rrd, serde::Error> {
        let base_interval_secs = f64::decode_from(input)?;
        let archives = Vec::<Archive>::decode_from(input)?;
        let samples_pushed = u64::decode_from(input)?;
        if !(base_interval_secs.is_finite() && base_interval_secs > 0.0) {
            return Err(serde::Error::msg("rrd: non-positive base interval"));
        }
        if archives.is_empty() {
            return Err(serde::Error::msg("rrd: no archives"));
        }
        for a in &archives {
            if !a.spec.valid() {
                return Err(serde::Error::msg("rrd: invalid archive spec"));
            }
            if a.ring.len() > a.spec.capacity {
                return Err(serde::Error::msg("rrd: archive ring exceeds capacity"));
            }
            if a.acc_n >= a.spec.step {
                return Err(serde::Error::msg("rrd: archive accumulator past bucket"));
            }
        }
        Ok(Rrd {
            base_interval_secs,
            archives,
            samples_pushed,
        })
    }
}

impl Rrd {
    /// Create with a base sampling interval and archive layout.
    ///
    /// # Panics
    /// Panics if no archives are declared.
    pub fn new(base_interval_secs: f64, specs: Vec<ArchiveSpec>) -> Rrd {
        assert!(base_interval_secs > 0.0);
        assert!(!specs.is_empty(), "need at least one archive");
        Rrd {
            base_interval_secs,
            archives: specs.into_iter().map(Archive::new).collect(),
            samples_pushed: 0,
        }
    }

    /// A paper-like layout on a 5-minute base: 5-min averages for a day,
    /// hourly for two weeks, daily maxima for a year.
    pub fn monitoring_default() -> Rrd {
        Rrd::new(
            300.0,
            vec![
                ArchiveSpec {
                    step: 1,
                    capacity: 288,
                    cf: Consolidation::Average,
                },
                ArchiveSpec {
                    step: 12,
                    capacity: 336,
                    cf: Consolidation::Average,
                },
                ArchiveSpec {
                    step: 288,
                    capacity: 365,
                    cf: Consolidation::Max,
                },
            ],
        )
    }

    pub fn base_interval_secs(&self) -> f64 {
        self.base_interval_secs
    }

    pub fn archives(&self) -> usize {
        self.archives.len()
    }

    pub fn samples_pushed(&self) -> u64 {
        self.samples_pushed
    }

    /// Serialize the whole store — ring contents, in-flight accumulator
    /// state and sample counter — to the workspace wire format. The
    /// restored store continues exactly where this one stops:
    /// `decode(encode(r))` then `push(v)` equals `r.push(v)`.
    pub fn encode(&self) -> Vec<u8> {
        serde::to_bytes(self)
    }

    /// Inverse of [`Rrd::encode`], with full validation: truncated or
    /// invariant-breaking bytes yield an error, never a panicking store.
    pub fn decode(bytes: &[u8]) -> Result<Rrd, serde::Error> {
        serde::from_bytes(bytes)
    }

    /// Push one base-resolution sample into every archive.
    pub fn push(&mut self, v: f64) {
        for a in &mut self.archives {
            a.push(v);
        }
        self.samples_pushed += 1;
    }

    /// Append a batch of base-resolution samples (streaming-ingest path:
    /// one call per monitoring flush instead of one per sample).
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.push(v);
        }
    }

    /// Index of the finest (smallest-step) archive.
    fn finest_idx(&self) -> usize {
        (0..self.archives.len())
            .min_by_key(|&i| self.archives[i].spec.step)
            .expect("non-empty archives")
    }

    /// The most recent `n` base-resolution points (fewer if the finest
    /// archive holds less history) — the *rolling window* an online drift
    /// detector compares against the planned profile. Oldest first.
    pub fn rolling_window(&self, n: usize) -> TimeSeries {
        let idx = self.finest_idx();
        let a = &self.archives[idx];
        let take = n.min(a.ring.len());
        let skip = a.ring.len() - take;
        TimeSeries::new(
            self.base_interval_secs * a.spec.step as f64,
            a.ring.iter().skip(skip).copied().collect(),
        )
    }

    /// Number of points currently held by the finest archive — how much
    /// rolling-window history is available right now.
    pub fn rolling_len(&self) -> usize {
        self.archives[self.finest_idx()].ring.len()
    }

    /// Materialize archive `idx` as a [`TimeSeries`] (oldest first;
    /// incomplete buckets excluded).
    pub fn series(&self, idx: usize) -> TimeSeries {
        let a = &self.archives[idx];
        TimeSeries::new(
            self.base_interval_secs * a.spec.step as f64,
            a.ring.iter().copied().collect(),
        )
    }

    /// The finest archive that still covers `duration_secs` of history —
    /// "the best compromise between length of observation and sampling
    /// rates" (§7.1).
    pub fn best_series_covering(&self, duration_secs: f64) -> TimeSeries {
        let mut best: Option<usize> = None;
        for (i, a) in self.archives.iter().enumerate() {
            let span = self.base_interval_secs * a.spec.step as f64 * a.ring.len().max(1) as f64;
            let covers = span >= duration_secs;
            let finer = |j: usize| self.archives[j].spec.step;
            if covers && best.is_none_or(|b| a.spec.step < finer(b)) {
                best = Some(i);
            }
        }
        // Fall back to the coarsest archive when nothing covers fully.
        let idx = best.unwrap_or_else(|| {
            (0..self.archives.len())
                .max_by_key(|&i| self.archives[i].spec.step)
                .expect("non-empty archives")
        });
        self.series(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_archive(step: usize, capacity: usize) -> ArchiveSpec {
        ArchiveSpec {
            step,
            capacity,
            cf: Consolidation::Average,
        }
    }

    #[test]
    fn base_archive_stores_raw_samples() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 5)]);
        for i in 0..3 {
            rrd.push(i as f64);
        }
        assert_eq!(rrd.series(0).values(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 3)]);
        for i in 0..5 {
            rrd.push(i as f64);
        }
        assert_eq!(rrd.series(0).values(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn average_consolidation() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(4, 10)]);
        for v in [1.0, 2.0, 3.0, 4.0, 10.0, 10.0] {
            rrd.push(v);
        }
        // One complete bucket (mean 2.5); the 10s are still accumulating.
        assert_eq!(rrd.series(0).values(), &[2.5]);
        assert_eq!(rrd.series(0).interval_secs(), 4.0);
    }

    #[test]
    fn max_consolidation() {
        let mut rrd = Rrd::new(
            1.0,
            vec![ArchiveSpec {
                step: 3,
                capacity: 4,
                cf: Consolidation::Max,
            }],
        );
        for v in [1.0, 5.0, 2.0, 0.0, 0.5, 0.25] {
            rrd.push(v);
        }
        assert_eq!(rrd.series(0).values(), &[5.0, 0.5]);
    }

    #[test]
    fn min_consolidation() {
        let mut rrd = Rrd::new(
            1.0,
            vec![ArchiveSpec {
                step: 2,
                capacity: 4,
                cf: Consolidation::Min,
            }],
        );
        for v in [3.0, 1.0, 8.0, 9.0] {
            rrd.push(v);
        }
        assert_eq!(rrd.series(0).values(), &[1.0, 8.0]);
    }

    #[test]
    fn multiple_archives_consistent() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 100), avg_archive(10, 10)]);
        for i in 0..100 {
            rrd.push(i as f64);
        }
        let fine = rrd.series(0);
        let coarse = rrd.series(1);
        assert_eq!(fine.len(), 100);
        assert_eq!(coarse.len(), 10);
        // Consolidation preserves the overall mean.
        assert!((fine.mean() - coarse.mean()).abs() < 1e-9);
    }

    #[test]
    fn best_series_prefers_finest_covering() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 10), avg_archive(5, 100)]);
        for i in 0..200 {
            rrd.push(i as f64);
        }
        // 10 s of fine history vs 500 s of coarse history.
        assert_eq!(rrd.best_series_covering(8.0).interval_secs(), 1.0);
        assert_eq!(rrd.best_series_covering(50.0).interval_secs(), 5.0);
        // Nothing covers a year: fall back to coarsest.
        assert_eq!(rrd.best_series_covering(1e7).interval_secs(), 5.0);
    }

    #[test]
    fn monitoring_default_layout() {
        let rrd = Rrd::monitoring_default();
        assert_eq!(rrd.archives(), 3);
        assert_eq!(rrd.base_interval_secs(), 300.0);
    }

    #[test]
    fn extend_matches_repeated_push() {
        let mut a = Rrd::new(1.0, vec![avg_archive(1, 10), avg_archive(3, 5)]);
        let mut b = a.clone();
        for i in 0..9 {
            a.push(i as f64);
        }
        b.extend((0..9).map(|i| i as f64));
        assert_eq!(a.series(0).values(), b.series(0).values());
        assert_eq!(a.series(1).values(), b.series(1).values());
        assert_eq!(b.samples_pushed(), 9);
    }

    #[test]
    fn rolling_window_returns_most_recent_points() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 5), avg_archive(10, 10)]);
        rrd.extend((0..8).map(|i| i as f64));
        // Finest archive caps at 5 points: values 3..8.
        assert_eq!(rrd.rolling_len(), 5);
        assert_eq!(rrd.rolling_window(3).values(), &[5.0, 6.0, 7.0]);
        // Asking for more than held returns what exists.
        assert_eq!(rrd.rolling_window(99).values(), &[3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(rrd.rolling_window(3).interval_secs(), 1.0);
    }

    #[test]
    fn encode_decode_resumes_mid_bucket() {
        // 5 samples into step-3 archives leaves a half-full accumulator;
        // the restored store must finish that bucket identically.
        let mut original = Rrd::new(
            2.0,
            vec![
                avg_archive(1, 4),
                ArchiveSpec {
                    step: 3,
                    capacity: 4,
                    cf: Consolidation::Max,
                },
            ],
        );
        original.extend((0..5).map(|i| i as f64));
        let mut restored = Rrd::decode(&original.encode()).expect("clean bytes decode");
        assert_eq!(restored.samples_pushed(), original.samples_pushed());
        for v in [9.0, 1.0, 7.0, 2.0] {
            original.push(v);
            restored.push(v);
        }
        for idx in 0..original.archives() {
            assert_eq!(restored.series(idx).values(), original.series(idx).values());
        }
        // Byte-level determinism: same state, same encoding.
        assert_eq!(restored.encode(), original.encode());
    }

    #[test]
    fn decode_rejects_corrupt_invariants() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(2, 3)]);
        rrd.extend([1.0, 2.0, 3.0]);
        let bytes = rrd.encode();
        // Truncations at every byte boundary fail cleanly.
        for cut in 0..bytes.len() {
            assert!(Rrd::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A zero-length interval violates the constructor invariant.
        let mut bad = bytes.clone();
        bad[..8].copy_from_slice(&0.0f64.to_bits().to_le_bytes());
        assert!(Rrd::decode(&bad).is_err(), "zero interval must be rejected");
    }

    #[test]
    fn rolling_window_uses_finest_archive_regardless_of_order() {
        // Coarse archive listed first: rolling_window must still pick the
        // fine one.
        let mut rrd = Rrd::new(1.0, vec![avg_archive(10, 10), avg_archive(1, 5)]);
        rrd.extend((0..20).map(|i| i as f64));
        assert_eq!(rrd.rolling_window(2).values(), &[18.0, 19.0]);
    }
}
