//! Wikipedia-like read-mostly web workload.
//!
//! Modeled after the benchmark the authors derived from Wikipedia's
//! public source, data, and a 10 % HTTP trace (§7.1):
//! * ~92 % of queries are reads, ~8 % writes;
//! * tuple sizes range from 70 B to 3.6 MB (article text) — we model the
//!   heavy tail with a deterministic per-transaction size mixture plus
//!   multiplicative jitter, which reproduces the *higher disk-write
//!   variance* the paper observed for Wikipedia in Fig 12b;
//! * scaled by article count: 100 K pages ≈ 67 GB of data with a ≈2.2 GB
//!   working set (§7.5), shrinking proportionally for smaller scales.

use crate::{patterns::RatePattern, TxnCarry, Workload, WorkloadHandle};
use kairos_dbsim::{AccessSpec, DbmsInstance, OpBatch, UpdateSpec};
use kairos_types::{Bytes, SplitMix64};

/// Database bytes per 1 K articles (≈67 GB at the paper's 100 K-page scale).
pub const DB_BYTES_PER_K_PAGES: u64 = 670 * 1024 * 1024;
/// Working-set bytes per 1 K articles (2.2 GB / 100 K pages).
pub const WS_BYTES_PER_K_PAGES: u64 = 23 * 1024 * 1024; // ≈2.2 GiB per 100 K
/// Mean row size (articles + revision metadata + links).
pub const ROW_BYTES: u64 = 2048;

/// Fraction of transactions that are writes (edits, watchlist, logins).
pub const WRITE_FRACTION: f64 = 0.08;

/// The Wikipedia-like workload generator.
#[derive(Debug, Clone)]
pub struct WikipediaWorkload {
    name: String,
    /// Scale in thousands of articles (the paper uses 100 K pages).
    pages_k: u64,
    rate: RatePattern,
    carry: TxnCarry,
    rng: SplitMix64,
    /// Override for the working set (used by the Fig 12b generality
    /// experiment to match TPC-C's working set exactly).
    ws_override: Option<Bytes>,
}

impl WikipediaWorkload {
    pub fn new(pages_k: u64, tps: f64) -> WikipediaWorkload {
        WikipediaWorkload::with_pattern(pages_k, RatePattern::Flat { tps })
    }

    pub fn with_pattern(pages_k: u64, rate: RatePattern) -> WikipediaWorkload {
        assert!(pages_k > 0, "need at least 1K articles");
        WikipediaWorkload {
            name: format!("wikipedia-{pages_k}Kp"),
            pages_k,
            rate,
            carry: TxnCarry::default(),
            rng: SplitMix64::new(0x81D1A),
            ws_override: None,
        }
    }

    pub fn named(mut self, name: impl Into<String>) -> WikipediaWorkload {
        self.name = name.into();
        self
    }

    /// Pin the working set to an explicit size (Fig 12b pairing).
    pub fn with_working_set(mut self, ws: Bytes) -> WikipediaWorkload {
        self.ws_override = Some(ws);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> WikipediaWorkload {
        self.rng = SplitMix64::new(seed);
        self
    }

    pub fn db_size(&self) -> Bytes {
        Bytes(self.pages_k * DB_BYTES_PER_K_PAGES)
    }
}

impl Workload for WikipediaWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&mut self, inst: &mut DbmsInstance) -> WorkloadHandle {
        let db = inst.create_database(self.name.clone());
        let rows = self.db_size().0 / ROW_BYTES;
        let table = inst
            .create_table(db, rows, ROW_BYTES)
            .expect("database was just created");
        let revisions = inst
            .create_table(db, 1024, ROW_BYTES)
            .expect("database was just created");
        let ws_pages = self.working_set().pages(inst.page_size());
        inst.prewarm_pages(table, ws_pages);
        WorkloadHandle {
            db,
            table,
            append_table: Some(revisions),
            ws_pages,
        }
    }

    fn batch(&mut self, handle: &WorkloadHandle, now: f64, dt: f64) -> OpBatch {
        let txns = self.carry.take(self.rate.rate_at(now), dt);
        if txns == 0.0 {
            return OpBatch::default();
        }
        let writes = txns * WRITE_FRACTION;
        // Heavy-tailed edit sizes: mostly small metadata rows, occasionally
        // a multi-page article body. Jitter gives Fig 12b's variance.
        let size_jitter = 0.4 + 1.2 * self.rng.next_f64();
        // Rows touched per write txn: page row + revision row + links.
        let rows_updated = writes * 4.0 * size_jitter;
        let reads = txns * 3.2;
        OpBatch {
            txns,
            rows_read: txns * 6.0,
            reads: vec![AccessSpec {
                table: handle.table,
                prefix_pages: handle.ws_pages,
                accesses: reads,
            }],
            updates: vec![UpdateSpec {
                table: handle.table,
                prefix_pages: handle.ws_pages,
                rows: rows_updated,
            }],
            insert_bytes: writes * 2048.0 * size_jitter,
            insert_table: handle.append_table,
            cpu_core_secs: txns * 0.22e-3,
            base_latency_secs: 0.011,
        }
    }

    fn working_set(&self) -> Bytes {
        self.ws_override
            .unwrap_or(Bytes(self.pages_k * WS_BYTES_PER_K_PAGES))
    }

    fn mean_rate(&self) -> f64 {
        self.rate.mean_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_dbsim::DbmsConfig;

    #[test]
    fn paper_scale_sizes() {
        let w = WikipediaWorkload::new(100, 500.0);
        // 100 K pages: ≈67 GB database, ≈2.2 GB working set.
        assert!((w.db_size().as_gib() - 65.4).abs() < 1.0);
        assert!((w.working_set().as_gib() - 2.25).abs() < 0.1);
    }

    #[test]
    fn working_set_override() {
        let w = WikipediaWorkload::new(100, 10.0).with_working_set(Bytes::gib(1));
        assert_eq!(w.working_set(), Bytes::gib(1));
    }

    #[test]
    fn read_write_mix_matches_92_8() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(512)));
        let mut w = WikipediaWorkload::new(1, 1000.0);
        let h = w.install(&mut inst);
        let mut rows_updated = 0.0;
        let mut txns = 0.0;
        for i in 0..100 {
            let b = w.batch(&h, i as f64 * 0.1, 0.1);
            txns += b.txns;
            rows_updated += b.updates.iter().map(|u| u.rows).sum::<f64>();
        }
        // rows/txn ≈ 0.08 * 4 * E[jitter ≈ 1.0] ≈ 0.32.
        let per_txn = rows_updated / txns;
        assert!(per_txn > 0.15 && per_txn < 0.55, "rows/txn = {per_txn}");
    }

    #[test]
    fn writes_have_variance() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(512)));
        let mut w = WikipediaWorkload::new(1, 1000.0);
        let h = w.install(&mut inst);
        let mut rates: Vec<f64> = Vec::new();
        for i in 0..50 {
            let b = w.batch(&h, i as f64 * 0.1, 0.1);
            rates.push(b.updates.iter().map(|u| u.rows).sum::<f64>());
        }
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64;
        assert!(var > 0.0, "edit sizes must vary tick to tick");
    }

    #[test]
    fn install_warms_working_set_only() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::gib(1)));
        let mut w = WikipediaWorkload::new(2, 10.0);
        let h = w.install(&mut inst);
        assert!(inst.table_pages(h.table) > h.ws_pages * 10);
    }
}
