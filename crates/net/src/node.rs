//! The shard-node role: one [`ShardController`] served behind a
//! [`Transport`] endpoint.
//!
//! A node answers the full RPC catalog ([`crate::rpc`]) against its
//! controller, serialized by one mutex (dispatch order = delivery order,
//! so the loopback fleet replays the in-process fleet exactly). The one
//! thing bytes cannot carry across a process boundary is a live
//! telemetry *source*; the node owns a [`SourceBinder`] that supplies
//! them:
//!
//! * [`SourceEscrow`] — a shared in-process parking lot. An eviction
//!   deposits the live source; an admission (or reattach) withdraws it.
//!   This is what a single-process loopback fleet uses: the source
//!   physically moves, exactly like the pre-RPC `FleetController`.
//! * [`SourceFactory`] — a constructor by tenant name. This is the
//!   multi-process reality: the donor's source dies with the eviction
//!   and the destination *re-binds its own* — the PR 4
//!   `attach_source`/`detached_workloads` surface, driven from the
//!   network layer. The factory receives the shard's current tick so a
//!   deterministic source can be fast-forwarded into phase.
//!
//! The admit path decodes and validates the handoff frame **before**
//! binding anything: a damaged frame is rejected with an error response
//! and zero state change — a shard never admits a tenant from bytes it
//! cannot prove intact (mid-handshake corruption is property-tested).

use crate::frame;
use crate::rpc::{self, Request, Response};
use crate::transport::{Handler, NetError, ServerHandle, Transport};
use kairos_controller::{
    ControllerConfig, ShardController, ShardSnapshot, TelemetrySource, TenantHandoff,
    SHARD_SNAPSHOT_VERSION,
};
use kairos_core::ConsolidationEngine;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Where a node gets live telemetry sources from (see module docs).
pub trait SourceBinder: Send {
    /// Park an evicted tenant's live source (in-process deployments) or
    /// discard it (cross-process: the destination rebinds its own).
    fn deposit(&mut self, source: Box<dyn TelemetrySource>);
    /// Produce the live source for `tenant`. `at_tick` is the shard's
    /// current tick — a factory fast-forwards a freshly built
    /// deterministic source by that much so its stream is in phase.
    fn bind(&mut self, tenant: &str, at_tick: u64) -> Option<Box<dyn TelemetrySource>>;
}

/// Shared in-process source parking lot (the loopback deployment's
/// binder). `Clone` shares the lot: hand one handle to every node and
/// evicted sources flow donor → escrow → receiver.
#[derive(Clone, Default)]
pub struct SourceEscrow {
    lot: Arc<Mutex<BTreeMap<String, Box<dyn TelemetrySource>>>>,
}

impl SourceEscrow {
    pub fn new() -> SourceEscrow {
        SourceEscrow::default()
    }

    /// Park a source up front (how a test hands a node its initial
    /// tenants before `AddWorkload` RPCs).
    pub fn park(&self, source: Box<dyn TelemetrySource>) {
        let name = source.name().to_string();
        self.lot.lock().expect("escrow lock").insert(name, source);
    }

    /// Tenants currently parked (diagnostics).
    pub fn parked(&self) -> Vec<String> {
        self.lot
            .lock()
            .expect("escrow lock")
            .keys()
            .cloned()
            .collect()
    }
}

impl SourceBinder for SourceEscrow {
    fn deposit(&mut self, source: Box<dyn TelemetrySource>) {
        self.park(source);
    }

    fn bind(&mut self, tenant: &str, _at_tick: u64) -> Option<Box<dyn TelemetrySource>> {
        self.lot.lock().expect("escrow lock").remove(tenant)
    }
}

/// Constructor-by-name binder (the multi-process deployment). The
/// closure builds a tenant's deterministic source positioned at
/// `at_tick`; evicted sources are simply dropped — the tenant's history
/// travels in the handoff frame, and the destination re-binds its own.
pub struct SourceFactory {
    make: SourceMaker,
}

/// The constructor a [`SourceFactory`] wraps: `(tenant, at_tick)` →
/// live source, or `None` for tenants it cannot build.
pub type SourceMaker = Box<dyn FnMut(&str, u64) -> Option<Box<dyn TelemetrySource>> + Send>;

impl SourceFactory {
    pub fn new(
        make: impl FnMut(&str, u64) -> Option<Box<dyn TelemetrySource>> + Send + 'static,
    ) -> SourceFactory {
        SourceFactory {
            make: Box::new(make),
        }
    }
}

impl SourceBinder for SourceFactory {
    fn deposit(&mut self, _source: Box<dyn TelemetrySource>) {}

    fn bind(&mut self, tenant: &str, at_tick: u64) -> Option<Box<dyn TelemetrySource>> {
        (self.make)(tenant, at_tick)
    }
}

/// Most recent eviction frames a node retains for idempotent retries.
/// An `Evict` whose *response* is lost leaves the client without the
/// handoff bytes while the shard already dropped the tenant; the retry
/// finds the frame here instead of a hole. Small and bounded: entries
/// clear when the tenant is admitted back, and only the most recent
/// evictions are kept.
const EVICT_OUTBOX_CAP: usize = 64;

/// Ticks of backoff never exceed this between announce attempts.
const MAX_ANNOUNCE_BACKOFF_TICKS: u64 = 8;

/// Self-healing membership state: this node announces itself to the
/// balancer's lease endpoint and, until acknowledged, re-announces on
/// `Tick` dispatches with bounded deterministic backoff
/// (`min(2^attempts, 8)` ticks — tick-based, never wall-clock, so chaos
/// schedules replay exactly).
struct AnnounceState {
    transport: Arc<dyn Transport>,
    balancer: String,
    shard: u64,
    endpoint: String,
    generation: u64,
    /// An announce is owed (initial, or the last attempt failed).
    pending: bool,
    attempts: u32,
    next_attempt_tick: u64,
}

impl AnnounceState {
    /// One announce attempt. On failure the next attempt is scheduled
    /// `min(2^attempts, 8)` ticks out from `now`.
    fn attempt(&mut self, now: u64) {
        let request = Request::Announce {
            shard: self.shard,
            endpoint: self.endpoint.clone(),
            generation: self.generation,
        };
        let delivered = self
            .transport
            .connect(&self.balancer)
            .and_then(|mut conn| rpc::call(conn.as_mut(), &request))
            .is_ok();
        if delivered {
            self.pending = false;
            self.attempts = 0;
        } else {
            self.attempts = self.attempts.saturating_add(1);
            let backoff = 1u64
                .checked_shl(self.attempts)
                .unwrap_or(MAX_ANNOUNCE_BACKOFF_TICKS)
                .min(MAX_ANNOUNCE_BACKOFF_TICKS);
            self.next_attempt_tick = now + backoff;
        }
    }
}

struct NodeState {
    shard: ShardController,
    binder: Box<dyn SourceBinder>,
    /// `(tenant, frame)` of recent evictions, oldest first — the
    /// lost-response recovery buffer (see [`EVICT_OUTBOX_CAP`]).
    evict_outbox: Vec<(String, Vec<u8>)>,
    shutdown: bool,
    /// Self-healing membership, when configured (see [`AnnounceState`]).
    announce: Option<AnnounceState>,
    /// The health watchdog, when armed ([`ShardNode::set_health`]).
    /// Observed on every `Tick` dispatch over the shard + process-global
    /// registries; the current report answers the `Health` RPC.
    health: Option<kairos_obs::HealthMonitor>,
}

/// One shard served over a transport. See module docs.
pub struct ShardNode {
    state: Arc<Mutex<NodeState>>,
}

impl ShardNode {
    /// A fresh, empty shard.
    pub fn new(
        cfg: ControllerConfig,
        engine: ConsolidationEngine,
        binder: Box<dyn SourceBinder>,
    ) -> ShardNode {
        ShardNode::from_controller(ShardController::new(cfg, engine), binder)
    }

    /// Wrap an existing controller (tests that pre-populate state).
    pub fn from_controller(shard: ShardController, binder: Box<dyn SourceBinder>) -> ShardNode {
        ShardNode {
            state: Arc::new(Mutex::new(NodeState {
                shard,
                binder,
                evict_outbox: Vec::new(),
                shutdown: false,
                announce: None,
                health: None,
            })),
        }
    }

    /// Restore a node from a shard checkpoint file (written via the
    /// `Checkpoint` RPC) and re-bind every detached tenant through the
    /// binder at the restored tick — the rejoin path after a node death.
    pub fn restore_from(
        cfg: ControllerConfig,
        engine: ConsolidationEngine,
        path: &Path,
        binder: Box<dyn SourceBinder>,
    ) -> Result<ShardNode, NetError> {
        let snapshot: ShardSnapshot = kairos_store::load(path, SHARD_SNAPSHOT_VERSION)
            .map_err(|e| NetError::Remote(format!("restore: {e}")))?;
        ShardNode::from_snapshot(cfg, engine, snapshot, binder)
    }

    /// [`ShardNode::restore_from`] with an already-loaded snapshot.
    pub fn from_snapshot(
        cfg: ControllerConfig,
        engine: ConsolidationEngine,
        snapshot: ShardSnapshot,
        mut binder: Box<dyn SourceBinder>,
    ) -> Result<ShardNode, NetError> {
        let mut shard = ShardController::restore(cfg, engine, snapshot)
            .map_err(|e| NetError::Remote(format!("restore: {e}")))?;
        let at_tick = shard.stats().ticks;
        for tenant in shard.detached_workloads() {
            let Some(source) = binder.bind(&tenant, at_tick) else {
                return Err(NetError::Remote(format!(
                    "restore: no source bindable for {tenant}"
                )));
            };
            shard
                .attach_source(source)
                .map_err(|e| NetError::Remote(format!("restore: {e}")))?;
        }
        Ok(ShardNode::from_controller(shard, binder))
    }

    /// Register this node's RPC handler at `endpoint`.
    pub fn serve(
        &self,
        transport: &dyn Transport,
        endpoint: &str,
    ) -> Result<ServerHandle, NetError> {
        let state = self.state.clone();
        let served = endpoint.to_string();
        let handler: Handler = Arc::new(Mutex::new(move |request_frame: &[u8]| {
            let key = crate::auth::process_key();
            let response = match crate::auth::verify(request_frame, key) {
                Ok(base) => match frame::decode_frame_with_span::<Request>(base) {
                    Ok((request, span)) => {
                        // Install the caller's span context (if the frame
                        // carried one) for the dispatch: the shard's
                        // evict/admit spans then chain under the
                        // balancer's handoff span across the process
                        // boundary. Span-free frames install nothing.
                        let _span = kairos_obs::span::install(span);
                        dispatch(&state, request)
                    }
                    // A damaged request frame touches no state —
                    // validation precedes dispatch, always.
                    Err(e) => Response::Error(format!("bad request frame: {e}")),
                },
                // Unauthenticated: counted by the auth layer; traced
                // here; zero shard-state change.
                Err(_) => {
                    let mut state = state.lock().expect("node state lock");
                    state
                        .shard
                        .record_event(kairos_obs::DecisionEvent::AuthRejected {
                            endpoint: served.clone(),
                        });
                    Response::Error("unauthenticated frame".into())
                }
            };
            crate::auth::seal(frame::encode_frame(&response), key)
        }));
        transport.serve(endpoint, handler)
    }

    /// Configure self-healing membership: announce `(shard, endpoint,
    /// generation)` to the balancer's lease endpoint now, and — if the
    /// announce cannot be delivered — keep retrying on `Tick`
    /// dispatches with bounded deterministic backoff until it lands.
    /// Call after `serve` (initial join, or a checkpoint restore): this
    /// replaces supervisor-driven rejoin with the node healing itself.
    pub fn announce_via(
        &self,
        transport: Arc<dyn Transport>,
        balancer_endpoint: &str,
        shard: u64,
        endpoint: &str,
        generation: u64,
    ) {
        let mut announce = AnnounceState {
            transport,
            balancer: balancer_endpoint.to_string(),
            shard,
            endpoint: endpoint.to_string(),
            generation,
            pending: true,
            attempts: 0,
            next_attempt_tick: 0,
        };
        let now = self.with_shard(|shard| shard.stats().ticks);
        announce.attempt(now);
        self.state.lock().expect("node state lock").announce = Some(announce);
    }

    /// Is an announce still owed (undelivered)? Diagnostics and tests.
    pub fn announce_pending(&self) -> bool {
        self.state
            .lock()
            .expect("node state lock")
            .announce
            .as_ref()
            .is_some_and(|a| a.pending)
    }

    /// Run `f` against the shard (tests, examples, local maintenance).
    pub fn with_shard<R>(&self, f: impl FnOnce(&mut ShardController) -> R) -> R {
        f(&mut self.state.lock().expect("node state lock").shard)
    }

    /// Arm (or disarm, with `None`) the node's health watchdog. Observed
    /// on every `Tick` dispatch; the `Health` RPC serves the report.
    pub fn set_health(&self, monitor: Option<kairos_obs::HealthMonitor>) {
        self.state.lock().expect("node state lock").health = monitor;
    }

    /// Did a `Shutdown` RPC arrive? (The node process's exit signal.)
    pub fn shutdown_requested(&self) -> bool {
        self.state.lock().expect("node state lock").shutdown
    }
}

/// Serve one request against the node. Exactly one lock scope — a
/// request observes and mutates a consistent shard.
fn dispatch(state: &Arc<Mutex<NodeState>>, request: Request) -> Response {
    let mut state = state.lock().expect("node state lock");
    let state = &mut *state;
    let shard = &mut state.shard;
    match request {
        Request::Ping => Response::Pong {
            ticks: shard.stats().ticks,
        },
        Request::Tick => {
            let outcome = shard.tick();
            // Pump self-healing membership on the tick clock: an owed
            // announce retries here once its backoff expires.
            let now = shard.stats().ticks;
            if let Some(announce) = state.announce.as_mut() {
                if announce.pending && now >= announce.next_attempt_tick {
                    announce.attempt(now);
                }
            }
            // One watchdog observation per tick, when armed; newly fired
            // rules land in the shard's decision trace.
            if let Some(monitor) = state.health.as_mut() {
                let registries = [shard.metrics_registry(), kairos_obs::global()];
                for finding in monitor.observe(now, &registries) {
                    shard.record_event(kairos_obs::DecisionEvent::HealthFlagged {
                        rule: finding.rule.clone(),
                        metric: finding.metric.clone(),
                        severity: finding.severity.name().to_string(),
                    });
                }
            }
            Response::Tick(outcome)
        }
        Request::PlannedOnce => Response::PlannedOnce(shard.planned_once()),
        Request::Summary => Response::Summary(shard.summary_cached()),
        Request::PackEstimate { exclude } => {
            let refs: Vec<&str> = exclude.iter().map(|s| s.as_str()).collect();
            Response::PackEstimate(shard.pack_estimate(&refs))
        }
        Request::Forecast { tenant } => Response::Forecast(shard.forecast_workload(&tenant)),
        Request::ForecastFleet => Response::Profiles(shard.forecast_fleet()),
        Request::CanAdmit { profile, budget } => {
            Response::CanAdmit(shard.can_admit(&profile, budget))
        }
        Request::Evict { tenant } => match shard.evict(&tenant) {
            Some(handoff) => {
                let (wire, source) = handoff.into_wire();
                // In-process: the live source parks in the escrow for the
                // receiver. Cross-process: the factory binder drops it —
                // the destination node re-binds its own.
                state.binder.deposit(source);
                // Retain the frame for an idempotent retry: if this
                // response is lost in flight, the caller's re-Evict
                // finds the bytes below instead of a hole.
                state.evict_outbox.retain(|(name, _)| name != &tenant);
                state.evict_outbox.push((tenant, wire.clone()));
                if state.evict_outbox.len() > EVICT_OUTBOX_CAP {
                    state.evict_outbox.remove(0);
                }
                Response::Evicted(Some(wire))
            }
            // Lost-response retry: the tenant already left, but its
            // frame is in the outbox — hand it out again.
            None => Response::Evicted(
                state
                    .evict_outbox
                    .iter()
                    .find(|(name, _)| name == &tenant)
                    .map(|(_, wire)| wire.clone()),
            ),
        },
        Request::Admit { frame } => {
            // Validate BEFORE binding: a damaged frame must reject with
            // zero state change, and no source gets built for it.
            let (name, replicas, telemetry) = match TenantHandoff::parts_from_wire(&frame) {
                Ok(parts) => parts,
                Err(e) => return Response::Error(format!("admit: damaged handoff frame: {e}")),
            };
            let at_tick = shard.stats().ticks;
            let Some(source) = state.binder.bind(&name, at_tick) else {
                return Response::Error(format!("admit: no source bindable for {name}"));
            };
            if source.name() != name {
                return Response::Error(format!(
                    "admit: binder produced source {} for tenant {name}",
                    source.name()
                ));
            }
            state.evict_outbox.retain(|(n, _)| n != &name);
            shard.admit(TenantHandoff {
                name,
                replicas,
                source,
                telemetry,
                sketch: shard.sketch_config(),
            });
            Response::Done
        }
        Request::AddWorkload { tenant, replicas } => {
            let at_tick = shard.stats().ticks;
            let Some(source) = state.binder.bind(&tenant, at_tick) else {
                return Response::Error(format!("add_workload: no source bindable for {tenant}"));
            };
            if replicas > 1 {
                shard.add_workload_with_replicas(source, replicas);
            } else {
                shard.add_workload(source);
            }
            Response::Done
        }
        Request::RemoveWorkload { tenant } => {
            shard.remove_workload(&tenant);
            Response::Done
        }
        Request::AddAntiAffinity { a, b } => {
            shard.add_anti_affinity(&a, &b);
            Response::Done
        }
        Request::Workloads => Response::Workloads(shard.workloads()),
        Request::Owns { tenant } => Response::Owns(shard.has_workload(&tenant)),
        Request::Membership => Response::Membership {
            replicas: shard.replica_counts(),
            anti_affinity: shard.anti_affinity_pairs().to_vec(),
        },
        Request::DetachedWorkloads => Response::Workloads(shard.detached_workloads()),
        Request::Placement => Response::Placement(shard.placement().clone()),
        Request::Stats => Response::Stats(shard.stats()),
        Request::Checkpoint { path } => {
            match kairos_store::save(Path::new(&path), SHARD_SNAPSHOT_VERSION, &shard.snapshot()) {
                Ok(()) => Response::Done,
                Err(e) => Response::Error(format!("checkpoint: {e}")),
            }
        }
        Request::Shutdown => {
            state.shutdown = true;
            Response::Done
        }
        Request::Metrics => {
            // The shard's own registry plus the process-global one (the
            // transport layer's RPC/frame instruments live there).
            let registries = [shard.metrics_registry(), kairos_obs::global()];
            Response::Metrics {
                json: kairos_obs::render_json_all(&registries),
                prometheus: kairos_obs::render_prometheus_all(&registries),
            }
        }
        Request::Trace => Response::Trace(shard.trace_bytes()),
        Request::EvictOutbox => Response::Workloads(
            state
                .evict_outbox
                .iter()
                .map(|(name, _)| name.clone())
                .collect(),
        ),
        // Balancer-role requests; a shard node is the wrong peer.
        Request::SyncState { .. } => Response::Error("sync_state: not a balancer standby".into()),
        Request::Announce { .. } => Response::Error("announce: not a balancer".into()),
        Request::Query { query } => Response::Query(kairos_obs::run_query(
            &query,
            &shard.trace_events(),
            &shard.span_log().to_vec(),
        )),
        Request::Health => Response::Health(
            state
                .health
                .as_ref()
                .map(|m| m.report().clone())
                .unwrap_or_default(),
        ),
        Request::Spans => Response::Spans(shard.span_bytes()),
    }
}
