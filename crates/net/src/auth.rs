//! Optional shared-secret frame authentication.
//!
//! The CRC trailer catches *accidents*; it does nothing against a peer
//! that can reach the port and speak the frame layout — ROADMAP calls
//! this gap out ("any peer that can reach a port can drive a shard").
//! This module closes it with a keyed-hash trailer: when a shared
//! secret is configured, every outbound frame is **sealed** with an
//! 8-byte SipHash-2-4 tag appended *after* the CRC, and every inbound
//! frame is **verified** before any payload decoding. A frame that
//! fails verification is rejected with [`NetError::AuthRejected`],
//! counted in `kairos_net_auth_failures_total`, and causes zero state
//! change on the receiver — exactly the discipline the CRC layer
//! already enforces for damage, extended to forgery.
//!
//! ## Sealed frame layout
//!
//! ```text
//! offset    size  field
//! 0         16    KNET header (magic, version, payload length)
//! 16        n     payload
//! 16+n      4     CRC-32 over [0, 16+n)            — the base frame
//! 16+n+4    8     SipHash-2-4 tag over [0, 16+n+4) — only when keyed
//! ```
//!
//! The tag covers the *whole* CRC'd frame, so an attacker cannot splice
//! a valid tag onto altered bytes, and an unkeyed deployment's frames
//! are byte-identical to before this module existed (the trailer is
//! strictly additive). Both sides must agree on the key: it is read
//! once per process from the `KAIROS_NET_KEY` environment variable
//! (see [`process_key`]), mirroring how a fleet-wide secret would be
//! provisioned to every node of a deployment.
//!
//! SipHash-2-4 is implemented here by hand (the workspace takes no
//! external crates) — it is the standard keyed short-input PRF, the
//! same primitive `std`'s hasher uses, and the reference test vectors
//! below pin the implementation. Tag comparison is constant-time
//! (fold the XOR of every byte, single branch at the end), so verify
//! latency leaks nothing about *where* a forged tag first differs.

use crate::transport::NetError;
use std::sync::OnceLock;

/// Length of the keyed tag appended after the CRC when a key is set.
pub const AUTH_TAG_LEN: usize = 8;

/// Environment variable the process-wide shared secret is read from.
pub const KEY_ENV: &str = "KAIROS_NET_KEY";

/// A derived SipHash-2-4 key. Built from an arbitrary-length secret via
/// [`AuthKey::from_secret`]; the two 64-bit halves are the secret
/// absorbed through the PRF itself under distinct fixed domain keys.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AuthKey {
    k0: u64,
    k1: u64,
}

impl std::fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material, even in debug logs.
        write!(f, "AuthKey(..)")
    }
}

impl AuthKey {
    /// Derive a key from an arbitrary shared secret.
    pub fn from_secret(secret: &[u8]) -> AuthKey {
        AuthKey {
            k0: siphash24(0x6b61_6972_6f73_2d30, 0x6e65_742d_6175_7468, secret),
            k1: siphash24(0x6b61_6972_6f73_2d31, 0x6672_616d_652d_6b65, secret),
        }
    }

    /// The 8-byte tag for `bytes` (LE encoding of the SipHash output).
    pub fn tag(&self, bytes: &[u8]) -> [u8; AUTH_TAG_LEN] {
        siphash24(self.k0, self.k1, bytes).to_le_bytes()
    }

    /// Append the tag: `frame` must be a complete CRC'd KNET frame.
    pub fn seal(&self, mut frame: Vec<u8>) -> Vec<u8> {
        let tag = self.tag(&frame);
        frame.extend_from_slice(&tag);
        frame
    }

    /// Check the trailing tag (constant-time) and return the base frame
    /// with the tag stripped. `None` on any mismatch or short input —
    /// deliberately reason-free, so verify latency and the rejection
    /// path leak nothing about *why* a frame failed.
    pub fn check<'a>(&self, sealed: &'a [u8]) -> Option<&'a [u8]> {
        if sealed.len() < AUTH_TAG_LEN {
            return None;
        }
        let (body, tag) = sealed.split_at(sealed.len() - AUTH_TAG_LEN);
        if ct_eq(tag, &self.tag(body)) {
            Some(body)
        } else {
            None
        }
    }
}

/// Seal `frame` under `key`; a `None` key is the unkeyed deployment and
/// passes the frame through untouched.
pub fn seal(frame: Vec<u8>, key: Option<&AuthKey>) -> Vec<u8> {
    match key {
        Some(key) => key.seal(frame),
        None => frame,
    }
}

/// Verify an inbound frame under `key` and return the base frame (tag
/// stripped). A `None` key passes the bytes through. Failure bumps
/// `kairos_net_auth_failures_total` and rejects with
/// [`NetError::AuthRejected`] — before any payload decoding, so the
/// receiver's state cannot change.
pub fn verify<'a>(frame: &'a [u8], key: Option<&AuthKey>) -> Result<&'a [u8], NetError> {
    match key {
        None => Ok(frame),
        Some(key) => key.check(frame).ok_or_else(|| {
            auth_failures().inc();
            NetError::AuthRejected
        }),
    }
}

/// The process-wide key, read once from [`KEY_ENV`]. `None` when the
/// variable is unset or empty — the unkeyed (backward-compatible)
/// deployment shape.
pub fn process_key() -> Option<&'static AuthKey> {
    static KEY: OnceLock<Option<AuthKey>> = OnceLock::new();
    KEY.get_or_init(|| {
        std::env::var(KEY_ENV)
            .ok()
            .filter(|secret| !secret.is_empty())
            .map(|secret| AuthKey::from_secret(secret.as_bytes()))
    })
    .as_ref()
}

/// Extra trailer bytes a stream reader must consume per frame under the
/// process key: [`AUTH_TAG_LEN`] when keyed, 0 otherwise.
pub fn wire_trailer_len() -> usize {
    if process_key().is_some() {
        AUTH_TAG_LEN
    } else {
        0
    }
}

/// The process-global rejected-frame counter
/// (`kairos_net_auth_failures_total` on [`kairos_obs::global`]).
pub fn auth_failures() -> &'static kairos_obs::Counter {
    static FAILURES: OnceLock<kairos_obs::Counter> = OnceLock::new();
    FAILURES.get_or_init(|| kairos_obs::global().counter("kairos_net_auth_failures_total"))
}

/// Constant-time byte-slice equality: OR-fold the XOR of every pair,
/// one branch at the end.
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 (Aumasson & Bernstein), the reference construction:
/// 2 compression rounds per 8-byte block, 4 finalization rounds.
fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("sized chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = (data.len() & 0xff) as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;

    /// Reference SipHash-2-4 vectors from the SipHash paper (Appendix A):
    /// key = 00 01 .. 0f, input = the first `i` bytes of 00 01 02 …
    #[test]
    fn siphash24_matches_reference_vectors() {
        let k0 = 0x0706_0504_0302_0100u64;
        let k1 = 0x0f0e_0d0c_0b0a_0908u64;
        let input: Vec<u8> = (0u8..8).collect();
        let expected: [u64; 9] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
            0x93f5_f579_9a93_2462,
        ];
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                siphash24(k0, k1, &input[..len]),
                *want,
                "vector {len} mismatch"
            );
        }
    }

    #[test]
    fn seal_then_verify_roundtrips_and_strips_the_tag() {
        let key = AuthKey::from_secret(b"fleet-secret");
        let base = frame::encode_frame(&(String::from("tenant"), 9u64));
        let sealed = key.seal(base.clone());
        assert_eq!(sealed.len(), base.len() + AUTH_TAG_LEN);
        let stripped = verify(&sealed, Some(&key)).expect("authentic frame verifies");
        assert_eq!(stripped, &base[..]);
    }

    #[test]
    fn every_single_bit_flip_in_a_sealed_frame_is_rejected() {
        // The CRC property test's discipline, extended to the keyed
        // trailer: damage anywhere — header, payload, CRC, or the tag
        // itself — must fail verification.
        let key = AuthKey::from_secret(b"fleet-secret");
        let sealed = key.seal(frame::encode_frame(&(String::from("x"), 3u32)));
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut damaged = sealed.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    key.check(&damaged).is_none(),
                    "flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn wrong_key_and_unkeyed_frames_are_rejected() {
        let key = AuthKey::from_secret(b"fleet-secret");
        let other = AuthKey::from_secret(b"not-the-secret");
        let base = frame::encode_frame(&7u64);
        let sealed = key.seal(base.clone());
        assert!(other.check(&sealed).is_none(), "wrong key accepted");
        // An unkeyed peer's bare frame fails a keyed receiver: its last
        // 8 bytes are payload+CRC, not a tag.
        assert!(
            matches!(verify(&base, Some(&key)), Err(NetError::AuthRejected)),
            "bare frame accepted by keyed receiver"
        );
        // And the unkeyed deployment passes everything through.
        assert_eq!(verify(&base, None).expect("unkeyed passthrough"), &base[..]);
    }

    #[test]
    fn rejections_count_in_the_global_metric() {
        let key = AuthKey::from_secret(b"fleet-secret");
        let before = auth_failures().get();
        let _ = verify(b"too-short", Some(&key));
        let mut sealed = key.seal(frame::encode_frame(&1u8));
        let end = sealed.len() - 1;
        sealed[end] ^= 0xff;
        let _ = verify(&sealed, Some(&key));
        assert_eq!(auth_failures().get(), before + 2);
    }
}
