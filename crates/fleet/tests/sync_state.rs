//! The replicated-soft-state wire contract: a captured
//! [`BalancerSoftState`] — cooldown memory, parked lot, audit log,
//! balance gate — survives the checksummed `SyncState` frame
//! byte-for-byte, and anything less than an intact, version-matched
//! frame is rejected before a standby could apply it.

use kairos_fleet::{
    BalanceGate, BalancerSoftState, EvictedTenant, HandoffOutcome, HandoffRecord, ParkedHandoff,
    SYNC_STATE_VERSION,
};
use std::collections::BTreeMap;

/// A deliberately non-trivial state: every field populated, including a
/// gate with pending skips/delays and a parked entry carrying a real
/// wire frame.
fn sample_state() -> BalancerSoftState {
    let mut cooldown = BTreeMap::new();
    cooldown.insert("tenant-a".to_string(), 7u64);
    cooldown.insert("tenant-b".to_string(), 9u64);
    let parked = vec![
        ParkedHandoff {
            donor: 0,
            receiver: 1,
            tenant: EvictedTenant {
                name: "stray".to_string(),
                wire: vec![0xAB; 48],
                source: None,
            },
        },
        ParkedHandoff {
            donor: 2,
            receiver: 0,
            tenant: EvictedTenant {
                name: "limbo".to_string(),
                wire: (0..=255u8).collect(),
                source: None,
            },
        },
    ];
    let handoffs = vec![
        HandoffRecord {
            tenant: "tenant-a".to_string(),
            from: 0,
            to: Some(1),
            tick: 40,
            outcome: HandoffOutcome::Completed,
        },
        HandoffRecord {
            tenant: "tenant-c".to_string(),
            from: 1,
            to: None,
            tick: 44,
            outcome: HandoffOutcome::NoReceiver,
        },
    ];
    let mut gate = BalanceGate::default();
    gate.skip_rounds(2);
    gate.delay_rounds(1);
    BalancerSoftState::capture(11, 44, &cooldown, &parked, &handoffs, gate)
}

#[test]
fn capture_roundtrips_through_the_sync_frame_byte_identical() {
    let state = sample_state();
    let frame = state.to_frame();
    let decoded = BalancerSoftState::from_frame(&frame).expect("intact frame decodes");
    assert_eq!(decoded, state, "every field survives the wire");
    assert_eq!(
        decoded.to_frame(),
        frame,
        "re-encoding is byte-identical — the determinism fingerprint depends on it"
    );
}

#[test]
fn parked_lot_rebuilds_with_wire_frames_and_no_sources() {
    let state = sample_state();
    let lot = state.parked_lot();
    assert_eq!(lot.len(), 2);
    assert_eq!(lot[0].donor, 0);
    assert_eq!(lot[0].receiver, 1);
    assert_eq!(lot[0].tenant.name, "stray");
    assert_eq!(lot[0].tenant.wire, vec![0xAB; 48]);
    assert!(
        lot.iter().all(|p| p.tenant.source.is_none()),
        "live sources never replicate; probe-first resolution re-binds"
    );
    // Capturing the rebuilt lot reproduces the same replicated entries.
    let recaptured = BalancerSoftState::capture(
        state.round,
        state.tick,
        &state.cooldown,
        &lot,
        &state.handoffs,
        state.gate,
    );
    assert_eq!(recaptured, state);
}

#[test]
fn every_single_bit_flip_in_the_frame_is_rejected() {
    let frame = sample_state().to_frame();
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut damaged = frame.clone();
            damaged[byte] ^= 1 << bit;
            assert!(
                BalancerSoftState::from_frame(&damaged).is_err(),
                "flip at byte {byte} bit {bit} decoded — a standby would adopt garbage"
            );
        }
    }
}

#[test]
fn truncated_and_version_skewed_frames_are_rejected() {
    let state = sample_state();
    let frame = state.to_frame();
    for len in 0..frame.len() {
        assert!(
            BalancerSoftState::from_frame(&frame[..len]).is_err(),
            "truncation to {len} bytes decoded"
        );
    }
    let skewed = kairos_store::encode_frame(SYNC_STATE_VERSION + 1, &state);
    assert!(
        BalancerSoftState::from_frame(&skewed).is_err(),
        "a frame from a newer protocol must be rejected, not misread"
    );
}
