//! Objective function and constraint evaluation (§5, Fig 5).
//!
//! `minimize Σ_j signum(used_j) · mean_t e^(load_tj)` where `load_tj` is
//! the weighted, normalized combined utilization of server `j` in window
//! `t`. An empty server contributes zero; any used server contributes at
//! least 1 (since `e^0 = 1`), so with per-server loads normalized to
//! `[0, 1]` a `k−1`-server solution always scores below any `k`-server
//! one, and for fixed `k` the convexity of `e^x` makes the balanced
//! assignment the minimum — exactly the landscape Fig 5 sketches,
//! including the constraint-violation penalty spike.

use crate::problem::{Assignment, ConsolidationProblem, SlotSeries};

/// Per-machine, per-window utilization triple (fractions of capacity).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowLoad {
    pub cpu: f64,
    pub ram: f64,
    pub disk: f64,
}

impl WindowLoad {
    /// Worst single resource.
    pub fn max_resource(&self) -> f64 {
        self.cpu.max(self.ram).max(self.disk)
    }
}

/// Full evaluation of an assignment.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Objective value (penalized if infeasible; includes the migration
    /// term when the problem carries one).
    pub objective: f64,
    pub feasible: bool,
    /// Total constraint excess (0 when feasible).
    pub violation: f64,
    pub machines_used: usize,
    /// Slots moved off the migration baseline (0 without a baseline).
    pub moves_from_baseline: usize,
    /// Per *used* machine: utilization series (windows long).
    pub loads: Vec<(usize, Vec<WindowLoad>)>,
}

/// Scale of the infeasibility penalty — large enough that any feasible
/// solution beats any infeasible one (Fig 5's spike).
const PENALTY: f64 = 1e4;

/// Evaluate `assignment` under `problem`, through the problem's
/// structure-of-arrays slot cache (built on first use; see
/// [`SlotSeries`]). Produces bit-identical results to
/// [`evaluate_reference`] — the cache-coherence property tests assert it.
pub fn evaluate(problem: &ConsolidationProblem, assignment: &Assignment) -> Evaluation {
    let series = problem.slot_series().clone();
    evaluate_with_series(problem, &series, assignment)
}

/// [`evaluate`] against an explicitly supplied slot cache. Exposed so
/// coherence tests can fault-inject a corrupted cache; production callers
/// go through [`evaluate`].
pub fn evaluate_with_series(
    problem: &ConsolidationProblem,
    series: &SlotSeries,
    assignment: &Assignment,
) -> Evaluation {
    let slots = &series.slots;
    assert_eq!(
        slots.len(),
        assignment.machine_of.len(),
        "assignment must cover every placement slot"
    );
    let windows = problem.windows;
    let weights = problem.weights;
    let wsum = weights.total().max(1e-12);
    let cap = problem.machine;
    let headroom = problem.headroom;

    let by_machine = assignment.by_machine();
    let mut violation = 0.0;
    let mut objective = 0.0;
    let mut loads = Vec::with_capacity(by_machine.len());

    // Machine-count constraint.
    for (&m, _) in by_machine.iter() {
        if m >= problem.max_machines {
            violation += 1.0 + (m - problem.max_machines) as f64;
        }
    }

    // Replica anti-affinity: two replicas of one workload cannot share a
    // machine; explicit anti-affinity pairs likewise.
    for (_, slot_ids) in by_machine.iter() {
        violation += colocation_violations(problem, slots, slot_ids);
    }

    // Pinning: every replica of a pinned workload's slots... the paper pins
    // a workload to a node; we interpret it as "replica 0 must sit on the
    // pinned machine".
    for (s, slot) in slots.iter().enumerate() {
        if slot.replica == 0 {
            if let Some(pin) = problem.workloads[slot.workload].pinned {
                if assignment.machine_of[s] != pin {
                    violation += 1.0;
                }
            }
        }
    }

    // Resource constraints + objective, per used machine. Sums run
    // slot-major over the cached series: each window accumulator receives
    // its contributions in the same slot order the reference path uses,
    // so the floating-point results are identical.
    let mut cpu_sum = vec![0.0f64; windows];
    let mut ram_sum = vec![0.0f64; windows];
    let mut ws_sum = vec![0.0f64; windows];
    let mut rate_sum = vec![0.0f64; windows];
    for (&m, slot_ids) in by_machine.iter() {
        cpu_sum.fill(0.0);
        ram_sum.fill(0.0);
        ws_sum.fill(0.0);
        rate_sum.fill(0.0);
        for &s in slot_ids {
            add_series(&mut cpu_sum, series.cpu_of(s));
            add_series(&mut ram_sum, series.ram_of(s));
            add_series(&mut ws_sum, series.ws_of(s));
            add_series(&mut rate_sum, series.rate_of(s));
        }
        let mut window_loads = Vec::with_capacity(windows);
        let mut exp_sum = 0.0;
        for t in 0..windows {
            let load = WindowLoad {
                cpu: cpu_sum[t] / cap.cpu_cores,
                ram: ram_sum[t] / cap.ram_bytes,
                disk: problem.disk.utilization(ws_sum[t], rate_sum[t]),
            };
            for u in [load.cpu, load.ram, load.disk] {
                if u > headroom {
                    violation += u - headroom;
                }
            }
            let norm =
                (weights.cpu * load.cpu + weights.ram * load.ram + weights.disk * load.disk) / wsum;
            exp_sum += norm.clamp(0.0, 1.0).exp();
            window_loads.push(load);
        }
        objective += exp_sum / windows as f64;
        loads.push((m, window_loads));
    }

    // Migration-cost term (§ online re-solve): each slot moved off its
    // baseline machine costs a fixed objective increment, so plans with
    // small placement deltas win among near-equals.
    let moves_from_baseline = problem
        .migration
        .as_ref()
        .map(|m| m.moves(&assignment.machine_of))
        .unwrap_or(0);
    if let Some(m) = &problem.migration {
        objective += m.cost_per_move * moves_from_baseline as f64;
    }

    let feasible = violation == 0.0;
    if !feasible {
        objective += PENALTY * (1.0 + violation);
    }
    Evaluation {
        objective,
        feasible,
        violation,
        machines_used: by_machine.len(),
        moves_from_baseline,
        loads,
    }
}

#[inline]
fn add_series(acc: &mut [f64], src: &[f64]) {
    for (a, &v) in acc.iter_mut().zip(src) {
        *a += v;
    }
}

/// Co-location violations (replica + explicit anti-affinity) among the
/// slots sharing one machine.
fn colocation_violations(
    problem: &ConsolidationProblem,
    slots: &[crate::problem::Slot],
    slot_ids: &[usize],
) -> f64 {
    let mut violation = 0.0;
    for (a_pos, &a) in slot_ids.iter().enumerate() {
        for &b in &slot_ids[a_pos + 1..] {
            let (sa, sb) = (slots[a], slots[b]);
            if sa.workload == sb.workload {
                violation += 1.0;
            }
            if problem.anti_affinity.iter().any(|&(x, y)| {
                (x, y) == (sa.workload, sb.workload) || (y, x) == (sa.workload, sb.workload)
            }) {
                violation += 1.0;
            }
        }
    }
    violation
}

/// The original, cache-free evaluation path: slot list re-expanded and
/// every per-window demand re-derived from the workload specs. Kept as
/// the independent reference the cache-coherence tests compare
/// [`evaluate`] against (bit-for-bit), and as the fallback documentation
/// of the objective's exact arithmetic.
pub fn evaluate_reference(problem: &ConsolidationProblem, assignment: &Assignment) -> Evaluation {
    let slots = problem.slots();
    assert_eq!(
        slots.len(),
        assignment.machine_of.len(),
        "assignment must cover every placement slot"
    );
    let windows = problem.windows;
    let weights = problem.weights;
    let wsum = weights.total().max(1e-12);
    let cap = problem.machine;
    let headroom = problem.headroom;

    let by_machine = assignment.by_machine();
    let mut violation = 0.0;
    let mut objective = 0.0;
    let mut loads = Vec::with_capacity(by_machine.len());

    for (&m, _) in by_machine.iter() {
        if m >= problem.max_machines {
            violation += 1.0 + (m - problem.max_machines) as f64;
        }
    }

    for (_, slot_ids) in by_machine.iter() {
        violation += colocation_violations(problem, &slots, slot_ids);
    }

    for (s, slot) in slots.iter().enumerate() {
        if slot.replica == 0 {
            if let Some(pin) = problem.workloads[slot.workload].pinned {
                if assignment.machine_of[s] != pin {
                    violation += 1.0;
                }
            }
        }
    }

    for (&m, slot_ids) in by_machine.iter() {
        let mut series = Vec::with_capacity(windows);
        let mut exp_sum = 0.0;
        for t in 0..windows {
            let mut cpu = 0.0;
            let mut ram = 0.0;
            let mut ws = 0.0;
            let mut rate = 0.0;
            for &s in slot_ids {
                let w = &problem.workloads[slots[s].workload];
                cpu += w.cpu_at(t);
                ram += w.ram_at(t);
                ws += w.ws_at(t);
                rate += w.rate_at(t);
            }
            let load = WindowLoad {
                cpu: cpu / cap.cpu_cores,
                ram: ram / cap.ram_bytes,
                disk: problem.disk.utilization(ws, rate),
            };
            for u in [load.cpu, load.ram, load.disk] {
                if u > headroom {
                    violation += u - headroom;
                }
            }
            let norm =
                (weights.cpu * load.cpu + weights.ram * load.ram + weights.disk * load.disk) / wsum;
            exp_sum += norm.clamp(0.0, 1.0).exp();
            series.push(load);
        }
        objective += exp_sum / windows as f64;
        loads.push((m, series));
    }

    let moves_from_baseline = problem
        .migration
        .as_ref()
        .map(|m| m.moves(&assignment.machine_of))
        .unwrap_or(0);
    if let Some(m) = &problem.migration {
        objective += m.cost_per_move * moves_from_baseline as f64;
    }

    let feasible = violation == 0.0;
    if !feasible {
        objective += PENALTY * (1.0 + violation);
    }
    Evaluation {
        objective,
        feasible,
        violation,
        machines_used: by_machine.len(),
        moves_from_baseline,
        loads,
    }
}

/// Reusable buffers for [`evaluate_objective`] — the allocation-free
/// scoring path DIRECT's inner loop runs thousands of times per re-solve.
#[derive(Default)]
pub struct EvalScratch {
    /// Per-machine slot lists (capacity retained across calls).
    occupants: Vec<Vec<usize>>,
    cpu: Vec<f64>,
    ram: Vec<f64>,
    ws: Vec<f64>,
    rate: Vec<f64>,
}

/// Objective-only evaluation: the same score [`evaluate`] reports, with
/// zero steady-state allocation. Used by DIRECT's inner loop where the
/// full [`Evaluation`] (per-machine load series, feasibility breakdown)
/// would be discarded anyway. Feasibility decisions (`violation > 0`)
/// agree with [`evaluate`]; the final authority on any returned plan is
/// still a full `evaluate` call.
pub fn evaluate_objective(
    problem: &ConsolidationProblem,
    series: &SlotSeries,
    machine_of: &[usize],
    scratch: &mut EvalScratch,
) -> f64 {
    let slots = &series.slots;
    debug_assert_eq!(slots.len(), machine_of.len());
    let windows = problem.windows;
    let weights = problem.weights;
    let wsum = weights.total().max(1e-12);
    let cap = problem.machine;
    let headroom = problem.headroom;

    let k = machine_of.iter().copied().max().map_or(0, |m| m + 1);
    if scratch.occupants.len() < k {
        scratch.occupants.resize_with(k, Vec::new);
    }
    for occ in scratch.occupants.iter_mut().take(k) {
        occ.clear();
    }
    for (s, &m) in machine_of.iter().enumerate() {
        scratch.occupants[m].push(s);
    }
    if scratch.cpu.len() < windows {
        scratch.cpu.resize(windows, 0.0);
        scratch.ram.resize(windows, 0.0);
        scratch.ws.resize(windows, 0.0);
        scratch.rate.resize(windows, 0.0);
    }

    let mut violation = 0.0;
    let mut objective = 0.0;

    for (m, occ) in scratch.occupants.iter().enumerate().take(k) {
        if occ.is_empty() {
            continue;
        }
        if m >= problem.max_machines {
            violation += 1.0 + (m - problem.max_machines) as f64;
        }
    }
    for occ in scratch.occupants.iter().take(k) {
        if occ.len() > 1 {
            violation += colocation_violations(problem, slots, occ);
        }
    }
    for (s, slot) in slots.iter().enumerate() {
        if slot.replica == 0 {
            if let Some(pin) = problem.workloads[slot.workload].pinned {
                if machine_of[s] != pin {
                    violation += 1.0;
                }
            }
        }
    }

    for m in 0..k {
        // Swap the occupant list out so the accumulators can be borrowed
        // mutably alongside it without re-allocating.
        let occ = std::mem::take(&mut scratch.occupants[m]);
        if occ.is_empty() {
            scratch.occupants[m] = occ;
            continue;
        }
        scratch.cpu[..windows].fill(0.0);
        scratch.ram[..windows].fill(0.0);
        scratch.ws[..windows].fill(0.0);
        scratch.rate[..windows].fill(0.0);
        for &s in &occ {
            add_series(&mut scratch.cpu[..windows], series.cpu_of(s));
            add_series(&mut scratch.ram[..windows], series.ram_of(s));
            add_series(&mut scratch.ws[..windows], series.ws_of(s));
            add_series(&mut scratch.rate[..windows], series.rate_of(s));
        }
        let mut exp_sum = 0.0;
        for t in 0..windows {
            let cpu = scratch.cpu[t] / cap.cpu_cores;
            let ram = scratch.ram[t] / cap.ram_bytes;
            let disk = problem.disk.utilization(scratch.ws[t], scratch.rate[t]);
            for u in [cpu, ram, disk] {
                if u > headroom {
                    violation += u - headroom;
                }
            }
            let norm = (weights.cpu * cpu + weights.ram * ram + weights.disk * disk) / wsum;
            exp_sum += norm.clamp(0.0, 1.0).exp();
        }
        objective += exp_sum / windows as f64;
        scratch.occupants[m] = occ;
    }

    if let Some(mig) = &problem.migration {
        objective += mig.cost_per_move * mig.moves(machine_of) as f64;
    }
    if violation > 0.0 {
        objective += PENALTY * (1.0 + violation);
    }
    objective
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearDiskCombiner, TargetMachine, WorkloadSpec};
    use std::sync::Arc;

    fn problem(n: usize, cpu_each: f64) -> ConsolidationProblem {
        let w = (0..n)
            .map(|i| WorkloadSpec::flat(format!("w{i}"), 3, cpu_each, 1e9, 1e8, 10.0))
            .collect();
        ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        )
    }

    #[test]
    fn fewer_machines_always_score_lower() {
        let p = problem(4, 1.0); // 4 workloads, 1 core each, 12-core target
        let spread = evaluate(&p, &Assignment::new(vec![0, 1, 2, 3]));
        let packed2 = evaluate(&p, &Assignment::new(vec![0, 0, 1, 1]));
        let packed1 = evaluate(&p, &Assignment::new(vec![0, 0, 0, 0]));
        assert!(spread.feasible && packed2.feasible && packed1.feasible);
        assert!(packed1.objective < packed2.objective);
        assert!(packed2.objective < spread.objective);
        assert_eq!(packed1.machines_used, 1);
    }

    #[test]
    fn balanced_beats_unbalanced_at_same_machine_count() {
        // 4 × 2-core workloads on two machines: 2+2 vs 3+1.
        let p = problem(4, 2.0);
        let balanced = evaluate(&p, &Assignment::new(vec![0, 0, 1, 1]));
        let skewed = evaluate(&p, &Assignment::new(vec![0, 0, 0, 1]));
        assert!(balanced.feasible && skewed.feasible);
        assert!(balanced.objective < skewed.objective);
    }

    #[test]
    fn cpu_overcommit_is_penalized() {
        // 3 workloads × 5 cores = 15 > 12×0.95, but a pair (10) fits.
        let p = problem(3, 5.0);
        let packed = evaluate(&p, &Assignment::new(vec![0, 0, 0]));
        assert!(!packed.feasible);
        assert!(packed.violation > 0.0);
        let spread = evaluate(&p, &Assignment::new(vec![0, 0, 1]));
        assert!(spread.feasible);
        assert!(spread.objective < packed.objective);
    }

    #[test]
    fn ram_overcommit_is_penalized() {
        let mut p = problem(2, 0.5);
        for w in &mut p.workloads {
            w.ram = vec![60e9; 3]; // 2 × 60 GB > 96 GB
        }
        let packed = evaluate(&p, &Assignment::new(vec![0, 0]));
        assert!(!packed.feasible);
    }

    #[test]
    fn nonlinear_disk_constraint_uses_combined_demand() {
        struct Saturating;
        impl crate::problem::DiskCombiner for Saturating {
            fn utilization(&self, ws: f64, rate: f64) -> f64 {
                // Saturation rate falls with ws: cap = 1000 - ws/1e7.
                rate / (1000.0 - ws / 1e7).max(1.0)
            }
        }
        let w = vec![
            WorkloadSpec::flat("a", 1, 0.1, 1e9, 4e9, 300.0),
            WorkloadSpec::flat("b", 1, 0.1, 1e9, 4e9, 300.0),
        ];
        let p =
            ConsolidationProblem::new(w, TargetMachine::paper_target(), 2, Arc::new(Saturating));
        // Each alone: util = 300/(1000-400) = 0.5 — fine.
        let spread = evaluate(&p, &Assignment::new(vec![0, 1]));
        assert!(spread.feasible);
        // Combined: 600/(1000-800) = 3.0 — violates despite linear sum
        // (600/1000) looking fine. This is the Kairos point.
        let packed = evaluate(&p, &Assignment::new(vec![0, 0]));
        assert!(!packed.feasible);
    }

    #[test]
    fn replicas_must_not_colocate() {
        let mut p = problem(1, 1.0);
        p.workloads[0].replicas = 2;
        p.max_machines = 2;
        let together = evaluate(&p, &Assignment::new(vec![0, 0]));
        assert!(!together.feasible);
        let apart = evaluate(&p, &Assignment::new(vec![0, 1]));
        assert!(apart.feasible);
    }

    #[test]
    fn pinning_enforced() {
        let mut p = problem(2, 1.0);
        p.workloads[0].pinned = Some(1);
        let wrong = evaluate(&p, &Assignment::new(vec![0, 0]));
        assert!(!wrong.feasible);
        let right = evaluate(&p, &Assignment::new(vec![1, 0]));
        assert!(right.feasible);
    }

    #[test]
    fn anti_affinity_enforced() {
        let p = problem(2, 1.0).with_anti_affinity(vec![(0, 1)]);
        let together = evaluate(&p, &Assignment::new(vec![0, 0]));
        assert!(!together.feasible);
        let apart = evaluate(&p, &Assignment::new(vec![0, 1]));
        assert!(apart.feasible);
    }

    #[test]
    fn machine_index_beyond_max_is_violation() {
        let p = problem(1, 1.0);
        let bad = evaluate(&p, &Assignment::new(vec![99]));
        assert!(!bad.feasible);
    }

    #[test]
    fn any_feasible_beats_any_infeasible() {
        let p = problem(3, 6.0);
        let feasible_spread = evaluate(&p, &Assignment::new(vec![0, 1, 2]));
        let infeasible_packed = evaluate(&p, &Assignment::new(vec![0, 0, 0]));
        assert!(feasible_spread.objective < infeasible_packed.objective);
    }

    #[test]
    fn migration_term_counts_and_prices_moves() {
        let p = problem(4, 1.0).with_migration(vec![Some(0), Some(0), Some(1), Some(1)], 0.25);
        let stay = evaluate(&p, &Assignment::new(vec![0, 0, 1, 1]));
        assert_eq!(stay.moves_from_baseline, 0);
        let two_moves = evaluate(&p, &Assignment::new(vec![1, 0, 0, 1]));
        assert_eq!(two_moves.moves_from_baseline, 2);
        // Same machine count and mirrored shape: the only objective
        // difference is the migration term.
        assert!(
            (two_moves.objective - stay.objective - 0.5).abs() < 1e-9,
            "expected exactly 2 × 0.25 migration cost, got {}",
            two_moves.objective - stay.objective
        );
    }

    #[test]
    fn new_slots_are_free_to_place() {
        // Baseline covers only the first two slots; the rest are new.
        let p = problem(4, 1.0).with_migration(vec![Some(0), Some(0)], 0.25);
        let eval = evaluate(&p, &Assignment::new(vec![0, 0, 1, 2]));
        assert_eq!(eval.moves_from_baseline, 0);
    }

    #[test]
    fn cached_evaluate_matches_reference_bit_for_bit() {
        let mut p = problem(5, 2.3).with_anti_affinity(vec![(0, 3)]);
        p.workloads[1].replicas = 2;
        p.workloads[4].pinned = Some(1);
        let p = p.with_migration(
            vec![Some(0), Some(1), None, Some(0), Some(2), Some(1)],
            0.25,
        );
        for a in [
            Assignment::new(vec![0, 1, 2, 0, 1, 1]),
            Assignment::new(vec![0, 0, 0, 0, 0, 0]),
            Assignment::new(vec![3, 2, 1, 0, 4, 1]),
        ] {
            let cached = evaluate(&p, &a);
            let reference = evaluate_reference(&p, &a);
            assert_eq!(cached.objective.to_bits(), reference.objective.to_bits());
            assert_eq!(cached.violation.to_bits(), reference.violation.to_bits());
            assert_eq!(cached.feasible, reference.feasible);
            assert_eq!(cached.machines_used, reference.machines_used);
            assert_eq!(cached.moves_from_baseline, reference.moves_from_baseline);
            assert_eq!(cached.loads, reference.loads);
        }
    }

    #[test]
    fn lean_scorer_matches_full_evaluation() {
        let mut p = problem(6, 1.7).with_anti_affinity(vec![(1, 2)]);
        p.workloads[0].replicas = 2;
        let p = p.with_migration(
            vec![Some(0), None, Some(1), Some(1), Some(2), None, Some(3)],
            0.1,
        );
        let series = p.slot_series().clone();
        let mut scratch = EvalScratch::default();
        for a in [
            vec![0, 1, 2, 3, 4, 5, 0],
            vec![0, 0, 0, 0, 0, 0, 0],
            vec![2, 1, 2, 1, 2, 1, 2],
        ] {
            let full = evaluate(&p, &Assignment::new(a.clone()));
            let lean = evaluate_objective(&p, &series, &a, &mut scratch);
            assert!(
                (full.objective - lean).abs() < 1e-9,
                "full {} vs lean {lean}",
                full.objective
            );
        }
    }

    #[test]
    fn migration_cost_never_outweighs_a_machine() {
        // Consolidating 4 → 1 machines must stay worthwhile even when all
        // four slots migrate at the default-scale cost.
        let p = problem(4, 1.0).with_migration(vec![Some(0), Some(1), Some(2), Some(3)], 0.1);
        let stay_spread = evaluate(&p, &Assignment::new(vec![0, 1, 2, 3]));
        let pack_all = evaluate(&p, &Assignment::new(vec![0, 0, 0, 0]));
        assert_eq!(pack_all.moves_from_baseline, 3);
        assert!(pack_all.objective < stay_spread.objective);
    }
}
