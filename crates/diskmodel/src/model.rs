//! The fitted disk model (§4.1, Fig 4).
//!
//! Two fitted surfaces over the profiled data:
//!
//! * the **response map** — LAR second-order polynomial
//!   `write_bytes/s = f(working_set, rows_updated/s)` over the
//!   non-saturated points (the Fig 4 contours);
//! * the **saturation frontier** — quadratic
//!   `max_rows/s = g(working_set)` through the per-working-set maxima
//!   (the Fig 4 dashed line).
//!
//! The central combination property (§4.1, validated in §7.5): running
//! multiple databases with aggregate working set `X` at aggregate update
//! rate `Y` produces the same disk I/O as one workload `(X, Y)` — so
//! predicting a consolidated mix is one [`DiskModel::predict_write_bytes`]
//! call on the summed [`DiskDemand`].

use crate::poly::{Poly2D, Quadratic};
use crate::profiler::DiskProfile;
use kairos_types::{Bytes, DiskDemand, KairosError, Result};

/// A hardware/DBMS-configuration-specific disk model.
#[derive(Debug, Clone)]
pub struct DiskModel {
    machine: String,
    response: Poly2D,
    frontier: Quadratic,
    /// Calibrated domain (for out-of-domain warnings).
    ws_max: f64,
    rate_max: f64,
    /// Largest write throughput seen during profiling.
    peak_write_bytes: f64,
}

impl DiskModel {
    /// Fit from a profile. Needs at least 6 non-saturated points (the
    /// polynomial has 6 coefficients) spanning ≥ 2 working-set sizes.
    pub fn fit(profile: &DiskProfile) -> Result<DiskModel> {
        let usable: Vec<(f64, f64, f64)> = profile
            .points
            .iter()
            .filter(|p| !p.saturated())
            .map(|p| (p.ws_bytes, p.rows_per_sec, p.write_bytes_per_sec))
            .collect();
        if usable.len() < 8 {
            return Err(KairosError::InvalidInput(format!(
                "only {} non-saturated points; profile a finer grid",
                usable.len()
            )));
        }
        let response = Poly2D::fit_lar(&usable)?;
        let sat = profile.saturation_points();
        if sat.len() < 3 {
            return Err(KairosError::InvalidInput(
                "need ≥3 working-set sizes for the saturation frontier".into(),
            ));
        }
        // Grid-capped columns (no saturated point at that working set)
        // report the sweep's ceiling, not the true frontier; fitting
        // through them flattens the dashed line. Prefer genuinely
        // saturated columns when enough exist.
        let truly_saturated: Vec<(f64, f64)> = sat
            .iter()
            .filter(|(ws, _)| {
                profile
                    .points
                    .iter()
                    .any(|p| (p.ws_bytes - ws).abs() < 1.0 && p.saturated())
            })
            .copied()
            .collect();
        let frontier = if truly_saturated.len() >= 3 {
            Quadratic::fit(&truly_saturated)?
        } else {
            Quadratic::fit(&sat)?
        };
        let ws_max = profile
            .points
            .iter()
            .map(|p| p.ws_bytes)
            .fold(0.0, f64::max);
        let rate_max = profile
            .points
            .iter()
            .map(|p| p.rows_per_sec)
            .fold(0.0, f64::max);
        let peak_write_bytes = profile
            .points
            .iter()
            .map(|p| p.write_bytes_per_sec)
            .fold(0.0, f64::max);
        Ok(DiskModel {
            machine: profile.machine.clone(),
            response,
            frontier,
            ws_max,
            rate_max,
            peak_write_bytes,
        })
    }

    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Predicted disk write throughput (bytes/s) for a combined demand.
    /// Clamped to `[0, peak]` — the fit is only trusted inside the
    /// profiled envelope, and §4.1 notes only the high-load region needs
    /// precision.
    pub fn predict_write_bytes(&self, demand: DiskDemand) -> f64 {
        let v = self.response.eval(
            demand.working_set.as_f64(),
            demand.update_rows_per_sec.as_f64(),
        );
        v.clamp(0.0, self.peak_write_bytes * 1.25)
    }

    /// Maximum sustainable row-update rate for a working set (the dashed
    /// Fig 4 curve). Clamped to the profiled rate envelope so quadratic
    /// extrapolation cannot invent capacity.
    pub fn saturation_rate(&self, working_set: Bytes) -> f64 {
        self.frontier
            .eval(working_set.as_f64())
            .clamp(0.0, self.rate_max * 1.2)
    }

    /// Can this demand run within `max_util` (e.g. 0.9 for 10 % headroom)
    /// of the disk's saturation frontier?
    pub fn is_feasible(&self, demand: DiskDemand, max_util: f64) -> bool {
        let cap = self.saturation_rate(demand.working_set) * max_util;
        demand.update_rows_per_sec.as_f64() <= cap
    }

    /// Disk "utilization" of a demand: offered rate over the saturation
    /// rate at that working set. >1 = infeasible.
    pub fn utilization(&self, demand: DiskDemand) -> f64 {
        let cap = self.saturation_rate(demand.working_set);
        if cap <= 0.0 {
            return f64::INFINITY;
        }
        demand.update_rows_per_sec.as_f64() / cap
    }

    /// Whether a demand lies inside the calibrated envelope.
    pub fn in_domain(&self, demand: DiskDemand) -> bool {
        demand.working_set.as_f64() <= self.ws_max * 1.05
            && demand.update_rows_per_sec.as_f64() <= self.rate_max * 1.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::DiskPoint;
    use kairos_types::Rate;

    /// A synthetic profile with the Fig 4 shape: writes grow sub-linearly
    /// in rate, grow with working set, saturation rate falls with ws.
    fn synthetic_profile() -> DiskProfile {
        let mut points = Vec::new();
        for i in 1..=6 {
            let ws = i as f64 * 0.5e9;
            let sat_rate = 50_000.0 - ws * 6e-6; // falls with ws
            for j in 1..=10 {
                let rate = j as f64 * 5_000.0;
                let achieved = if rate <= sat_rate {
                    1.0
                } else {
                    sat_rate / rate
                };
                let eff_rate = rate.min(sat_rate);
                // log + coalesced page writes (concave in rate, grows with ws).
                let writes = 240.0 * eff_rate
                    + 16384.0
                        * (ws / 16384.0)
                        * (1.0 - (-eff_rate * 16384.0 / ws * 0.002).exp())
                        * 0.08;
                points.push(DiskPoint {
                    ws_bytes: ws,
                    rows_per_sec: eff_rate,
                    write_bytes_per_sec: writes,
                    achieved_fraction: achieved,
                });
            }
        }
        DiskProfile {
            machine: "synthetic".into(),
            points,
        }
    }

    #[test]
    fn fit_and_predict_interpolates() {
        let profile = synthetic_profile();
        let model = DiskModel::fit(&profile).unwrap();
        // Compare prediction against the generator at an off-grid point.
        let demand = DiskDemand::new(Bytes((1.25e9) as u64), Rate(12_500.0));
        let predicted = model.predict_write_bytes(demand);
        assert!(predicted > 0.0);
        // Must be within 30% of neighbours' range (coarse interpolation
        // sanity; the LAR polynomial is smooth).
        let lo = 240.0 * 12_500.0 * 0.5;
        let hi = 240.0 * 12_500.0 * 2.0;
        assert!((lo..hi).contains(&predicted), "predicted {predicted}");
    }

    #[test]
    fn prediction_monotone_in_rate() {
        let model = DiskModel::fit(&synthetic_profile()).unwrap();
        let ws = Bytes((1e9) as u64);
        let low = model.predict_write_bytes(DiskDemand::new(ws, Rate(5_000.0)));
        let high = model.predict_write_bytes(DiskDemand::new(ws, Rate(25_000.0)));
        assert!(high > low);
    }

    #[test]
    fn saturation_rate_falls_with_working_set() {
        let model = DiskModel::fit(&synthetic_profile()).unwrap();
        let small = model.saturation_rate(Bytes((0.5e9) as u64));
        let large = model.saturation_rate(Bytes((3.0e9) as u64));
        assert!(
            small > large,
            "bigger working sets must saturate earlier: {small} vs {large}"
        );
    }

    #[test]
    fn feasibility_respects_headroom() {
        let model = DiskModel::fit(&synthetic_profile()).unwrap();
        let ws = Bytes((1e9) as u64);
        let sat = model.saturation_rate(ws);
        assert!(model.is_feasible(DiskDemand::new(ws, Rate(sat * 0.5)), 0.9));
        assert!(!model.is_feasible(DiskDemand::new(ws, Rate(sat * 0.95)), 0.9));
        assert!(!model.is_feasible(DiskDemand::new(ws, Rate(sat * 2.0)), 0.9));
    }

    #[test]
    fn utilization_scales_linearly() {
        let model = DiskModel::fit(&synthetic_profile()).unwrap();
        let ws = Bytes((1e9) as u64);
        let sat = model.saturation_rate(ws);
        let u_half = model.utilization(DiskDemand::new(ws, Rate(sat * 0.5)));
        assert!((u_half - 0.5).abs() < 0.01);
    }

    #[test]
    fn combination_property_holds_by_construction() {
        // Two workloads (X1,Y1), (X2,Y2) predict as one (X1+X2, Y1+Y2).
        let model = DiskModel::fit(&synthetic_profile()).unwrap();
        let a = DiskDemand::new(Bytes((0.6e9) as u64), Rate(4_000.0));
        let b = DiskDemand::new(Bytes((0.9e9) as u64), Rate(6_000.0));
        let combined = a.combine(b);
        assert_eq!(combined.working_set, Bytes((1.5e9) as u64));
        let p = model.predict_write_bytes(combined);
        // The combined prediction is NOT the sum of individual predictions
        // (that is the whole point): coalescing makes it smaller than the
        // naive sum at equal working sets, but here it mainly must be a
        // single-surface lookup, i.e. finite and in range.
        assert!(p > 0.0 && p.is_finite());
    }

    #[test]
    fn too_few_points_is_an_error() {
        let profile = DiskProfile {
            machine: "tiny".into(),
            points: vec![
                DiskPoint {
                    ws_bytes: 1e9,
                    rows_per_sec: 100.0,
                    write_bytes_per_sec: 1e5,
                    achieved_fraction: 1.0,
                };
                4
            ],
        };
        assert!(DiskModel::fit(&profile).is_err());
    }

    #[test]
    fn domain_check() {
        let model = DiskModel::fit(&synthetic_profile()).unwrap();
        assert!(model.in_domain(DiskDemand::new(Bytes((1e9) as u64), Rate(10_000.0))));
        assert!(!model.in_domain(DiskDemand::new(Bytes((30e9) as u64), Rate(10_000.0))));
    }
}
