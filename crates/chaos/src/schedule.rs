//! The fault-schedule grammar, its seeded generator, and the shrinker.
//!
//! A schedule is declarative data: *at tick T, do this to the fleet*.
//! The driver ([`crate::driver`]) interprets it against a real RPC
//! fleet; nothing in here touches a socket. That split is what makes a
//! failing run reproducible (rerun the same [`Schedule`]) and
//! shrinkable (delete faults one at a time and rerun).
//!
//! The generator derives a schedule from one `u64` seed through
//! [`SplitMix64`] — the whole sweep is a seed range. Structural
//! constraints are enforced at generation time so every generated
//! schedule is *recoverable by construction*:
//!
//! * a crash is only scheduled after the first checkpoint cadence has
//!   passed, and its restore lands 3–10 ticks later;
//! * at most one outstanding crash or partition per shard, and never
//!   all shards dark at once (the fleet must always have ground truth
//!   left to recover from);
//! * everything is healed/restored by the end of the fault window — the
//!   settle phase starts from a fully reachable fleet, which is what
//!   lets the invariant suite demand full convergence.

use kairos_types::SplitMix64;

/// One fault the driver can apply at a tick. Shards are indices into
/// the fleet (the driver maps them to live endpoints, which change
/// across crash/restore generations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosFault {
    /// Partition the shard's endpoint: every RPC fails until healed.
    /// The node itself keeps its state — this is a network fault.
    Partition { shard: usize },
    /// Heal the shard's endpoint. Per the [`kairos_net::FaultPlan`]
    /// precedence, healing *cancels* any pending one-shot faults on the
    /// endpoint. If the lease already expired, the driver rejoins the
    /// shard at its existing endpoint (the operator's recovery step).
    Heal { shard: usize },
    /// Kill the shard's process: stop serving, lose all in-memory
    /// state. Recovery is [`ChaosFault::Restore`] from the last
    /// checkpoint the driver took.
    Crash { shard: usize },
    /// Restore a crashed shard from its last checkpoint on a fresh
    /// endpoint, re-park reconstructed telemetry sources, and rejoin.
    Restore { shard: usize },
    /// Drop the next `n` RPCs to the shard (the calls fail, the peer
    /// never sees them). Kept below the lease limit by the generator so
    /// a drop alone cannot expire a lease.
    DropCalls { shard: usize, n: u64 },
    /// Corrupt the next Admit frame reaching the shard (one bit flip;
    /// the node rejects it with zero state change).
    CorruptAdmit { shard: usize },
    /// Corrupt the next Evict response from the shard.
    CorruptEvict { shard: usize },
    /// Corrupt the next Owns probe answered by the shard — the
    /// probe-first rollback path sees `None` and must park, not guess.
    CorruptOwns { shard: usize },
    /// Drop the next `n` due balance rounds outright (the rounds never
    /// run; moves are simply lost, not deferred).
    SkipRound { n: u64 },
    /// Run each of the next `n` due balance rounds one tick late.
    DelayRound { n: u64 },
}

/// A fault pinned to the fleet tick it fires at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    pub tick: u64,
    pub fault: ChaosFault,
}

/// A complete, self-describing chaos run: the seed it came from and
/// the tick-ordered fault list. `seed` also seeds the transport's
/// corruption bit-flips, so a schedule reruns byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    pub seed: u64,
    pub faults: Vec<ScheduledFault>,
}

impl Schedule {
    /// A fault-free schedule — the baseline the invariant suite must
    /// hold on before chaos means anything.
    pub fn quiet(seed: u64) -> Schedule {
        Schedule {
            seed,
            faults: Vec::new(),
        }
    }

    /// Human-readable one-fault-per-line rendering — what a failing
    /// sweep prints next to the seed so the run can be reproduced.
    pub fn render(&self) -> String {
        let mut out = format!(
            "schedule seed=0x{:016x} ({} faults)\n",
            self.seed,
            self.faults.len()
        );
        for f in &self.faults {
            out.push_str(&format!("  t={:<4} {:?}\n", f.tick, f.fault));
        }
        out
    }
}

/// Knobs the generator needs from the driver's world: where the fault
/// window sits and what it may not break permanently.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorBounds {
    /// First tick faults may fire at (the driver's warmup is over and
    /// the first checkpoint exists).
    pub window_start: u64,
    /// One past the last tick faults may fire at. Crash restores are
    /// clamped to land before this.
    pub window_end: u64,
    /// Shards in the fleet.
    pub shards: usize,
    /// The lease miss limit — `DropCalls` bursts stay strictly below it.
    pub miss_limit: u64,
}

/// Derive a schedule from a seed. Deterministic: same seed + bounds →
/// same schedule, always.
pub fn generate(seed: u64, bounds: &GeneratorBounds) -> Schedule {
    let mut rng = SplitMix64::new(seed);
    let span = bounds.window_end.saturating_sub(bounds.window_start).max(1);
    let count = 2 + rng.next_range(6); // 2..=7 primary faults
    let mut faults: Vec<ScheduledFault> = Vec::new();
    // Dark intervals per shard: [start, end) where the shard is
    // unreachable (partitioned-until-heal or crashed-until-restore).
    let mut dark: Vec<Vec<(u64, u64)>> = vec![Vec::new(); bounds.shards];

    let dark_at = |dark: &[Vec<(u64, u64)>], t: u64| -> usize {
        dark.iter()
            .filter(|iv| iv.iter().any(|&(a, b)| a <= t && t < b))
            .count()
    };

    for _ in 0..count {
        let tick = bounds.window_start + rng.next_range(span);
        let shard = rng.next_range(bounds.shards as u64) as usize;
        match rng.next_range(7) {
            0 | 1 => {
                // Partition + paired heal, 1..=6 ticks later (clamped
                // into the window so the settle phase starts healed).
                let heal = (tick + 1 + rng.next_range(6)).min(bounds.window_end - 1);
                let blocked = (tick..heal.max(tick + 1))
                    .any(|t| dark_at(&dark, t) + 1 >= bounds.shards)
                    || dark[shard].iter().any(|&(a, b)| tick < b && a < heal);
                if blocked {
                    continue;
                }
                dark[shard].push((tick, heal));
                faults.push(ScheduledFault {
                    tick,
                    fault: ChaosFault::Partition { shard },
                });
                faults.push(ScheduledFault {
                    tick: heal,
                    fault: ChaosFault::Heal { shard },
                });
            }
            2 => {
                // Crash + paired restore, 3..=10 ticks later.
                let restore = (tick + 3 + rng.next_range(8)).min(bounds.window_end - 1);
                if restore <= tick {
                    continue;
                }
                let blocked = (tick..restore).any(|t| dark_at(&dark, t) + 1 >= bounds.shards)
                    || dark[shard].iter().any(|&(a, b)| tick < b && a < restore);
                if blocked {
                    continue;
                }
                dark[shard].push((tick, restore));
                faults.push(ScheduledFault {
                    tick,
                    fault: ChaosFault::Crash { shard },
                });
                faults.push(ScheduledFault {
                    tick: restore,
                    fault: ChaosFault::Restore { shard },
                });
            }
            3 => {
                let n = 1 + rng.next_range(bounds.miss_limit.saturating_sub(1).max(1));
                faults.push(ScheduledFault {
                    tick,
                    fault: ChaosFault::DropCalls {
                        shard,
                        n: n.min(bounds.miss_limit - 1).max(1),
                    },
                });
            }
            4 => {
                let fault = match rng.next_range(3) {
                    0 => ChaosFault::CorruptAdmit { shard },
                    1 => ChaosFault::CorruptEvict { shard },
                    _ => ChaosFault::CorruptOwns { shard },
                };
                faults.push(ScheduledFault { tick, fault });
            }
            5 => faults.push(ScheduledFault {
                tick,
                fault: ChaosFault::SkipRound {
                    n: 1 + rng.next_range(2),
                },
            }),
            _ => faults.push(ScheduledFault {
                tick,
                fault: ChaosFault::DelayRound {
                    n: 1 + rng.next_range(2),
                },
            }),
        }
    }

    // Stable order: by tick, then by insertion (sort_by_key is stable).
    faults.sort_by_key(|f| f.tick);
    Schedule { seed, faults }
}

/// Greedy delta-debugging shrink: repeatedly delete single faults
/// (keeping the schedule otherwise intact) while `still_fails` holds,
/// to a fixpoint. The result is 1-minimal: removing any one remaining
/// fault makes the failure disappear.
///
/// Removing a `Partition`/`Crash` whose paired `Heal`/`Restore` stays
/// behind is safe — heals are idempotent no-ops on a healthy endpoint,
/// and the driver refuses to restore a shard that never crashed.
pub fn shrink(schedule: &Schedule, mut still_fails: impl FnMut(&Schedule) -> bool) -> Schedule {
    let mut current = schedule.clone();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < current.faults.len() {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                // Same index now holds the next fault; don't advance.
            } else {
                i += 1;
            }
        }
        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> GeneratorBounds {
        GeneratorBounds {
            window_start: 12,
            window_end: 60,
            shards: 3,
            miss_limit: 3,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let b = bounds();
        assert_eq!(generate(42, &b), generate(42, &b));
        assert_ne!(generate(42, &b).faults, generate(43, &b).faults);
    }

    #[test]
    fn generated_schedules_respect_structural_constraints() {
        let b = bounds();
        for seed in 0..200u64 {
            let s = generate(seed, &b);
            let mut last = 0;
            let mut crashed: Vec<bool> = vec![false; b.shards];
            let mut dark = 0usize;
            for f in &s.faults {
                assert!(f.tick >= b.window_start, "seed {seed}: fault before window");
                assert!(f.tick < b.window_end, "seed {seed}: fault after window");
                assert!(f.tick >= last, "seed {seed}: unsorted");
                last = f.tick;
                match f.fault {
                    ChaosFault::Crash { shard } => {
                        assert!(!crashed[shard], "seed {seed}: double crash");
                        crashed[shard] = true;
                        dark += 1;
                        assert!(dark < b.shards, "seed {seed}: all shards dark");
                    }
                    ChaosFault::Restore { shard } => {
                        assert!(crashed[shard], "seed {seed}: restore without crash");
                        crashed[shard] = false;
                        dark -= 1;
                    }
                    ChaosFault::DropCalls { n, .. } => {
                        assert!(
                            n < b.miss_limit,
                            "seed {seed}: drop burst could expire a lease"
                        );
                    }
                    _ => {}
                }
            }
            assert!(
                crashed.iter().all(|&c| !c),
                "seed {seed}: crash left unrestored"
            );
        }
    }

    #[test]
    fn every_crash_has_a_later_restore_for_the_same_shard() {
        let b = bounds();
        for seed in 0..200u64 {
            let s = generate(seed, &b);
            for (i, f) in s.faults.iter().enumerate() {
                if let ChaosFault::Crash { shard } = f.fault {
                    assert!(
                        s.faults[i..]
                            .iter()
                            .any(|g| g.tick > f.tick && g.fault == (ChaosFault::Restore { shard })),
                        "seed {seed}: crash of shard {shard} never restored"
                    );
                }
            }
        }
    }

    #[test]
    fn shrink_reaches_a_one_minimal_failing_schedule() {
        let b = GeneratorBounds {
            window_start: 0,
            window_end: 1000,
            shards: 3,
            miss_limit: 3,
        };
        // Synthetic failure: the run "fails" iff the schedule contains a
        // SkipRound AND a CorruptAdmit — a two-fault interaction, the
        // shape shrinking exists for.
        let mut big = generate(7, &b);
        big.faults.push(ScheduledFault {
            tick: 500,
            fault: ChaosFault::SkipRound { n: 1 },
        });
        big.faults.push(ScheduledFault {
            tick: 501,
            fault: ChaosFault::CorruptAdmit { shard: 0 },
        });
        big.faults.sort_by_key(|f| f.tick);
        let fails = |s: &Schedule| {
            s.faults
                .iter()
                .any(|f| matches!(f.fault, ChaosFault::SkipRound { .. }))
                && s.faults
                    .iter()
                    .any(|f| matches!(f.fault, ChaosFault::CorruptAdmit { .. }))
        };
        let minimal = shrink(&big, fails);
        assert_eq!(minimal.faults.len(), 2, "exactly the interacting pair");
        assert!(fails(&minimal));
        assert_eq!(minimal.seed, big.seed, "seed survives shrinking");
    }

    #[test]
    fn render_names_the_seed_and_every_fault() {
        let s = Schedule {
            seed: 0xBEEF,
            faults: vec![ScheduledFault {
                tick: 9,
                fault: ChaosFault::Partition { shard: 1 },
            }],
        };
        let text = s.render();
        assert!(text.contains("0x000000000000beef"));
        assert!(text.contains("t=9"));
        assert!(text.contains("Partition"));
    }
}
