//! End-to-end gauging against the real simulator — the §3.1 experiment:
//! TPC-C in a 953 MB buffer pool, probe table growing until physical reads
//! rise, recovering the ~125 MB/warehouse working set.

use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos_monitor::{BufferGauge, GaugeParams, SimGaugeEnv};
use kairos_types::{Bytes, MachineSpec};
use kairos_workloads::{Driver, TpccWorkload, Workload};

fn gauge_tpcc(warehouses: u32, tps: f64) -> (Bytes, Bytes) {
    let mut host = Host::new(MachineSpec::server1());
    host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(953))));
    let mut driver = Driver::new();
    let workload = TpccWorkload::new(warehouses, tps);
    let expected_ws = workload.working_set();
    driver.bind(&mut host, 0, Box::new(workload));
    let db = driver.bindings()[0].handle.db;

    // Let the system settle.
    driver.warmup(&mut host, 10.0);

    let mut env = SimGaugeEnv::new(&mut host, &mut driver, 0, db);
    let params = GaugeParams {
        initial_step_pages: 256,
        max_step_pages: 4096,
        read_wait_secs: 1.0,
        window_secs: 5.0,
        ..Default::default()
    };
    let outcome = BufferGauge::new(params).run(&mut env);
    (outcome.working_set, expected_ws)
}

#[test]
fn gauging_recovers_tpcc_working_set() {
    // 5 warehouses => ~625 MB working set in a 953 MB pool: the paper's
    // Fig 2 setup, where 30–40% of the pool is stealable.
    let (estimated, expected) = gauge_tpcc(5, 100.0);
    let ratio = estimated.as_f64() / expected.as_f64();
    assert!(
        (0.85..=1.30).contains(&ratio),
        "estimated {estimated} vs expected {expected} (ratio {ratio:.2})"
    );
}

#[test]
fn gauging_small_working_set_steals_most_of_pool() {
    // 1 warehouse => ~125 MB working set: ~85% of the pool is stealable.
    let (estimated, expected) = gauge_tpcc(1, 50.0);
    assert!(
        estimated.as_f64() <= expected.as_f64() * 2.5,
        "estimated {estimated} should be near {expected}"
    );
    // OS view would have claimed the whole pool: gauging must do far
    // better (the paper reports 2.8x reduction for TPC-C).
    assert!(
        estimated.as_f64() < Bytes::mib(953).as_f64() / 2.0,
        "gauging should at least halve the RAM claim, got {estimated}"
    );
}
