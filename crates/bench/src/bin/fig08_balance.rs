//! Figure 8 — aggregate CPU load over time on the consolidated servers of
//! the ALL dataset: mean, 5th and 95th percentile of per-server CPU
//! utilization per time window.
//!
//! Expected shape: the three curves track each other closely (good
//! balance) and the 95th percentile stays well below saturation.

use kairos_bench::{fleet_engine, last_day_profiles, print_table, section};
use kairos_traces::{generate_all, FleetConfig};
use kairos_types::series::percentile_of_sorted;

fn main() {
    let fleet = generate_all(&FleetConfig {
        weeks: 1,
        ..Default::default()
    });
    let profiles = last_day_profiles(&fleet);
    section(&format!(
        "Figure 8: consolidating ALL ({} workloads)",
        profiles.len()
    ));
    let engine = fleet_engine();
    let plan = engine.consolidate(&profiles).expect("feasible plan");
    let loads = &plan.report.evaluation.loads;
    println!(
        "  {} workloads on {} servers (feasible: {})",
        profiles.len(),
        plan.machines_used(),
        plan.report.evaluation.feasible
    );

    let windows = loads.first().map(|(_, s)| s.len()).unwrap_or(0);
    section("hour of day vs CPU utilization (%) across consolidated servers");
    let mut rows = Vec::new();
    let per_hour = (windows / 24).max(1);
    for h in 0..24 {
        // Collect all server utilizations within the hour.
        let mut vals: Vec<f64> = Vec::new();
        for t in h * per_hour..((h + 1) * per_hour).min(windows) {
            for (_, series) in loads {
                vals.push(series[t].cpu * 100.0);
            }
        }
        if vals.is_empty() {
            continue;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        rows.push(vec![
            format!("{h:02}:00"),
            format!("{:.1}", mean),
            format!("{:.1}", percentile_of_sorted(&vals, 5.0)),
            format!("{:.1}", percentile_of_sorted(&vals, 95.0)),
        ]);
    }
    print_table(&["hour", "avg cpu %", "5th pct", "95th pct"], &rows);

    // Balance headline: spread between p95 and average.
    let all_cpu: Vec<f64> = loads
        .iter()
        .flat_map(|(_, s)| s.iter().map(|w| w.cpu * 100.0))
        .collect();
    let mut sorted = all_cpu.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
    println!(
        "\noverall: mean {:.1}%, p95 {:.1}%, max {:.1}% (of per-server capacity)",
        all_cpu.iter().sum::<f64>() / all_cpu.len() as f64,
        percentile_of_sorted(&sorted, 95.0),
        sorted.last().copied().unwrap_or(0.0)
    );
    println!("95th percentile far from 100% => low saturation risk (paper's reading)");
}
