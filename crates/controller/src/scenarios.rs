//! Deterministic drift scenarios shared by the example, the integration
//! tests and the `controller_loop` bench.
//!
//! Each scenario is a fleet of [`SyntheticSource`]s — analytic telemetry
//! generators built on the workload crate's [`RatePattern`] schedules —
//! plus optional membership events. A [`run_scenario`] call drives a
//! [`Controller`] through the whole thing and reports what happened:
//! re-solve count, per-re-solve churn, migration traffic, loop latency.

use crate::controller::{Controller, ControllerConfig, TickOutcome};
use crate::ingest::TelemetrySource;
use kairos_core::ConsolidationEngine;
use kairos_monitor::MonitorSample;
use kairos_types::{Bytes, SplitMix64};
use kairos_workloads::RatePattern;
use std::time::Instant;

/// CPU cores consumed per offered transaction/second (calibrated so a
/// few-hundred-TPS tenant uses a few standardized cores).
const CPU_PER_TPS: f64 = 0.01;
/// Rows updated per transaction.
const ROWS_PER_TXN: f64 = 2.0;

/// An analytic telemetry source: a [`RatePattern`] schedule rendered into
/// [`MonitorSample`]s with deterministic multiplicative noise.
pub struct SyntheticSource {
    name: String,
    interval_secs: f64,
    tick: u64,
    /// Piecewise schedule: the pattern starting at each tick (sorted).
    schedule: Vec<(u64, RatePattern)>,
    ram: Bytes,
    noise_frac: f64,
    rng: SplitMix64,
}

impl SyntheticSource {
    pub fn new(
        name: impl Into<String>,
        interval_secs: f64,
        ram: Bytes,
        pattern: RatePattern,
    ) -> SyntheticSource {
        let name = name.into();
        let seed = name.bytes().fold(0x5EED_u64, |a, b| {
            a.wrapping_mul(131).wrapping_add(b as u64)
        });
        SyntheticSource {
            name,
            interval_secs,
            tick: 0,
            schedule: vec![(0, pattern)],
            ram,
            noise_frac: 0.02,
            rng: SplitMix64::new(seed),
        }
    }

    /// Switch to `pattern` from `at_tick` on (drift injection).
    pub fn then_at(mut self, at_tick: u64, pattern: RatePattern) -> SyntheticSource {
        assert!(
            self.schedule.last().is_none_or(|&(t, _)| t < at_tick),
            "schedule must be in increasing tick order"
        );
        self.schedule.push((at_tick, pattern));
        self
    }

    pub fn with_noise(mut self, frac: f64) -> SyntheticSource {
        self.noise_frac = frac;
        self
    }

    /// Advance the generator by `polls` intervals, discarding the
    /// samples. Telemetry sources are the one piece of controller state a
    /// checkpoint cannot carry (they are live processes, not data); a
    /// resumed harness re-creates each synthetic source and fast-forwards
    /// it to the checkpoint tick, after which it emits the exact sample
    /// stream the crashed process would have seen.
    pub fn fast_forward(mut self, polls: u64) -> SyntheticSource {
        use crate::ingest::TelemetrySource as _;
        for _ in 0..polls {
            let _ = self.poll();
        }
        self
    }

    fn pattern_now(&self) -> &RatePattern {
        self.schedule
            .iter()
            .rev()
            .find(|&&(t, _)| t <= self.tick)
            .map(|(_, p)| p)
            .expect("schedule starts at tick 0")
    }
}

impl TelemetrySource for SyntheticSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self) -> MonitorSample {
        let now_secs = self.tick as f64 * self.interval_secs;
        let tps = self.pattern_now().rate_at(now_secs);
        self.tick += 1;
        let noise = 1.0 + self.noise_frac * (self.rng.next_f64() * 2.0 - 1.0);
        let tps = (tps * noise).max(0.0);
        let rows = tps * ROWS_PER_TXN;
        MonitorSample {
            secs: self.interval_secs,
            cpu_cores: tps * CPU_PER_TPS,
            ram_os_view: self.ram,
            tps,
            rows_updated_per_sec: rows,
            reads_per_sec: 0.0,
            write_bytes_per_sec: rows * 200.0,
            bp_miss_ratio: 0.005,
            mean_latency_secs: 0.004,
        }
    }
}

/// A membership change during the run.
pub enum FleetEvent {
    Add {
        at_tick: u64,
        source: SyntheticSource,
    },
    Remove {
        at_tick: u64,
        name: String,
    },
}

/// A self-contained drift scenario.
pub struct Scenario {
    pub label: String,
    pub sources: Vec<SyntheticSource>,
    pub events: Vec<FleetEvent>,
    pub ticks: u64,
}

/// What a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    pub label: String,
    pub ticks: u64,
    /// Tick at which the initial plan landed (fleet bootstrapped).
    pub initial_plan_tick: Option<u64>,
    pub initial_machines: usize,
    pub final_machines: usize,
    /// Re-solves after the initial plan.
    pub resolves: u64,
    /// Churn (moved fraction of pre-existing slots) of each re-solve.
    pub churns: Vec<f64>,
    pub total_moves: u64,
    pub forced_steps: u64,
    pub bytes_copied: f64,
    /// The final placement re-evaluated against the final forecast.
    pub final_feasible: bool,
    /// Mean wall-clock seconds of ticks that did *not* re-plan.
    pub steady_tick_secs: f64,
    /// Wall-clock seconds of each re-solve (solver only).
    pub resolve_secs: Vec<f64>,
}

impl ScenarioReport {
    pub fn max_churn(&self) -> f64 {
        self.churns.iter().copied().fold(0.0, f64::max)
    }

    pub fn mean_resolve_secs(&self) -> f64 {
        if self.resolve_secs.is_empty() {
            0.0
        } else {
            self.resolve_secs.iter().sum::<f64>() / self.resolve_secs.len() as f64
        }
    }
}

/// Drive a controller through a scenario.
pub fn run_scenario(cfg: &ControllerConfig, scenario: Scenario) -> ScenarioReport {
    let engine = ConsolidationEngine::builder().build();
    let mut controller = Controller::new(*cfg, engine);
    for s in scenario.sources {
        controller.add_workload(Box::new(s));
    }
    let mut events = scenario.events;

    let mut report = ScenarioReport {
        label: scenario.label,
        ticks: scenario.ticks,
        initial_plan_tick: None,
        initial_machines: 0,
        final_machines: 0,
        resolves: 0,
        churns: Vec::new(),
        total_moves: 0,
        forced_steps: 0,
        bytes_copied: 0.0,
        final_feasible: false,
        steady_tick_secs: 0.0,
        resolve_secs: Vec::new(),
    };
    let mut steady_secs = 0.0;
    let mut steady_ticks = 0u64;

    for tick in 0..scenario.ticks {
        events.retain_mut(|e| match e {
            FleetEvent::Add { at_tick, source } if *at_tick == tick => {
                // `retain_mut` gives us &mut; move the source out via a
                // placeholder pattern swap.
                let taken = std::mem::replace(
                    source,
                    SyntheticSource::new("_", 300.0, Bytes::ZERO, RatePattern::Flat { tps: 0.0 }),
                );
                controller.add_workload(Box::new(taken));
                false
            }
            FleetEvent::Remove { at_tick, name } if *at_tick == tick => {
                controller.remove_workload(name);
                false
            }
            _ => true,
        });

        let t0 = Instant::now();
        let outcome = controller.tick();
        let wall = t0.elapsed().as_secs_f64();
        match outcome {
            TickOutcome::InitialPlan {
                machines,
                solve_secs,
            } => {
                report.initial_plan_tick = Some(tick);
                report.initial_machines = machines;
                report.resolve_secs.push(solve_secs);
            }
            TickOutcome::Replanned(r) => {
                report.resolves += 1;
                report.churns.push(r.churn);
                report.total_moves += r.moves as u64;
                report.forced_steps += r.execution.forced_steps as u64;
                report.bytes_copied += r.execution.bytes_copied;
                report.resolve_secs.push(r.solve_secs);
            }
            _ => {
                steady_secs += wall;
                steady_ticks += 1;
            }
        }
    }

    report.final_machines = controller.placement().machines_used();
    report.final_feasible = controller
        .verify_current()
        .map(|e| e.feasible)
        .unwrap_or(false);
    report.steady_tick_secs = if steady_ticks > 0 {
        steady_secs / steady_ticks as f64
    } else {
        0.0
    };
    report
}

fn flat(name: String, tps: f64) -> SyntheticSource {
    SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps })
}

/// Control scenario: `n` flat workloads, no drift. A correct controller
/// plans once and never re-solves.
pub fn scenario_stationary(n: usize, ticks: u64) -> Scenario {
    Scenario {
        label: "stationary".into(),
        sources: (0..n)
            .map(|i| flat(format!("flat-{i:02}"), 200.0 + 10.0 * (i % 5) as f64))
            .collect(),
        events: Vec::new(),
        ticks,
    }
}

/// Diurnal phase-correlation shift: the fleet's sinusoidal daily cycles
/// start evenly interleaved (peaks cancel, everything packs tight); at
/// `ticks/2` most of the fleet snaps to a common phase, so peaks stack
/// and the old packing transiently overloads at peak windows.
pub fn scenario_diurnal_shift(n: usize, ticks: u64) -> Scenario {
    let period_secs = 24.0 * 300.0; // one planning horizon per "day"
    let shift_at = ticks / 2;
    let sources = (0..n)
        .map(|i| {
            let spread_phase = i as f64 / n as f64 * 2.0 * std::f64::consts::PI;
            let before = RatePattern::Sinusoid {
                mean: 160.0,
                amplitude: 90.0,
                period_secs,
                phase: spread_phase,
            };
            let s = SyntheticSource::new(format!("diurnal-{i:02}"), 300.0, Bytes::gib(4), before);
            if i < (3 * n).div_ceil(4) {
                // Three quarters of the fleet re-aligns to phase 0.
                s.then_at(
                    shift_at,
                    RatePattern::Sinusoid {
                        mean: 160.0,
                        amplitude: 90.0,
                        period_secs,
                        phase: 0.0,
                    },
                )
            } else {
                s
            }
        })
        .collect();
    Scenario {
        label: "diurnal-shift".into(),
        sources,
        events: Vec::new(),
        ticks,
    }
}

/// Flash crowd: a flat fleet; one tenant spikes ~3× for a bounded burst,
/// then subsides. Expect one re-solve into the spike (relieve the hot
/// machine, small churn) and typically one after (repack).
pub fn scenario_flash_crowd(n: usize, ticks: u64) -> Scenario {
    let spike_start = ticks / 3;
    let spike_len = ticks / 4;
    let sources = (0..n)
        .map(|i| {
            let base = 200.0 + 10.0 * (i % 4) as f64;
            let s = flat(format!("crowd-{i:02}"), base);
            if i == 0 {
                s.then_at(spike_start, RatePattern::Flat { tps: 640.0 })
                    .then_at(spike_start + spike_len, RatePattern::Flat { tps: base })
            } else {
                s
            }
        })
        .collect();
    Scenario {
        label: "flash-crowd".into(),
        sources,
        events: Vec::new(),
        ticks,
    }
}

/// Workload churn: a flat fleet; two tenants arrive mid-run and one of
/// the originals later leaves. Arrivals are placements (zero migration
/// churn); the departure triggers an opportunistic repack.
pub fn scenario_churn(n: usize, ticks: u64) -> Scenario {
    let sources = (0..n)
        .map(|i| flat(format!("churn-{i:02}"), 220.0))
        .collect();
    let add_at = ticks / 3;
    let remove_at = (2 * ticks) / 3;
    Scenario {
        label: "workload-churn".into(),
        sources,
        events: vec![
            FleetEvent::Add {
                at_tick: add_at,
                source: flat("churn-new-a".into(), 240.0),
            },
            FleetEvent::Add {
                at_tick: add_at,
                source: flat("churn-new-b".into(), 180.0),
            },
            FleetEvent::Remove {
                at_tick: remove_at,
                name: "churn-00".into(),
            },
        ],
        ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_source_is_deterministic() {
        let mut a = flat("x".into(), 100.0);
        let mut b = flat("x".into(), 100.0);
        for _ in 0..20 {
            let (sa, sb) = (a.poll(), b.poll());
            assert_eq!(sa.tps, sb.tps);
            assert_eq!(sa.cpu_cores, sb.cpu_cores);
        }
    }

    #[test]
    fn schedule_switches_pattern() {
        let mut s = flat("x".into(), 100.0)
            .with_noise(0.0)
            .then_at(3, RatePattern::Flat { tps: 500.0 });
        let tps: Vec<f64> = (0..5).map(|_| s.poll().tps).collect();
        assert_eq!(tps[..3], [100.0, 100.0, 100.0]);
        assert_eq!(tps[3..], [500.0, 500.0]);
    }

    #[test]
    fn scenario_constructors_shape() {
        let s = scenario_stationary(6, 100);
        assert_eq!(s.sources.len(), 6);
        assert!(s.events.is_empty());
        let c = scenario_churn(6, 120);
        assert_eq!(c.events.len(), 3);
        let d = scenario_diurnal_shift(8, 200);
        assert_eq!(d.sources.len(), 8);
        let f = scenario_flash_crowd(8, 180);
        assert_eq!(f.sources.len(), 8);
    }
}
