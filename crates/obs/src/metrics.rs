//! The lock-cheap metrics registry: atomic counters, f64 cells and
//! log-scale histograms, exported as JSON or Prometheus text exposition.
//!
//! Registration (name → handle) takes a mutex once; the handles are
//! `Arc`-shared atomics, so the hot path — a tick loop bumping a counter
//! or recording a latency — is a single relaxed atomic op with no lock
//! and no allocation. Handles stay valid across threads and clones, which
//! is what lets the transport layer and the fan-out tick workers feed the
//! same registry a `ShardNode` serves over the `Metrics` RPC.
//!
//! Everything here is wall-clock / run-variant territory: latencies,
//! byte counts, queue depths. The deterministic decision record lives in
//! [`crate::events`] — keep the two apart (a trace must not absorb a
//! duration; a dashboard should not wait for a trace).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter (relaxed atomic adds).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
    /// Reset to an absolute value — used when restoring counters from a
    /// checkpointed stats view.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }
}

/// An `f64` cell stored as bit patterns in an `AtomicU64`: supports
/// last-write `set` (gauge), CAS-accumulated `add`, and CAS `max` —
/// enough for bytes-copied totals, solve-seconds accumulators and
/// high-watermarks without a lock.
#[derive(Clone, Debug)]
pub struct FloatCell(Arc<AtomicU64>);

impl Default for FloatCell {
    fn default() -> Self {
        FloatCell(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl FloatCell {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
    pub fn max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

/// Bucket count: 4 linear buckets below 4, then 4 sub-buckets per power
/// of two up to `u64::MAX` (2 significant bits ⇒ ≤25% quantization
/// error on percentile estimates — plenty for latency dashboards).
const HISTOGRAM_BUCKETS: usize = 4 + 62 * 4;

/// A lock-free log-scale histogram over `u64` samples (microseconds,
/// bytes — any non-negative integer unit).
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets = (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramCore {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // e >= 2
    let sub = ((v >> (e - 2)) & 3) as usize;
    4 + (e - 2) * 4 + sub
}

/// Upper bound of a bucket's value range — percentile estimates use it
/// so they are conservative (never under-report a latency).
fn bucket_upper(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let e = (idx - 4) / 4 + 2;
    let sub = ((idx - 4) % 4) as u64;
    ((4 + sub + 1) << (e - 2)) - 1
}

impl Histogram {
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Conservative percentile estimate: the upper bound of the bucket
    /// holding the rank-`⌈q·n⌉` sample, with the rank clamped to
    /// `[1, n]`.
    ///
    /// Total for every input — the chaos driver folds these into its
    /// invariant report, so the edges are pinned rather than left to
    /// float-cast accidents:
    ///
    /// * an **empty** histogram returns `0` for every `q`;
    /// * `q` is clamped to `[0, 1]` first, and `NaN` clamps to `0`;
    /// * `q = 0.0` is the minimum estimate (upper bound of the first
    ///   occupied bucket), `q = 1.0` the maximum estimate (upper bound
    ///   of the last occupied bucket).
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // NaN maps to 0.0 (clamp would propagate it), so the rank
        // arithmetic below only ever sees q in [0, 1].
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(idx);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, FloatCell>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A named collection of metrics. Cloning shares the underlying store;
/// `counter`/`gauge`/`histogram` get-or-register and return a lock-free
/// handle to keep on the hot path.
///
/// Names should be Prometheus-compatible (`[a-z0-9_]`, labels inline:
/// `kairos_shard_resolves_total{shard="0"}`); the JSON export uses the
/// same strings as keys.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> FloatCell {
        let mut map = self.inner.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Read a counter **without registering it** — `None` if the name
    /// was never registered here. The health watchdog reads through
    /// this so probing a metric can never create a zero-valued ghost.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .counters
            .lock()
            .unwrap()
            .get(name)
            .map(Counter::get)
    }

    /// Read a gauge without registering it (see [`Self::counter_value`]).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner
            .gauges
            .lock()
            .unwrap()
            .get(name)
            .map(FloatCell::get)
    }

    /// A handle to an existing histogram without registering it.
    pub fn histogram_view(&self, name: &str) -> Option<Histogram> {
        self.inner.histograms.lock().unwrap().get(name).cloned()
    }

    /// Flat JSON object: counters as integers, gauges as floats,
    /// histograms expanded to `_count/_mean/_p50/_p99` keys.
    pub fn render_json(&self) -> String {
        render_json_all(&[self])
    }

    /// Prometheus text exposition format (counters, gauges, and
    /// summary-style quantiles for histograms).
    pub fn render_prometheus(&self) -> String {
        render_prometheus_all(&[self])
    }

    fn collect_json(&self, out: &mut Vec<String>) {
        // Metric names may carry inline labels (`x{shard="0"}`); the
        // embedded quotes must escape or the JSON key is invalid.
        for (name, c) in self.inner.counters.lock().unwrap().iter() {
            out.push(format!("\"{}\":{}", json_escape(name), c.get()));
        }
        for (name, g) in self.inner.gauges.lock().unwrap().iter() {
            out.push(format!("\"{}\":{:.6}", json_escape(name), g.get()));
        }
        for (name, h) in self.inner.histograms.lock().unwrap().iter() {
            let name = json_escape(name);
            out.push(format!("\"{name}_count\":{}", h.count()));
            out.push(format!("\"{name}_mean\":{:.3}", h.mean()));
            out.push(format!("\"{name}_p50\":{}", h.percentile(0.50)));
            out.push(format!("\"{name}_p99\":{}", h.percentile(0.99)));
        }
    }

    fn collect_prometheus(&self, out: &mut String) {
        use std::fmt::Write;
        for (name, c) in self.inner.counters.lock().unwrap().iter() {
            let bare = base_name(name);
            let _ = writeln!(out, "# TYPE {bare} counter\n{name} {}", c.get());
        }
        for (name, g) in self.inner.gauges.lock().unwrap().iter() {
            let bare = base_name(name);
            let _ = writeln!(out, "# TYPE {bare} gauge\n{name} {}", g.get());
        }
        for (name, h) in self.inner.histograms.lock().unwrap().iter() {
            let bare = base_name(name);
            let (lead, labels) = split_labels(name);
            let _ = writeln!(out, "# TYPE {bare} summary");
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "{lead}{{quantile=\"{label}\"{labels}}} {}",
                    h.percentile(q)
                );
            }
            // An unlabeled summary's _sum/_count carry no brace pair at
            // all — `name_sum{}` is not valid exposition format.
            let inner = labels_bare(name);
            let braced = if inner.is_empty() {
                String::new()
            } else {
                format!("{{{inner}}}")
            };
            let _ = writeln!(out, "{lead}_sum{braced} {}", h.sum());
            let _ = writeln!(out, "{lead}_count{braced} {}", h.count());
        }
    }
}

/// Escape a metric name for use inside a JSON string (inline labels
/// carry `"` characters).
fn json_escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Validate one line of Prometheus text exposition format: a comment,
/// or `name[{label="v",...}] value` where `name` is
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` and `value` parses as a float. Returns
/// the offending reason for invalid lines — the CI surface job and the
/// format-validation test both run every rendered line through this.
pub fn validate_exposition_line(line: &str) -> Result<(), String> {
    if line.is_empty() || line.starts_with('#') {
        return Ok(());
    }
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator: {line:?}"))?;
    if value.parse::<f64>().is_err() {
        return Err(format!("unparseable value {value:?} in {line:?}"));
    }
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unclosed label braces: {line:?}"))?;
            (name, Some(labels))
        }
        None => (series, None),
    };
    let mut chars = name.chars();
    let lead_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !lead_ok || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("bad metric name {name:?} in {line:?}"));
    }
    if let Some(labels) = labels {
        if labels.is_empty() {
            return Err(format!("empty label braces in {line:?}"));
        }
        for pair in labels.split(',') {
            let (key, val) = pair
                .split_once('=')
                .ok_or_else(|| format!("label {pair:?} has no '=' in {line:?}"))?;
            let mut kchars = key.chars();
            let key_ok = kchars
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                && kchars.all(|c| c.is_ascii_alphanumeric() || c == '_');
            if !key_ok {
                return Err(format!("bad label name {key:?} in {line:?}"));
            }
            if !(val.len() >= 2 && val.starts_with('"') && val.ends_with('"')) {
                return Err(format!("unquoted label value {val:?} in {line:?}"));
            }
        }
    }
    Ok(())
}

/// [`validate_exposition_line`] over a whole document.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for line in text.lines() {
        validate_exposition_line(line)?;
    }
    Ok(())
}

/// `name{label="x"}` → `name` (for `# TYPE` lines).
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// `name{a="1"}` → (`name`, `,a="1"`); `name` → (`name`, ``).
fn split_labels(name: &str) -> (&str, String) {
    match name.split_once('{') {
        Some((lead, rest)) => {
            let inner = rest.trim_end_matches('}');
            (lead, format!(",{inner}"))
        }
        None => (name, String::new()),
    }
}

/// `name{a="1"}` → `a="1"`; `name` → ``.
fn labels_bare(name: &str) -> String {
    match name.split_once('{') {
        Some((_, rest)) => rest.trim_end_matches('}').to_string(),
        None => String::new(),
    }
}

/// Merge several registries (e.g. a node's own plus the process-global
/// transport registry) into one flat JSON object.
pub fn render_json_all(regs: &[&MetricsRegistry]) -> String {
    let mut fields = Vec::new();
    for r in regs {
        r.collect_json(&mut fields);
    }
    format!("{{{}}}", fields.join(","))
}

/// Merge several registries into one Prometheus exposition document.
pub fn render_prometheus_all(regs: &[&MetricsRegistry]) -> String {
    let mut out = String::new();
    for r in regs {
        r.collect_prometheus(&mut out);
    }
    out
}

/// The process-global registry: where code without a natural owner — the
/// transport/frame layer, examples — registers its metrics. A
/// `ShardNode`'s `Metrics` RPC merges this with the node's own registry,
/// which matches what a per-process Prometheus scrape should see.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ticks_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("ticks_total").get(), 5, "handle is shared");
        let g = reg.gauge("depth");
        g.set(2.5);
        g.add(0.5);
        g.max(1.0); // below current: no-op
        assert_eq!(reg.gauge("depth").get(), 3.0);
    }

    #[test]
    fn histogram_percentiles_are_conservative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_usecs");
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        // Upper-bound estimates: >= true percentile, <= 25% over.
        assert!((50..=63).contains(&p50), "p50 {p50}");
        assert!((99..=127).contains(&p99), "p99 {p99}");
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
    }

    #[test]
    fn percentile_is_total_at_the_edges() {
        let empty = Histogram::default();
        for q in [f64::NAN, -1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.percentile(q), 0, "empty histogram, q={q}");
        }

        let h = Histogram::default();
        for v in 10..=100u64 {
            h.record(v);
        }
        let min = h.percentile(0.0);
        let max = h.percentile(1.0);
        // q=0 is the upper bound of the *first* occupied bucket (a
        // conservative minimum), q=1 of the *last* (the maximum).
        assert_eq!(min, 11, "bucket holding 10 tops out at 11");
        assert_eq!(max, 111, "bucket holding 100 tops out at 111");
        // Out-of-range and NaN quantiles clamp to those edges instead
        // of riding float-to-int cast behaviour.
        assert_eq!(h.percentile(-3.0), min);
        assert_eq!(h.percentile(f64::NAN), min);
        assert_eq!(h.percentile(7.5), max);
        // And the estimate is monotone in q.
        let mut last = 0;
        for i in 0..=20 {
            let p = h.percentile(i as f64 / 20.0);
            assert!(p >= last, "q={} gave {p} < {last}", i as f64 / 20.0);
            last = p;
        }
    }

    #[test]
    fn bucket_index_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..63 {
            let v = 1u64 << shift;
            let idx = bucket_index(v);
            assert!(idx >= last && idx < HISTOGRAM_BUCKETS);
            assert!(bucket_upper(idx) >= v, "upper bound covers the sample");
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn render_json_is_flat_and_merged() {
        let a = MetricsRegistry::new();
        a.counter("a_total").add(2);
        let b = MetricsRegistry::new();
        b.gauge("b_depth").set(1.5);
        let json = render_json_all(&[&a, &b]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":2"));
        assert!(json.contains("\"b_depth\":1.5"));
    }

    #[test]
    fn render_prometheus_handles_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("kairos_resolves_total{shard=\"0\"}").inc();
        reg.histogram("tick_usecs{kind=\"poll\"}").record(7);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE kairos_resolves_total counter"));
        assert!(text.contains("kairos_resolves_total{shard=\"0\"} 1"));
        assert!(text.contains("# TYPE tick_usecs summary"));
        assert!(text.contains("tick_usecs{quantile=\"0.5\",kind=\"poll\"}"));
        assert!(text.contains("tick_usecs_count{kind=\"poll\"} 1"));
    }

    #[test]
    fn every_rendered_line_is_valid_exposition_format() {
        let reg = MetricsRegistry::new();
        reg.counter("plain_total").add(3);
        reg.counter("labeled_total{shard=\"0\"}").inc();
        reg.gauge("depth").set(1.25);
        reg.gauge("lag{zone=\"2\"}").set(-0.5);
        reg.histogram("plain_usecs").record(42);
        reg.histogram("labeled_usecs{kind=\"poll\",shard=\"1\"}")
            .record(7);
        let text = reg.render_prometheus();
        for line in text.lines() {
            validate_exposition_line(line).unwrap_or_else(|e| panic!("{e}"));
        }
        // The p50/p99 summary quantiles are present for both shapes.
        assert!(text.contains("plain_usecs{quantile=\"0.5\"} "));
        assert!(text.contains("plain_usecs{quantile=\"0.99\"} "));
        assert!(text.contains("labeled_usecs{quantile=\"0.99\",kind=\"poll\",shard=\"1\"} "));
        // Unlabeled summaries carry no empty brace pair.
        assert!(text.contains("plain_usecs_sum 42"), "{text}");
        assert!(text.contains("plain_usecs_count 1"));
        assert!(!text.contains("{}"), "empty braces leaked: {text}");
        // And the validator actually rejects malformed shapes.
        assert!(validate_exposition_line("x_sum{} 1").is_err());
        assert!(validate_exposition_line("9bad 1").is_err());
        assert!(validate_exposition_line("x{a=b} 1").is_err());
        assert!(validate_exposition_line("x 1 2 nope").is_err());
        assert!(validate_exposition_line("x").is_err());
    }

    #[test]
    fn labeled_names_render_as_valid_json() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total{shard=\"0\"}").add(2);
        reg.histogram("h_usecs{kind=\"solve\"}").record(5);
        let json = reg.render_json();
        // Embedded label quotes must be escaped, keys stay unique.
        assert!(json.contains("\"c_total{shard=\\\"0\\\"}\":2"), "{json}");
        assert!(
            json.contains("\"h_usecs{kind=\\\"solve\\\"}_count\":1"),
            "{json}"
        );
        // Structural validity: quotes are balanced once unescaped
        // sequences are stripped.
        let stripped = json.replace("\\\"", "");
        assert_eq!(stripped.matches('"').count() % 2, 0, "{json}");
    }

    #[test]
    fn value_lookups_never_register() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.counter_value("nope"), None);
        assert_eq!(reg.gauge_value("nope"), None);
        assert!(reg.histogram_view("nope").is_none());
        assert!(!reg.render_prometheus().contains("nope"));
        reg.counter("yes_total").add(7);
        assert_eq!(reg.counter_value("yes_total"), Some(7));
    }
}
