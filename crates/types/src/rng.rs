//! A tiny deterministic PRNG (SplitMix64).
//!
//! Workload and trace generators need a seedable, `Clone`-able random
//! source so entire experiments are reproducible and sweep points can fork
//! generator state. SplitMix64 passes BigCrush-level statistical tests for
//! these purposes and costs a handful of instructions per draw.

/// SplitMix64 PRNG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// A generator seeded from `base` mixed with the `KAIROS_TEST_SEED`
    /// environment variable (unset, empty, or `0` leaves `base` alone).
    ///
    /// Property-style tests use this so CI can sweep a seed matrix over
    /// the same assertions: each matrix entry explores a different slice
    /// of the input space while any single run stays fully deterministic
    /// and replayable (`KAIROS_TEST_SEED=n cargo test`).
    pub fn from_env(base: u64) -> SplitMix64 {
        let offset = std::env::var("KAIROS_TEST_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if offset == 0 {
            SplitMix64::new(base)
        } else {
            // Mix rather than add so nearby env seeds decorrelate.
            let mut mixer = SplitMix64::new(base ^ offset.rotate_left(17));
            SplitMix64::new(mixer.next_u64())
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        // Multiply-shift rejection-free mapping (slightly biased for huge n,
        // irrelevant at simulation scales).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn next_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fork an independent stream (for per-entity sub-generators).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SplitMix64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        SplitMix64::new(0).next_range(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SplitMix64::new(13);
        a.next_u64();
        let mut b = a;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn from_env_defaults_to_base() {
        // The test environment may or may not set KAIROS_TEST_SEED; both
        // outcomes must be deterministic for a fixed environment.
        let a = SplitMix64::from_env(0xABCD);
        let b = SplitMix64::from_env(0xABCD);
        assert_eq!(a, b);
    }
}
