//! Offline stand-in for `serde` — now a real (if small) binary codec.
//!
//! The build environment has no access to crates.io, so this
//! workspace-local shim satisfies the `serde::Serialize` /
//! `serde::Deserialize` derive annotations scattered through the data
//! types. Until the checkpoint/restore work the traits were inert
//! markers; they now define the workspace's canonical wire format, which
//! `kairos-store` frames into versioned, checksummed snapshot files:
//!
//! * fixed-width little-endian integers (`u8`/`u16`/`u32`/`u64`; `usize`
//!   travels as `u64`),
//! * `f64` as its IEEE-754 bit pattern (bit-exact round-trips — restored
//!   telemetry must reproduce solver objectives to the last bit),
//! * `bool` and `Option` as one validated tag byte,
//! * sequences (`Vec`, `VecDeque`, `String`, maps) as a `u64` length
//!   followed by the elements,
//! * structs as their fields in declaration order, enums as a `u32`
//!   variant index plus the payload (see `serde_derive_shim`).
//!
//! Decoding never panics on malformed input: every length is bounds-
//! checked against the remaining input before allocation, UTF-8 and tag
//! bytes are validated, and errors surface as [`Error`]. Swapping in
//! real serde later means re-deriving against it and re-encoding
//! persisted state (the file format version in `kairos-store` gates
//! that migration).

pub use serde_derive_shim::{Deserialize, Serialize};

use std::collections::{BTreeMap, VecDeque};

/// Decode failure: what was being read and why it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn msg(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Encode to the shim's little-endian wire format.
pub trait Serialize {
    fn encode_to(&self, out: &mut Vec<u8>);
}

/// Decode from the shim's wire format, consuming from the front of
/// `input`. Implementations must never panic on malformed bytes.
pub trait Deserialize: Sized {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error>;
}

/// Encode `value` into a fresh buffer.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode_to(&mut out);
    out
}

/// Decode one `T` from `bytes`, requiring every byte to be consumed.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut input = bytes;
    let value = T::decode_from(&mut input)?;
    if !input.is_empty() {
        return Err(Error::msg("trailing bytes after value"));
    }
    Ok(value)
}

/// Take `n` bytes off the front of `input`, or fail on truncation.
fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], Error> {
    if input.len() < n {
        return Err(Error::msg("unexpected end of input"));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Read a `u64` length prefix. The follow-on data costs at least one
/// byte per element for every type in this workspace, so a length
/// exceeding the remaining input is rejected *before* any allocation.
fn decode_len(input: &mut &[u8]) -> Result<usize, Error> {
    let n = u64::decode_from(input)?;
    if n > input.len() as u64 {
        return Err(Error::msg("length prefix exceeds remaining input"));
    }
    Ok(n as usize)
}

macro_rules! int_impl {
    ($t:ty, $n:expr) => {
        impl Serialize for $t {
            fn encode_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
                let raw = take(input, $n)?;
                Ok(<$t>::from_le_bytes(raw.try_into().expect("sized take")))
            }
        }
    };
}

int_impl!(u8, 1);
int_impl!(u16, 2);
int_impl!(u32, 4);
int_impl!(u64, 8);
int_impl!(i32, 4);
int_impl!(i64, 8);

impl Serialize for usize {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_to(out);
    }
}

impl Deserialize for usize {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        let v = u64::decode_from(input)?;
        usize::try_from(v).map_err(|_| Error::msg("usize out of range for this platform"))
    }
}

impl Serialize for f64 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Deserialize for f64 {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        Ok(f64::from_bits(u64::decode_from(input)?))
    }
}

impl Serialize for bool {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Deserialize for bool {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        match u8::decode_from(input)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Error::msg("invalid bool tag")),
        }
    }
}

impl Serialize for String {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Deserialize for String {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        let n = decode_len(input)?;
        let raw = take(input, n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| Error::msg("invalid UTF-8 in string"))
    }
}

impl Serialize for str {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_to(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        match u8::decode_from(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(input)?)),
            _ => Err(Error::msg("invalid option tag")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        for v in self {
            v.encode_to(out);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        let n = decode_len(input)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode_from(input)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        for v in self {
            v.encode_to(out);
        }
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        Ok(Vec::<T>::decode_from(input)?.into())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        for (k, v) in self {
            k.encode_to(out);
            v.encode_to(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        let n = decode_len(input)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode_from(input)?;
            let v = V::decode_from(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        Ok((A::decode_from(input)?, B::decode_from(input)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
        self.2.encode_to(out);
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        Ok((
            A::decode_from(input)?,
            B::decode_from(input)?,
            C::decode_from(input)?,
        ))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
        self.2.encode_to(out);
        self.3.encode_to(out);
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn decode_from(input: &mut &[u8]) -> Result<Self, Error> {
        Ok((
            A::decode_from(input)?,
            B::decode_from(input)?,
            C::decode_from(input)?,
            D::decode_from(input)?,
        ))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (*self).encode_to(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("roundtrip decodes");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-7i64);
        roundtrip(true);
        roundtrip(std::f64::consts::PI);
        // NaN bit patterns survive exactly.
        let nan_bits = 0x7FF8_0000_0000_0001u64;
        let bytes = to_bytes(&f64::from_bits(nan_bits));
        let back: f64 = from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), nan_bits);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("kairos"));
        roundtrip(vec![1.0f64, -2.5, f64::INFINITY]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(vec![String::from("a"), String::new()]));
        roundtrip(VecDeque::from(vec![1u32, 2, 3]));
        let mut m = BTreeMap::new();
        m.insert((String::from("w"), 0u32), 3usize);
        m.insert((String::from("w"), 1u32), 5usize);
        roundtrip(m);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let r: Result<Vec<u64>, Error> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocating() {
        // Claims u64::MAX elements with no data behind it.
        let bytes = to_bytes(&u64::MAX);
        let r: Result<Vec<f64>, Error> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[7, 0]).is_err());
        assert!(from_bytes::<String>(
            &to_bytes(&(1u64))
                .iter()
                .chain(&[0xFFu8])
                .copied()
                .collect::<Vec<u8>>()
        )
        .is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1u32);
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }
}
