//! # kairos-dbsim — the DBMS and host substrate
//!
//! A discrete-time simulator of the systems the Kairos paper measures:
//! MySQL/PostgreSQL-style DBMS instances on commodity servers with a
//! single SATA disk. The paper's techniques (buffer-pool gauging, the
//! empirical disk model, consolidated-vs-VM comparisons) all run *against*
//! this substrate exactly as they ran against real DBMSs.
//!
//! The simulator is structural, not curve-fit: the phenomena Kairos
//! exploits emerge from first-class mechanisms —
//!
//! * a page-granular clock-LRU [`buffer::ClockCache`] (gauging pressure,
//!   working-set eviction),
//! * a [`wal::LogManager`] with group commit shared across all databases
//!   of an instance (why one consolidated DBMS beats N instances),
//! * an adaptive [`flusher::Flusher`] that exploits idle disk bandwidth
//!   (why naive iostat sums over-estimate combined load),
//! * exact-expectation update coalescing in [`engine::DbmsInstance`]
//!   (why disk I/O is non-linear in update rate and working-set size),
//! * a [`disk::DiskDevice`] with sequential/random/elevator service
//!   classes and a [`cpu::CpuDevice`] with processor-sharing semantics.
//!
//! Time advances in fixed ticks (0.1 s by default in the experiment
//! harnesses). Workload generators (crate `kairos-workloads`) produce an
//! [`engine::OpBatch`] per database per tick; a [`host::Host`] mediates
//! the shared devices between instances.

pub mod buffer;
pub mod cpu;
pub mod disk;
pub mod engine;
pub mod flusher;
pub mod host;
pub mod pages;
pub mod stats;
pub mod wal;

pub use buffer::{CacheStats, ClockCache, Touch};
pub use cpu::{CpuDevice, CpuTickServed};
pub use disk::{DiskDevice, DiskTickDemand, DiskTickServed};
pub use engine::{
    AccessSpec, Database, DbmsConfig, DbmsInstance, DeviceGrant, InstanceDemand, OpBatch,
    TickResult, UpdateSpec,
};
pub use flusher::{FlushDecision, Flusher, FlusherConfig};
pub use host::{Host, HostTickReport, VirtOverheads};
pub use pages::{DatabaseId, PageAllocator, PageId, PageRange, TableId};
pub use stats::InstanceStats;
pub use wal::{LogManager, WalConfig, WalTickOutput};

/// Default tick length used by the experiment harnesses, seconds.
pub const DEFAULT_TICK_SECS: f64 = 0.1;
