//! Uniformly-sampled time series.
//!
//! The consolidation engine evaluates constraints *per time window* (§5:
//! "the combined load imposed on each server will not exceed the available
//! resources at any moment in time"), so resource utilization is carried as
//! a plain sampled series with a fixed interval. The rrd-style
//! multi-resolution store in `kairos-traces` flattens into this type.

use serde::{Deserialize, Serialize};

/// A uniformly-sampled series of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimeSeries {
    /// Sampling interval in seconds (e.g. 300 for the paper's 5-minute
    /// windows over 24 hours).
    interval_secs: f64,
    values: Vec<f64>,
}

/// Decoding re-checks what [`TimeSeries::new`] asserts: a snapshot (or
/// hand-built byte stream) carrying a non-positive or non-finite
/// interval must surface as a decode error at load time, not as a panic
/// the first time downstream code re-wraps the interval through
/// [`TimeSeries::new`].
impl Deserialize for TimeSeries {
    fn decode_from(input: &mut &[u8]) -> Result<TimeSeries, serde::Error> {
        let interval_secs = f64::decode_from(input)?;
        let values = Vec::<f64>::decode_from(input)?;
        if !(interval_secs.is_finite() && interval_secs > 0.0) {
            return Err(serde::Error::msg("time series: non-positive interval"));
        }
        Ok(TimeSeries {
            interval_secs,
            values,
        })
    }
}

impl TimeSeries {
    /// Create a series from raw samples.
    ///
    /// # Panics
    /// Panics if `interval_secs` is not strictly positive.
    pub fn new(interval_secs: f64, values: Vec<f64>) -> TimeSeries {
        assert!(
            interval_secs > 0.0,
            "sampling interval must be positive, got {interval_secs}"
        );
        TimeSeries {
            interval_secs,
            values,
        }
    }

    /// A constant-valued series of `n` samples.
    pub fn constant(interval_secs: f64, value: f64, n: usize) -> TimeSeries {
        TimeSeries::new(interval_secs, vec![value; n])
    }

    /// An empty series (zero samples).
    pub fn empty(interval_secs: f64) -> TimeSeries {
        TimeSeries::new(interval_secs, Vec::new())
    }

    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Total covered duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.interval_secs * self.values.len() as f64
    }

    /// Largest sample, or 0.0 for an empty series.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest sample, or 0.0 for an empty series.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Arithmetic mean, or 0.0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Linear-interpolated percentile (`p` in `[0, 100]`), or 0.0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in time series"));
        percentile_of_sorted(&sorted, p)
    }

    /// Element-wise addition of another series.
    ///
    /// Series must share the sampling interval. If lengths differ the
    /// shorter one is treated as zero-padded: combining workloads monitored
    /// for slightly different durations must not truncate load.
    ///
    /// # Panics
    /// Panics if the intervals differ.
    pub fn add_assign(&mut self, other: &TimeSeries) {
        assert!(
            (self.interval_secs - other.interval_secs).abs() < f64::EPSILON,
            "cannot add series with intervals {} and {}",
            self.interval_secs,
            other.interval_secs
        );
        if other.values.len() > self.values.len() {
            self.values.resize(other.values.len(), 0.0);
        }
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += *b;
        }
    }

    /// Element-wise sum of many series (zero-padded to the longest).
    pub fn sum<'a>(
        interval_secs: f64,
        series: impl IntoIterator<Item = &'a TimeSeries>,
    ) -> TimeSeries {
        let mut acc = TimeSeries::empty(interval_secs);
        for s in series {
            acc.add_assign(s);
        }
        acc
    }

    /// Multiply every sample by `factor`.
    pub fn scale(&self, factor: f64) -> TimeSeries {
        TimeSeries::new(
            self.interval_secs,
            self.values.iter().map(|v| v * factor).collect(),
        )
    }

    /// Apply `f` to every sample.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries::new(
            self.interval_secs,
            self.values.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Down-sample by an integer factor, averaging each bucket (rrd `AVG`
    /// consolidation). A trailing partial bucket is averaged over its actual
    /// sample count.
    ///
    /// # Panics
    /// Panics if `factor` is zero.
    pub fn downsample_avg(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "downsample factor must be non-zero");
        let vals = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        TimeSeries::new(self.interval_secs * factor as f64, vals)
    }

    /// Down-sample by an integer factor, taking each bucket's maximum (rrd
    /// `MAX` consolidation) — the conservative choice for capacity checks.
    pub fn downsample_max(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "downsample factor must be non-zero");
        let vals = self
            .values
            .chunks(factor)
            .map(|c| c.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        TimeSeries::new(self.interval_secs * factor as f64, vals)
    }

    /// Root-mean-square error against another series over the overlapping
    /// prefix. Used by the Fig 13 predictability experiment.
    pub fn rmse(&self, other: &TimeSeries) -> f64 {
        let n = self.values.len().min(other.values.len());
        if n == 0 {
            return 0.0;
        }
        let sum_sq: f64 = self.values[..n]
            .iter()
            .zip(&other.values[..n])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum_sq / n as f64).sqrt()
    }

    /// Split into consecutive chunks of `chunk_len` samples, dropping a
    /// trailing partial chunk. Used to slice fleet traces into weeks.
    pub fn chunks(&self, chunk_len: usize) -> Vec<TimeSeries> {
        assert!(chunk_len > 0, "chunk length must be non-zero");
        self.values
            .chunks_exact(chunk_len)
            .map(|c| TimeSeries::new(self.interval_secs, c.to_vec()))
            .collect()
    }

    /// Element-wise mean of several equally-shaped series. Series shorter
    /// than the longest are zero-padded before averaging.
    pub fn mean_of(interval_secs: f64, series: &[TimeSeries]) -> TimeSeries {
        if series.is_empty() {
            return TimeSeries::empty(interval_secs);
        }
        let mut acc = TimeSeries::sum(interval_secs, series);
        acc = acc.scale(1.0 / series.len() as f64);
        acc
    }
}

/// Linear-interpolated percentile over an already-sorted slice.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        // Single-product lerp: exact when the bracket endpoints are equal
        // and never outside [sorted[lo], sorted[hi]] by more than one
        // rounding step — the two-product form `lo*(1-frac) + hi*frac`
        // can dip below both endpoints and break monotonicity in `p`.
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(1.0, vals.to_vec())
    }

    #[test]
    fn stats_on_simple_series() {
        let ts = s(&[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(ts.max(), 4.0);
        assert_eq!(ts.min(), 1.0);
        assert_eq!(ts.mean(), 2.5);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.duration_secs(), 4.0);
    }

    #[test]
    fn empty_series_stats_are_zero() {
        let ts = TimeSeries::empty(5.0);
        assert_eq!(ts.max(), 0.0);
        assert_eq!(ts.min(), 0.0);
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.percentile(95.0), 0.0);
        assert!(ts.is_empty());
    }

    #[test]
    fn percentile_interpolates() {
        let ts = s(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(ts.percentile(0.0), 10.0);
        assert_eq!(ts.percentile(100.0), 40.0);
        assert!((ts.percentile(50.0) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn add_assign_zero_pads_shorter() {
        let mut a = s(&[1.0, 1.0]);
        let b = s(&[2.0, 2.0, 2.0]);
        a.add_assign(&b);
        assert_eq!(a.values(), &[3.0, 3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "cannot add series")]
    fn add_assign_rejects_mismatched_intervals() {
        let mut a = TimeSeries::new(1.0, vec![1.0]);
        let b = TimeSeries::new(2.0, vec![1.0]);
        a.add_assign(&b);
    }

    #[test]
    fn sum_of_many() {
        let parts = [s(&[1.0, 2.0]), s(&[3.0, 4.0]), s(&[5.0])];
        let total = TimeSeries::sum(1.0, parts.iter());
        assert_eq!(total.values(), &[9.0, 6.0]);
    }

    #[test]
    fn downsample_avg_handles_partial_tail() {
        let ts = s(&[1.0, 3.0, 5.0, 7.0, 9.0]);
        let down = ts.downsample_avg(2);
        assert_eq!(down.values(), &[2.0, 6.0, 9.0]);
        assert_eq!(down.interval_secs(), 2.0);
    }

    #[test]
    fn downsample_max_takes_bucket_peak() {
        let ts = s(&[1.0, 3.0, 5.0, 2.0]);
        assert_eq!(ts.downsample_max(2).values(), &[3.0, 5.0]);
    }

    #[test]
    fn downsample_avg_preserves_mean_for_exact_buckets() {
        let ts = s(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let down = ts.downsample_avg(3);
        assert!((down.mean() - ts.mean()).abs() < 1e-12);
    }

    #[test]
    fn rmse_of_identical_series_is_zero() {
        let ts = s(&[1.0, 2.0, 3.0]);
        assert_eq!(ts.rmse(&ts), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        let a = s(&[0.0, 0.0]);
        let b = s(&[3.0, 4.0]);
        let expected = ((9.0 + 16.0) / 2.0f64).sqrt();
        assert!((a.rmse(&b) - expected).abs() < 1e-12);
    }

    #[test]
    fn chunks_drop_partial_tail() {
        let ts = s(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let weeks = ts.chunks(2);
        assert_eq!(weeks.len(), 2);
        assert_eq!(weeks[0].values(), &[1.0, 2.0]);
        assert_eq!(weeks[1].values(), &[3.0, 4.0]);
    }

    #[test]
    fn mean_of_series() {
        let parts = [s(&[2.0, 4.0]), s(&[4.0, 8.0])];
        let m = TimeSeries::mean_of(1.0, &parts);
        assert_eq!(m.values(), &[3.0, 6.0]);
    }

    #[test]
    fn map_and_scale() {
        let ts = s(&[1.0, 2.0]);
        assert_eq!(ts.scale(2.0).values(), &[2.0, 4.0]);
        assert_eq!(ts.map(|v| v + 1.0).values(), &[2.0, 3.0]);
    }
}
