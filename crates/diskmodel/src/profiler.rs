//! The disk-profiling tool (§4.1).
//!
//! "Given a DBMS/OS/hardware configuration, our tool tests the disk
//! subsystem with a controlled synthetic workload that sweeps through a
//! range of database working set sizes and user request rates — this
//! testing can be done as an offline process on a similar configuration
//! [...] At each step, the tool records the rows updated per second, the
//! working set size in bytes, and the overall disk throughput in bytes per
//! second."
//!
//! Points are independent, so the sweep fans out over crossbeam scoped
//! threads. The real tool took ~2 hours for 7 000 points on hardware; the
//! simulated sweep takes seconds for a few hundred.

use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos_types::{Bytes, KairosError, MachineSpec, Result};
use kairos_workloads::{Driver, ProfileLoad, Workload};

/// One measured point of the system-response map.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiskPoint {
    /// Working-set size, bytes.
    pub ws_bytes: f64,
    /// *Achieved* row-update rate, rows/second.
    pub rows_per_sec: f64,
    /// Disk write throughput (log + page write-back), bytes/second.
    pub write_bytes_per_sec: f64,
    /// Fraction of offered updates the system kept up with (1 = not
    /// saturated).
    pub achieved_fraction: f64,
}

impl DiskPoint {
    /// Whether the system kept up with the offered load at this point.
    pub fn saturated(&self) -> bool {
        self.achieved_fraction < 0.97
    }
}

/// A complete profile: the empirical transfer function of one
/// DBMS/OS/hardware configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiskProfile {
    pub machine: String,
    pub points: Vec<DiskPoint>,
}

impl DiskProfile {
    /// Serialize as CSV (header + one row per point).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ws_bytes,rows_per_sec,write_bytes_per_sec,achieved_fraction\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{}\n",
                p.ws_bytes, p.rows_per_sec, p.write_bytes_per_sec, p.achieved_fraction
            ));
        }
        out
    }

    /// Parse the [`DiskProfile::to_csv`] format.
    pub fn from_csv(machine: impl Into<String>, csv: &str) -> Result<DiskProfile> {
        let mut points = Vec::new();
        for (i, line) in csv.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 4 {
                return Err(KairosError::InvalidInput(format!(
                    "line {i}: expected 4 fields, got {}",
                    fields.len()
                )));
            }
            let parse = |s: &str| -> Result<f64> {
                s.trim()
                    .parse()
                    .map_err(|e| KairosError::InvalidInput(format!("line {i}: {e}")))
            };
            points.push(DiskPoint {
                ws_bytes: parse(fields[0])?,
                rows_per_sec: parse(fields[1])?,
                write_bytes_per_sec: parse(fields[2])?,
                achieved_fraction: parse(fields[3])?,
            });
        }
        Ok(DiskProfile {
            machine: machine.into(),
            points,
        })
    }

    /// Maximum achieved row rate per working-set size — the black circles
    /// of Fig 4 whose quadratic fit is the saturation frontier.
    pub fn saturation_points(&self) -> Vec<(f64, f64)> {
        let mut per_ws: Vec<(f64, f64)> = Vec::new();
        for p in &self.points {
            match per_ws
                .iter_mut()
                .find(|(ws, _)| (*ws - p.ws_bytes).abs() < 1.0)
            {
                Some((_, max_rate)) => *max_rate = max_rate.max(p.rows_per_sec),
                None => per_ws.push((p.ws_bytes, p.rows_per_sec)),
            }
        }
        per_ws.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN ws"));
        per_ws
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    pub machine: MachineSpec,
    /// Buffer pool for the profiling instance (must hold the largest
    /// working set; the paper keeps working sets in RAM, §4.1).
    pub buffer_pool: Bytes,
    pub ws_points: Vec<Bytes>,
    /// Offered update rates, rows/second.
    pub rate_points: Vec<f64>,
    pub settle_secs: f64,
    pub measure_secs: f64,
    pub threads: usize,
    /// Override the DBMS redo-log capacity (None = MySQL default). A
    /// smaller log reaches checkpoint-stall equilibrium faster, which
    /// shortens the settle time saturation measurements need.
    pub log_capacity_bytes: Option<f64>,
}

impl ProfilerConfig {
    /// The paper's sweep shape at reduced resolution: working sets
    /// 1–3.5 GB, rates up to well past single-disk saturation.
    pub fn paper_like() -> ProfilerConfig {
        ProfilerConfig {
            machine: MachineSpec::server1(),
            buffer_pool: Bytes::gib(8),
            ws_points: (0..6).map(|i| Bytes::mib(1024 + i * 512)).collect(),
            rate_points: (1..=10).map(|i| i as f64 * 4000.0).collect(),
            // Long enough for checkpoint-stall equilibria to establish
            // with the default 512 MB redo log.
            settle_secs: 60.0,
            measure_secs: 20.0,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            log_capacity_bytes: None,
        }
    }

    /// A small, fast grid for tests.
    pub fn smoke() -> ProfilerConfig {
        ProfilerConfig {
            machine: MachineSpec::server1(),
            buffer_pool: Bytes::mib(1536),
            ws_points: vec![Bytes::mib(256), Bytes::mib(512), Bytes::mib(1024)],
            rate_points: vec![2_000.0, 8_000.0, 20_000.0, 40_000.0],
            settle_secs: 15.0,
            measure_secs: 8.0,
            threads: 4,
            log_capacity_bytes: Some(96.0 * 1024.0 * 1024.0),
        }
    }
}

/// Measurement of an arbitrary workload's steady-state disk behaviour —
/// used both by the profiler and by the Fig 12 generality experiments.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredDisk {
    pub rows_per_sec: f64,
    pub write_bytes_per_sec: f64,
    pub achieved_fraction: f64,
}

/// Run `workload` alone on `machine` and measure its steady-state disk
/// write throughput and achieved row rate.
pub fn measure_workload(
    machine: &MachineSpec,
    dbms: DbmsConfig,
    workload: Box<dyn Workload>,
    settle_secs: f64,
    measure_secs: f64,
) -> MeasuredDisk {
    let mut host = Host::new(machine.clone());
    host.add_instance(DbmsInstance::new(dbms));
    let mut driver = Driver::new();
    driver.bind(&mut host, 0, workload);
    driver.warmup(&mut host, settle_secs);

    let page_bytes = host.instance(0).page_size().as_f64();
    let before = host.instance(0).stats();
    let stats = driver.run(&mut host, measure_secs);
    let after = host.instance(0).stats();
    let delta = after.delta(&before);

    let offered = stats[0].offered_txns.max(1e-9);
    let committed = stats[0].committed_txns;
    MeasuredDisk {
        rows_per_sec: delta.rows_updated / delta.sim_secs,
        write_bytes_per_sec: delta.write_bytes_per_sec(page_bytes),
        achieved_fraction: (committed / offered).min(1.0),
    }
}

/// Measure one `(working set, offered rate)` grid point.
fn measure_point(cfg: &ProfilerConfig, ws: Bytes, rate: f64) -> DiskPoint {
    let mut dbms = DbmsConfig::mysql(cfg.buffer_pool);
    dbms.seed = (ws.0 ^ rate as u64).wrapping_mul(0x9E37);
    if let Some(cap) = cfg.log_capacity_bytes {
        dbms.wal.capacity_bytes = cap;
    }
    let m = measure_workload(
        &cfg.machine,
        dbms,
        Box::new(ProfileLoad::new(ws, rate)),
        cfg.settle_secs,
        cfg.measure_secs,
    );
    DiskPoint {
        ws_bytes: ws.as_f64(),
        rows_per_sec: m.rows_per_sec,
        write_bytes_per_sec: m.write_bytes_per_sec,
        achieved_fraction: m.achieved_fraction,
    }
}

/// Run the full sweep, parallelized across worker threads (points are
/// fully independent simulations).
pub fn run_profiler(cfg: &ProfilerConfig) -> DiskProfile {
    let grid: Vec<(Bytes, f64)> = cfg
        .ws_points
        .iter()
        .flat_map(|&ws| cfg.rate_points.iter().map(move |&r| (ws, r)))
        .collect();

    let threads = cfg.threads.max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, DiskPoint)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let grid = &grid;
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= grid.len() {
                    break;
                }
                let (ws, rate) = grid[i];
                tx.send((i, measure_point(cfg, ws, rate)))
                    .expect("collector alive");
            });
        }
    });
    drop(tx);

    let mut points = vec![
        DiskPoint {
            ws_bytes: 0.0,
            rows_per_sec: 0.0,
            write_bytes_per_sec: 0.0,
            achieved_fraction: 0.0,
        };
        grid.len()
    ];
    for (i, p) in rx {
        points[i] = p;
    }
    DiskProfile {
        machine: cfg.machine.name.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let profile = DiskProfile {
            machine: "m".into(),
            points: vec![
                DiskPoint {
                    ws_bytes: 1e9,
                    rows_per_sec: 5000.0,
                    write_bytes_per_sec: 3e6,
                    achieved_fraction: 1.0,
                },
                DiskPoint {
                    ws_bytes: 2e9,
                    rows_per_sec: 9000.0,
                    write_bytes_per_sec: 9e6,
                    achieved_fraction: 0.8,
                },
            ],
        };
        let csv = profile.to_csv();
        let back = DiskProfile::from_csv("m", &csv).unwrap();
        assert_eq!(profile, back);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        let bad = "h\n1,2,3\n";
        assert!(DiskProfile::from_csv("m", bad).is_err());
    }

    #[test]
    fn saturation_points_take_max_per_ws() {
        let profile = DiskProfile {
            machine: "m".into(),
            points: vec![
                DiskPoint {
                    ws_bytes: 1e9,
                    rows_per_sec: 5_000.0,
                    write_bytes_per_sec: 0.0,
                    achieved_fraction: 1.0,
                },
                DiskPoint {
                    ws_bytes: 1e9,
                    rows_per_sec: 9_000.0,
                    write_bytes_per_sec: 0.0,
                    achieved_fraction: 0.9,
                },
                DiskPoint {
                    ws_bytes: 2e9,
                    rows_per_sec: 7_000.0,
                    write_bytes_per_sec: 0.0,
                    achieved_fraction: 1.0,
                },
            ],
        };
        let sat = profile.saturation_points();
        assert_eq!(sat, vec![(1e9, 9_000.0), (2e9, 7_000.0)]);
    }

    #[test]
    fn saturated_flag_thresholds() {
        let p = DiskPoint {
            ws_bytes: 0.0,
            rows_per_sec: 0.0,
            write_bytes_per_sec: 0.0,
            achieved_fraction: 0.5,
        };
        assert!(p.saturated());
        let q = DiskPoint {
            achieved_fraction: 1.0,
            ..p
        };
        assert!(!q.saturated());
    }

    #[test]
    fn single_point_measurement_is_sane() {
        let cfg = ProfilerConfig {
            settle_secs: 2.0,
            measure_secs: 4.0,
            ..ProfilerConfig::smoke()
        };
        let p = measure_point(&cfg, Bytes::mib(128), 3_000.0);
        assert!(p.rows_per_sec > 1_000.0, "rows/s = {}", p.rows_per_sec);
        assert!(p.write_bytes_per_sec > 0.0);
        assert!(p.achieved_fraction > 0.5);
    }
}
