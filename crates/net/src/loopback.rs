//! The deterministic in-memory transport.
//!
//! Endpoints live in a shared registry; a [`Conn::call`] dispatches the
//! request frame to the registered handler synchronously on the calling
//! thread, so delivery order is exactly call order — the property the
//! loopback-vs-in-process equivalence tests lean on (no threads, no
//! queues, no timing).
//!
//! Faults are injected through the one declarative [`FaultPlan`]
//! surface (see [`crate::fault`] for the normative precedence:
//! partition ≻ drop ≻ corrupt, and **heal cancels pending one-shot
//! faults**), plus one seeded [`SplitMix64`] stream deciding corruption
//! bit positions — so failure tests replay exactly under
//! `KAIROS_TEST_SEED`:
//!
//! * **partition** — the endpoint becomes unreachable until healed
//!   (models a dead or isolated node; heartbeat misses accumulate);
//! * **drop** — the next N calls to the endpoint vanish
//!   ([`NetError::Dropped`] — models transient loss);
//! * **corrupt** — the next call's request frame has one seeded bit
//!   flipped in flight (models wire damage; the server's frame
//!   validation must reject it).
//!
//! The named methods ([`partition`](LoopbackTransport::partition),
//! [`drop_next_calls`](LoopbackTransport::drop_next_calls), …) are thin
//! wrappers over [`inject`](LoopbackTransport::inject) — kept because
//! the failure suites read better with them, but there is exactly one
//! fault state underneath.

use crate::fault::{Fault, FaultInjector, FaultPlan, FaultVerdict};
use crate::transport::{Conn, Handler, NetError, ServerHandle, Transport};
use kairos_types::SplitMix64;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct LoopbackState {
    endpoints: BTreeMap<String, Handler>,
    faults: FaultPlan,
}

/// The in-memory transport. `Clone` shares the registry (and the fault
/// plan), so tests hold one handle while nodes hold others.
#[derive(Clone)]
pub struct LoopbackTransport {
    state: Arc<Mutex<LoopbackState>>,
    rng: Arc<Mutex<SplitMix64>>,
}

impl Default for LoopbackTransport {
    fn default() -> LoopbackTransport {
        LoopbackTransport::new()
    }
}

impl LoopbackTransport {
    pub fn new() -> LoopbackTransport {
        LoopbackTransport::with_seed(0x100B_BAC4)
    }

    /// Seed only feeds fault injection (corruption bit positions); a
    /// fault-free loopback is deterministic regardless.
    pub fn with_seed(seed: u64) -> LoopbackTransport {
        LoopbackTransport {
            state: Arc::new(Mutex::new(LoopbackState::default())),
            rng: Arc::new(Mutex::new(SplitMix64::new(seed))),
        }
    }

    /// Arm one [`Fault`] against `endpoint` on the shared [`FaultPlan`].
    pub fn inject(&self, endpoint: &str, fault: Fault) {
        self.state
            .lock()
            .expect("loopback state lock")
            .faults
            .inject(endpoint, fault);
    }

    /// Make `endpoint` unreachable (calls fail with
    /// [`NetError::Unreachable`]) until [`LoopbackTransport::heal`].
    pub fn partition(&self, endpoint: &str) {
        self.inject(endpoint, Fault::Partition);
    }

    /// Undo a [`LoopbackTransport::partition`] — and, per the
    /// [`crate::fault`] contract, cancel every pending one-shot fault
    /// on the endpoint: it comes back clean.
    pub fn heal(&self, endpoint: &str) {
        self.state
            .lock()
            .expect("loopback state lock")
            .faults
            .heal(endpoint);
    }

    /// Heal every endpoint (a chaos schedule's end-of-faults barrier).
    pub fn heal_all(&self) {
        self.state
            .lock()
            .expect("loopback state lock")
            .faults
            .heal_all();
    }

    /// Drop the next `n` calls to `endpoint` ([`NetError::Dropped`]).
    pub fn drop_next_calls(&self, endpoint: &str, n: u64) {
        self.inject(endpoint, Fault::DropNext(n));
    }

    /// Flip one seeded bit in the next `n` request frames sent to
    /// `endpoint` — in-flight corruption the server must reject.
    pub fn corrupt_next_calls(&self, endpoint: &str, n: u64) {
        self.inject(endpoint, Fault::CorruptNext(n));
    }

    /// Flip one seeded bit in the next `n` request frames to `endpoint`
    /// **whose payload tag matches** (see [`crate::rpc::wire_tag`]) —
    /// targeted mid-handshake damage: reservations and ticks flow clean,
    /// the `Admit` arrives broken. Rules queue per endpoint, so a test
    /// can arm `Admit` and `Owns` corruption before the round starts.
    pub fn corrupt_next_calls_matching(&self, endpoint: &str, tag: u32, n: u64) {
        self.inject(endpoint, Fault::CorruptNextMatching { tag, n });
    }

    /// Endpoints currently served (diagnostics).
    pub fn endpoints(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("loopback state lock")
            .endpoints
            .keys()
            .cloned()
            .collect()
    }
}

/// The generic fault surface (see [`crate::fault::FaultInjector`]):
/// delegates to the inherent methods so the chaos harness can drive the
/// loopback and the [`crate::FaultedTransport`] decorator identically.
impl FaultInjector for LoopbackTransport {
    fn inject_fault(&self, endpoint: &str, fault: Fault) {
        self.inject(endpoint, fault);
    }

    fn heal(&self, endpoint: &str) {
        LoopbackTransport::heal(self, endpoint);
    }

    fn heal_all(&self) {
        LoopbackTransport::heal_all(self);
    }
}

impl Transport for LoopbackTransport {
    fn serve(&self, endpoint: &str, handler: Handler) -> Result<ServerHandle, NetError> {
        let mut state = self.state.lock().expect("loopback state lock");
        if state.endpoints.contains_key(endpoint) {
            return Err(NetError::Protocol(format!(
                "endpoint {endpoint} already served"
            )));
        }
        state.endpoints.insert(endpoint.to_string(), handler);
        let registry = self.state.clone();
        let unbind = endpoint.to_string();
        Ok(ServerHandle::new(endpoint.to_string(), move || {
            registry
                .lock()
                .expect("loopback state lock")
                .endpoints
                .remove(&unbind);
        }))
    }

    fn connect(&self, endpoint: &str) -> Result<Box<dyn Conn>, NetError> {
        // Connections are lazy (like TCP reconnection logic, resolution
        // happens per call), but fail fast here if nothing is served so
        // misconfigured tests surface immediately.
        let state = self.state.lock().expect("loopback state lock");
        if !state.endpoints.contains_key(endpoint) {
            return Err(NetError::Unreachable(endpoint.to_string()));
        }
        Ok(Box::new(LoopbackConn {
            endpoint: endpoint.to_string(),
            state: self.state.clone(),
            rng: self.rng.clone(),
        }))
    }
}

struct LoopbackConn {
    endpoint: String,
    state: Arc<Mutex<LoopbackState>>,
    rng: Arc<Mutex<SplitMix64>>,
}

impl Conn for LoopbackConn {
    fn call(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        // Resolve faults and the handler under the registry lock, then
        // release it before dispatching — the handler may itself hold
        // long-running locks (a shard mid-solve) and must not serialize
        // against registry mutations.
        let (handler, corrupt) = {
            let mut state = self.state.lock().expect("loopback state lock");
            // The payload tag (request enum variant index) rides at
            // frame bytes 16..20; shorter frames carry no tag.
            let tag = (frame.len() >= 20)
                .then(|| u32::from_le_bytes(frame[16..20].try_into().expect("sized slice")));
            let corrupt = match state.faults.next_call(&self.endpoint, tag) {
                FaultVerdict::Unreachable => {
                    return Err(NetError::Unreachable(self.endpoint.clone()))
                }
                FaultVerdict::Drop => return Err(NetError::Dropped),
                FaultVerdict::Deliver { corrupt } => corrupt,
            };
            let handler = state
                .endpoints
                .get(&self.endpoint)
                .cloned()
                .ok_or_else(|| NetError::Unreachable(self.endpoint.clone()))?;
            (handler, corrupt)
        };
        let mut owned;
        let frame = if corrupt {
            owned = frame.to_vec();
            let mut rng = self.rng.lock().expect("loopback rng lock");
            let byte = rng.next_range(owned.len() as u64) as usize;
            let bit = rng.next_range(8) as u8;
            owned[byte] ^= 1 << bit;
            owned.as_slice()
        } else {
            frame
        };
        let mut handler = handler.lock().expect("loopback handler lock");
        Ok(handler(frame))
    }

    fn endpoint(&self) -> &str {
        &self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;

    fn echo_handler() -> Handler {
        Arc::new(Mutex::new(|frame: &[u8]| frame.to_vec()))
    }

    #[test]
    fn serve_call_and_unbind() {
        let t = LoopbackTransport::new();
        let handle = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        let msg = frame::encode_frame(&7u64);
        assert_eq!(conn.call(&msg).expect("echoes"), msg);
        handle.stop();
        assert!(matches!(conn.call(&msg), Err(NetError::Unreachable(_))));
    }

    #[test]
    fn partition_and_heal() {
        let t = LoopbackTransport::new();
        let _h = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        t.partition("a");
        assert!(matches!(conn.call(b"x"), Err(NetError::Unreachable(_))));
        t.heal("a");
        assert!(conn.call(b"x").is_ok());
    }

    #[test]
    fn drops_are_counted() {
        let t = LoopbackTransport::new();
        let _h = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        t.drop_next_calls("a", 2);
        assert!(matches!(conn.call(b"x"), Err(NetError::Dropped)));
        assert!(matches!(conn.call(b"x"), Err(NetError::Dropped)));
        assert!(conn.call(b"x").is_ok());
    }

    #[test]
    fn heal_cancels_drops_scheduled_before_the_partition() {
        // The satellite bug: drops armed before a partition used to
        // survive the heal and fire arbitrarily later. The documented
        // precedence says a heal cancels them.
        let t = LoopbackTransport::new();
        let _h = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        t.drop_next_calls("a", 3);
        t.partition("a");
        assert!(matches!(conn.call(b"x"), Err(NetError::Unreachable(_))));
        t.heal("a");
        assert!(conn.call(b"x").is_ok(), "healed endpoint comes back clean");
        assert!(conn.call(b"x").is_ok());
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let t = LoopbackTransport::new();
        let _h = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        t.corrupt_next_calls("a", 1);
        let msg = frame::encode_frame(&(String::from("x"), 3u32));
        let echoed = conn.call(&msg).expect("delivered, damaged");
        let diff: u32 = msg
            .iter()
            .zip(&echoed)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped in flight");
        assert_eq!(conn.call(&msg).expect("clean again"), msg);
    }

    #[test]
    fn matching_corruption_rules_queue_per_endpoint() {
        let t = LoopbackTransport::new();
        let _h = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        // Two different request kinds, armed up front.
        let ping = frame::encode_frame(&crate::rpc::Request::Ping);
        let tick = frame::encode_frame(&crate::rpc::Request::Tick);
        let ping_tag = crate::rpc::wire_tag(&crate::rpc::Request::Ping);
        let tick_tag = crate::rpc::wire_tag(&crate::rpc::Request::Tick);
        t.corrupt_next_calls_matching("a", ping_tag, 1);
        t.corrupt_next_calls_matching("a", tick_tag, 1);
        // Tick fires its rule even though Ping's queued first.
        assert_ne!(conn.call(&tick).expect("damaged"), tick);
        assert_ne!(conn.call(&ping).expect("damaged"), ping);
        assert_eq!(conn.call(&ping).expect("clean"), ping);
        assert_eq!(conn.call(&tick).expect("clean"), tick);
    }
}
