//! The schedule interpreter: one full RPC fleet, one [`Schedule`], and
//! an invariant suite asserted after **every tick**.
//!
//! The fleet runs over a [`FaultedTransport`] — the fault-injecting
//! decorator — wrapped around a pluggable backend
//! ([`ChaosBackend::Loopback`] by default, [`ChaosBackend::Tcp`] for
//! real sockets via `KAIROS_CHAOS_TRANSPORT=tcp`), so the full
//! schedule grammar drives either backend through one code path.
//!
//! The driver is three phases on one tick loop:
//!
//! 1. **warmup** — the fleet bootstraps, plans, and takes its first
//!    checkpoint; no faults yet (chaos against an unbootstrapped fleet
//!    only finds startup races the generator didn't mean to schedule);
//! 2. **fault window** — scheduled faults apply at their ticks;
//!    checkpoints keep landing on cadence so crashes have something
//!    recent to restore from;
//! 3. **settle** — everything healed/restored (forced at the window
//!    edge if the schedule didn't), the fleet must *converge*: parked
//!    handoffs drain, audits complete within budget, conservation holds
//!    exactly.
//!
//! Per-tick invariants read shard **ground truth** directly (the node
//! objects, not RPCs) so a partition can't blind the checker:
//!
//! * no tenant owned by two live shards (never duplicated);
//! * every owned tenant is routed to its owner (map/ownership agree);
//! * every tenant routed to a live shard but owned by nobody is in the
//!   balancer's parked lot (never silently lost).
//!
//! Determinism: the transport's corruption bit-flips are seeded from
//! the schedule's seed, the fleet is single-threaded, and nothing here
//! reads clocks — so a rerun of the same schedule produces the same
//! [`RunOutcome::fingerprint`] byte for byte, per backend. The sweep
//! binary spot-checks exactly that, and a violation report carries the
//! why-chain (the decision-trace tail) for the failing run.

use crate::schedule::{ChaosFault, GeneratorBounds, Schedule};
use kairos_controller::{ControllerConfig, SyntheticSource};
use kairos_fleet::{BalancerConfig, FleetConfig};
use kairos_net::{
    BalancerNode, FaultInjector, FaultedTransport, LeaseConfig, LoopbackTransport, Request,
    ServerHandle, ShardNode, SourceEscrow, Transport,
};
use kairos_obs::why::render_event;
use kairos_types::Bytes;
use kairos_workloads::RatePattern;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The backend the fault-injecting decorator wraps. Every run goes
/// through [`FaultedTransport`] either way — the schedule grammar and
/// its precedence contract are identical; only the bytes' ride differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaosBackend {
    /// Deterministic in-memory dispatch (the sweep's default).
    #[default]
    Loopback,
    /// Real `std::net` sockets on kernel-assigned loopback ports; the
    /// decorator routes the schedule's logical endpoint names.
    Tcp,
}

impl ChaosBackend {
    /// `KAIROS_CHAOS_TRANSPORT=tcp|loopback` (default loopback).
    pub fn from_env() -> ChaosBackend {
        match std::env::var("KAIROS_CHAOS_TRANSPORT").as_deref() {
            Ok("tcp") => ChaosBackend::Tcp,
            _ => ChaosBackend::Loopback,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ChaosBackend::Loopback => "loopback",
            ChaosBackend::Tcp => "tcp",
        }
    }

    fn transport(self, seed: u64) -> FaultedTransport {
        match self {
            ChaosBackend::Loopback => {
                FaultedTransport::new(Arc::new(LoopbackTransport::with_seed(seed)), seed)
            }
            ChaosBackend::Tcp => FaultedTransport::over_tcp(seed),
        }
    }
}

/// The balancer's lease endpoint — restored shard nodes announce here
/// and the balancer reconciles at its next tick (self-healing
/// membership; no supervisor-driven rejoin anywhere in the driver).
const LEASE_ENDPOINT: &str = "balancer-lease";

/// The fleet the schedules run against. Small on purpose: the sweep
/// runs hundreds of these, and every fault class fires just as well
/// against 3 shards as 30.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    pub shards: usize,
    /// Evenly-loaded base tenants per shard.
    pub tenants_per_shard: usize,
    /// Extra heavy tenants stacked on shard 0, so the fleet starts
    /// over budget there and must shed — chaos hits live handoffs, not
    /// an idle fleet.
    pub heavies: usize,
    /// Ticks before the fault window opens (bootstrap + first plan +
    /// first checkpoint).
    pub warmup: u64,
    /// Width of the fault window.
    pub window: u64,
    /// Ticks after forced heal for the fleet to converge.
    pub settle: u64,
    pub machines_per_shard: usize,
    pub balance_every: u64,
    /// Checkpoint cadence (ticks, from warmup) — the crash/restore
    /// fault class restores from the latest of these.
    pub checkpoint_every: u64,
    pub miss_limit: u32,
    /// Sketch shape every shard compresses summaries and handoff
    /// frames with. Default is the controller default; the sketched
    /// chaos leg tightens it so faulted handoffs cross with genuinely
    /// lossy frames.
    pub sketch: kairos_traces::SketchConfig,
    /// Run with causal span tracing armed on the balancer and every
    /// shard (including restored ones). The span logs then join the
    /// determinism fingerprint, so a rerun must reproduce the whole
    /// cross-node span forest byte-for-byte — not just the decision
    /// traces.
    pub spans: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            shards: 3,
            tenants_per_shard: 4,
            heavies: 3,
            warmup: 12,
            window: 24,
            settle: 40,
            machines_per_shard: 2,
            balance_every: 4,
            checkpoint_every: 8,
            miss_limit: 3,
            sketch: kairos_traces::SketchConfig::default(),
            spans: false,
        }
    }
}

impl ChaosConfig {
    /// The generator bounds this fleet implies.
    pub fn bounds(&self) -> GeneratorBounds {
        GeneratorBounds {
            window_start: self.warmup,
            window_end: self.warmup + self.window,
            shards: self.shards,
            miss_limit: self.miss_limit as u64,
        }
    }

    pub fn total_ticks(&self) -> u64 {
        self.warmup + self.window + self.settle
    }

    fn fleet_cfg(&self) -> FleetConfig {
        FleetConfig {
            shards: self.shards,
            shard: ControllerConfig {
                horizon: 8,
                check_every: 4,
                cooldown_ticks: 8,
                sketch: self.sketch,
                ..ControllerConfig::default()
            },
            balancer: BalancerConfig {
                machines_per_shard: self.machines_per_shard,
                balance_every: self.balance_every,
                max_moves_per_round: 2,
                cooldown_rounds: 0,
                ..BalancerConfig::default()
            },
            tick_threads: 1,
        }
    }
}

/// A broken invariant: which one, when, and the decision-trace tail
/// that explains the fleet's path into it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub tick: u64,
    pub invariant: String,
    pub detail: String,
    /// Rendered tail of the balancer's decision trace — the why-chain
    /// a failing sweep prints next to the minimal schedule.
    pub why: Vec<String>,
}

impl Violation {
    pub fn render(&self) -> String {
        let mut out = format!(
            "invariant violated at tick {}: {}\n  {}\n  why (decision-trace tail):\n",
            self.tick, self.invariant, self.detail
        );
        for line in &self.why {
            out.push_str(&format!("    {line}\n"));
        }
        out
    }
}

/// What a run produced besides pass/fail — the human-facing summary
/// (deliberately **not** part of the fingerprint).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    pub ticks: u64,
    pub faults_applied: usize,
    pub handoffs_completed: u64,
    pub handoffs_failed: u64,
    pub parked_peak: usize,
    /// Percentiles of the per-tick live-owned-tenant count: p0 dips
    /// while tenants sit parked or crashed, p100 is the registered
    /// total. [`kairos_obs::Histogram`] semantics (upper bucket bounds).
    pub owned_p0: u64,
    pub owned_p50: u64,
    pub owned_p100: u64,
}

/// One interpreted schedule: the first violation (if any), the
/// determinism fingerprint, and the report.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub violation: Option<Violation>,
    /// Byte-exact digest of the run's observable behaviour: the
    /// balancer decision trace, every shard's decision trace, the
    /// handoff log, and the final routing map. Two runs of the same
    /// schedule must produce identical bytes — the chaos harness's
    /// determinism oracle.
    pub fingerprint: Vec<u8>,
    pub report: RunReport,
}

impl RunOutcome {
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// `name → tps`, derived from the name so a restored shard rebuilds
/// byte-identical sources. Heavies (`-h` names) run hot.
fn tps_of(name: &str) -> f64 {
    let h = name
        .bytes()
        .fold(7u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
    let base = if name.contains("-h") { 500.0 } else { 180.0 };
    base + (h % 80) as f64
}

fn make_source(name: &str) -> SyntheticSource {
    SyntheticSource::new(
        name.to_string(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps: tps_of(name) },
    )
    .with_noise(0.0)
}

/// Last checkpoint a shard can be restored from.
struct Ckpt {
    path: String,
    /// The shard's tick counter at checkpoint time (sources fast-forward
    /// to here on restore).
    ticks: u64,
}

struct ShardSlot {
    node: Option<ShardNode>,
    handle: Option<ServerHandle>,
    endpoint: String,
    generation: u32,
    ckpt: Option<Ckpt>,
    crashed: bool,
}

static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Interpret `schedule` against a fresh fleet over the default
/// (loopback-backed) decorator. Total: every schedule (generated ones
/// by construction, hand-written ones by the forced heal at the window
/// edge) runs to completion and returns.
pub fn run(cfg: &ChaosConfig, schedule: &Schedule) -> RunOutcome {
    run_on(cfg, schedule, ChaosBackend::default())
}

/// [`run`], with the decorator's backend chosen explicitly.
pub fn run_on(cfg: &ChaosConfig, schedule: &Schedule, backend: ChaosBackend) -> RunOutcome {
    let dir = std::env::temp_dir().join(format!(
        "kairos-chaos-{}-{}",
        std::process::id(),
        RUN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("chaos checkpoint dir");
    let outcome = run_in(cfg, schedule, &dir, backend);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

fn run_in(cfg: &ChaosConfig, schedule: &Schedule, dir: &Path, backend: ChaosBackend) -> RunOutcome {
    let transport = Arc::new(backend.transport(schedule.seed));
    let escrow = SourceEscrow::new();
    let fleet_cfg = cfg.fleet_cfg();

    let mut slots: Vec<ShardSlot> = Vec::new();
    for shard in 0..cfg.shards {
        let node = ShardNode::new(
            fleet_cfg.shard,
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        let endpoint = format!("shard-{shard}");
        let handle = node
            .serve(transport.as_ref(), &endpoint)
            .expect("shard serves");
        slots.push(ShardSlot {
            node: Some(node),
            handle: Some(handle),
            endpoint,
            generation: 0,
            ckpt: None,
            crashed: false,
        });
    }
    let endpoints: Vec<String> = slots.iter().map(|s| s.endpoint.clone()).collect();
    let mut balancer = BalancerNode::connect(
        fleet_cfg,
        LeaseConfig {
            miss_limit: cfg.miss_limit,
        },
        transport.clone(),
        &endpoints,
    )
    .expect("balancer connects");
    if cfg.spans {
        balancer.set_span_tracing(true);
        for (shard, slot) in slots.iter().enumerate() {
            if let Some(node) = &slot.node {
                node.with_shard(|s| {
                    s.configure_spans(kairos_obs::span::node_for_shard(shard), true)
                });
            }
        }
    }
    // Served so restored nodes can announce themselves back in; never
    // the target of a scheduled fault, so self-healing is reachable
    // whenever the node's side of the link is.
    let _lease = balancer
        .serve_lease(transport.as_ref(), LEASE_ENDPOINT)
        .expect("lease endpoint serves");

    let mut registered: BTreeSet<String> = BTreeSet::new();
    for shard in 0..cfg.shards {
        for i in 0..cfg.tenants_per_shard {
            let name = format!("c{shard}-t{i}");
            escrow.park(Box::new(make_source(&name)));
            balancer
                .add_workload_to(shard, &name, 1)
                .expect("registers");
            registered.insert(name);
        }
    }
    for i in 0..cfg.heavies {
        let name = format!("c0-h{i}");
        escrow.park(Box::new(make_source(&name)));
        balancer.add_workload_to(0, &name, 1).expect("registers");
        registered.insert(name);
    }

    let admit_tag = kairos_net::rpc::wire_tag(&Request::Admit { frame: Vec::new() });
    let evict_tag = kairos_net::rpc::wire_tag(&Request::Evict {
        tenant: String::new(),
    });
    let owns_tag = kairos_net::rpc::wire_tag(&Request::Owns {
        tenant: String::new(),
    });

    let mut report = RunReport::default();
    let owned_hist = kairos_obs::MetricsRegistry::new().histogram("chaos_owned_per_tick");
    let window_end = cfg.warmup + cfg.window;
    let mut fault_cursor = 0usize;
    let mut violation: Option<Violation> = None;

    'ticks: for t in 0..cfg.total_ticks() {
        // Checkpoints land before faults: a crash at tick T may restore
        // from tick T's checkpoint, never from post-crash state.
        if t >= cfg.warmup && (t - cfg.warmup).is_multiple_of(cfg.checkpoint_every) {
            let dir_str = dir.to_string_lossy().to_string();
            for (shard, result) in balancer.checkpoint_shards(&dir_str).into_iter().enumerate() {
                if let Ok(path) = result {
                    let ticks = slots[shard]
                        .node
                        .as_ref()
                        .map(|n| n.with_shard(|s| s.stats().ticks))
                        .unwrap_or(0);
                    slots[shard].ckpt = Some(Ckpt { path, ticks });
                }
            }
        }

        while fault_cursor < schedule.faults.len() && schedule.faults[fault_cursor].tick == t {
            let fault = schedule.faults[fault_cursor].fault.clone();
            fault_cursor += 1;
            apply_fault(
                &fault,
                t,
                cfg,
                &transport,
                &escrow,
                &mut slots,
                &mut balancer,
                (admit_tag, evict_tag, owns_tag),
            );
            report.faults_applied += 1;
        }

        // Forced heal at the window edge: whatever the schedule left
        // broken gets repaired so the settle phase demands convergence.
        if t == window_end {
            transport.heal_all();
            for shard in 0..cfg.shards {
                if slots[shard].crashed {
                    restore_shard(
                        shard,
                        t,
                        cfg,
                        &transport,
                        &escrow,
                        &mut slots,
                        &mut balancer,
                    );
                }
            }
            // Partition-downed (not crashed) shards heal themselves the
            // same way a restored one does: announce, reconcile at the
            // balancer's next tick.
            for shard in balancer.down_shards() {
                announce(shard, &transport, &slots);
            }
        }

        balancer.tick();
        report.ticks = t + 1;
        report.parked_peak = report.parked_peak.max(balancer.parked_handoffs().len());

        // ---- the per-tick invariant suite --------------------------------
        let parked: BTreeSet<String> = balancer
            .parked_handoffs()
            .into_iter()
            .map(|(tenant, _, _)| tenant)
            .collect();
        let mut owned_by: Vec<(String, usize)> = Vec::new();
        for (shard, slot) in slots.iter().enumerate() {
            let Some(node) = &slot.node else { continue };
            for name in node.with_shard(|s| s.workloads()) {
                owned_by.push((name, shard));
            }
        }
        owned_hist.record(owned_by.len() as u64);
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (name, shard) in &owned_by {
            if !seen.insert(name.as_str()) {
                violation = Some(violate(
                    t,
                    "no-tenant-duplicated",
                    format!("{name} owned by two live shards"),
                    &balancer,
                ));
                break 'ticks;
            }
            if balancer.map().shard_of(name) != Some(*shard) {
                violation = Some(violate(
                    t,
                    "map-agrees-with-ownership",
                    format!(
                        "{name} owned by shard {shard} but routed to {:?}",
                        balancer.map().shard_of(name)
                    ),
                    &balancer,
                ));
                break 'ticks;
            }
        }
        for name in &registered {
            let Some(route) = balancer.map().shard_of(name) else {
                violation = Some(violate(
                    t,
                    "no-tenant-lost",
                    format!("{name} fell out of the routing map"),
                    &balancer,
                ));
                break 'ticks;
            };
            if slots[route].crashed {
                continue; // unreadable until restore; conservation re-checked then
            }
            let owned = seen.contains(name.as_str());
            if !owned && !parked.contains(name) {
                violation = Some(violate(
                    t,
                    "no-tenant-lost",
                    format!(
                        "{name} routed to live shard {route} but owned by nobody and not parked"
                    ),
                    &balancer,
                ));
                break 'ticks;
            }
        }
    }

    // ---- end-of-run convergence suite (only if still clean) -------------
    if violation.is_none() {
        let t = cfg.total_ticks();
        let parked = balancer.parked_handoffs();
        if !parked.is_empty() {
            violation = Some(violate(
                t,
                "parked-handoffs-drain",
                format!(
                    "{} handoffs still parked after settle: {parked:?}",
                    parked.len()
                ),
                &balancer,
            ));
        }
    }
    if violation.is_none() {
        let t = cfg.total_ticks();
        let mut owned: BTreeSet<String> = BTreeSet::new();
        'conserve: for (shard, slot) in slots.iter().enumerate() {
            let node = slot.node.as_ref().expect("all shards restored by settle");
            for name in node.with_shard(|s| s.workloads()) {
                if !owned.insert(name.clone()) {
                    violation = Some(violate(
                        t,
                        "ownership-conservation",
                        format!("{name} owned twice at end of run"),
                        &balancer,
                    ));
                    break 'conserve;
                }
                if balancer.map().shard_of(&name) != Some(shard) {
                    violation = Some(violate(
                        t,
                        "ownership-conservation",
                        format!("{name} owned by {shard} but routed elsewhere at end of run"),
                        &balancer,
                    ));
                    break 'conserve;
                }
            }
        }
        if violation.is_none() && owned != registered {
            let lost: Vec<&String> = registered.difference(&owned).collect();
            let extra: Vec<&String> = owned.difference(&registered).collect();
            violation = Some(violate(
                t,
                "ownership-conservation",
                format!("end-of-run census mismatch: lost {lost:?}, extra {extra:?}"),
                &balancer,
            ));
        }
    }
    if violation.is_none() {
        let t = cfg.total_ticks();
        let audit = balancer.audit();
        if !audit.complete() {
            violation = Some(violate(
                t,
                "audit-complete",
                "a shard never re-audited after heal".into(),
                &balancer,
            ));
        } else if !audit.zero_violations() {
            violation = Some(violate(
                t,
                "audit-zero-violations",
                "capacity violation survived settle".into(),
                &balancer,
            ));
        } else if !audit.within_budget(cfg.machines_per_shard) {
            violation = Some(violate(
                t,
                "audit-within-budget",
                format!(
                    "machines used {:?} > budget {}",
                    audit.machines_used, cfg.machines_per_shard
                ),
                &balancer,
            ));
        }
    }

    let stats = balancer.stats();
    report.handoffs_completed = stats.handoffs_completed;
    report.handoffs_failed = stats.handoffs_failed;
    report.owned_p0 = owned_hist.percentile(0.0);
    report.owned_p50 = owned_hist.percentile(0.5);
    report.owned_p100 = owned_hist.percentile(1.0);

    // ---- determinism fingerprint ----------------------------------------
    let mut fingerprint = balancer.trace_bytes();
    for shard in 0..cfg.shards {
        fingerprint.extend_from_slice(&(shard as u64).to_le_bytes());
        if let Some(trace) = balancer.shard_trace(shard) {
            fingerprint.extend_from_slice(&trace);
        }
    }
    fingerprint.extend_from_slice(format!("{:?}", balancer.handoffs()).as_bytes());
    for shard in 0..cfg.shards {
        fingerprint.extend_from_slice(balancer.map().tenants_of(shard).join(",").as_bytes());
        fingerprint.push(b';');
    }
    if cfg.spans {
        // The span forest is part of observable behaviour when armed:
        // the balancer's own spans plus every shard's, the latter
        // fetched over the `Spans` RPC so the wire path is in the
        // oracle too.
        fingerprint.extend_from_slice(&balancer.span_bytes());
        for shard in 0..cfg.shards {
            fingerprint.extend_from_slice(&(shard as u64).to_le_bytes());
            if let Some(spans) = balancer.shard_spans(shard) {
                fingerprint.extend_from_slice(&spans);
            }
        }
    }

    RunOutcome {
        violation,
        fingerprint,
        report,
    }
}

fn violate(tick: u64, invariant: &str, detail: String, balancer: &BalancerNode) -> Violation {
    let events = balancer.trace_events();
    let why = events
        .iter()
        .rev()
        .take(12)
        .rev()
        .map(|e| format!("t={:<4} {}", e.tick, render_event(&e.event)))
        .collect();
    Violation {
        tick,
        invariant: invariant.to_string(),
        detail,
        why,
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_fault(
    fault: &ChaosFault,
    tick: u64,
    cfg: &ChaosConfig,
    transport: &Arc<FaultedTransport>,
    escrow: &SourceEscrow,
    slots: &mut [ShardSlot],
    balancer: &mut BalancerNode,
    (admit_tag, evict_tag, owns_tag): (u32, u32, u32),
) {
    match *fault {
        ChaosFault::Partition { shard } => {
            if !slots[shard].crashed {
                transport.partition(&slots[shard].endpoint);
            }
        }
        ChaosFault::Heal { shard } => {
            transport.heal(&slots[shard].endpoint);
            if !slots[shard].crashed && balancer.down_shards().contains(&shard) {
                announce(shard, transport, slots);
            }
        }
        ChaosFault::Crash { shard } => {
            // Refuse a crash that has nothing to restore from — the
            // generator never schedules one, but a shrunk or
            // hand-written schedule might.
            if slots[shard].crashed || slots[shard].ckpt.is_none() {
                return;
            }
            if let Some(handle) = slots[shard].handle.take() {
                handle.stop();
            }
            slots[shard].node = None; // in-memory state (and live sources) die here
            transport.partition(&slots[shard].endpoint);
            slots[shard].crashed = true;
        }
        ChaosFault::Restore { shard } => {
            if slots[shard].crashed {
                restore_shard(shard, tick, cfg, transport, escrow, slots, balancer);
            }
        }
        ChaosFault::DropCalls { shard, n } => {
            transport.drop_next_calls(&slots[shard].endpoint, n);
        }
        ChaosFault::CorruptAdmit { shard } => {
            transport.corrupt_next_calls_matching(&slots[shard].endpoint, admit_tag, 1);
        }
        ChaosFault::CorruptEvict { shard } => {
            transport.corrupt_next_calls_matching(&slots[shard].endpoint, evict_tag, 1);
        }
        ChaosFault::CorruptOwns { shard } => {
            transport.corrupt_next_calls_matching(&slots[shard].endpoint, owns_tag, 1);
        }
        ChaosFault::SkipRound { n } => balancer.skip_balance_rounds(n),
        ChaosFault::DelayRound { n } => balancer.delay_balance_rounds(n),
    }
}

/// The self-healing path: the node announces `(shard, endpoint,
/// generation)` to the balancer's lease endpoint; the balancer drains
/// announces at the top of its next tick and reconciles via rejoin.
/// An undeliverable announce retries on the node's `Tick` dispatches
/// with bounded deterministic backoff.
fn announce(shard: usize, transport: &Arc<FaultedTransport>, slots: &[ShardSlot]) {
    if let Some(node) = &slots[shard].node {
        let shared: Arc<dyn Transport> = transport.clone();
        node.announce_via(
            shared,
            LEASE_ENDPOINT,
            shard as u64,
            &slots[shard].endpoint,
            u64::from(slots[shard].generation),
        );
    }
}

/// Bring a crashed shard back: reconstructed sources parked for every
/// tenant the checkpoint (or the map, for post-checkpoint arrivals)
/// says it should hold, node restored from the checkpoint, served on a
/// fresh endpoint — which then announces itself to the balancer
/// (reconciling stale/lost tenants against the routing map at the
/// balancer's next tick).
#[allow(clippy::too_many_arguments)]
fn restore_shard(
    shard: usize,
    _tick: u64,
    cfg: &ChaosConfig,
    transport: &Arc<FaultedTransport>,
    escrow: &SourceEscrow,
    slots: &mut [ShardSlot],
    balancer: &mut BalancerNode,
) {
    let ckpt = slots[shard]
        .ckpt
        .as_ref()
        .expect("crash implies checkpoint");
    let mut rebind: BTreeSet<String> = balancer.map().tenants_of(shard).into_iter().collect();
    // Parked handoffs touching this shard may land at either end once
    // the lot retries; their live sources died with the crash, so make
    // them reconstructible too.
    for (tenant, donor, receiver) in balancer.parked_handoffs() {
        if donor == shard || receiver == shard {
            rebind.insert(tenant);
        }
    }
    for name in rebind {
        escrow.park(Box::new(make_source(&name).fast_forward(ckpt.ticks)));
    }
    let node = ShardNode::restore_from(
        balancer.config().shard,
        kairos_core::ConsolidationEngine::builder().build(),
        Path::new(&ckpt.path),
        Box::new(escrow.clone()),
    )
    .expect("checkpoint restores");
    if cfg.spans {
        // Span logs are in-memory only: the restored node starts an
        // empty log (deterministically — a rerun crashes and restores
        // at the same ticks), but must record from here on.
        node.with_shard(|s| s.configure_spans(kairos_obs::span::node_for_shard(shard), true));
    }
    slots[shard].generation += 1;
    let endpoint = format!("shard-{shard}-g{}", slots[shard].generation);
    let handle = node
        .serve(transport.as_ref(), &endpoint)
        .expect("restored shard serves");
    slots[shard].node = Some(node);
    slots[shard].handle = Some(handle);
    slots[shard].endpoint = endpoint;
    slots[shard].crashed = false;
    announce(shard, transport, slots);
}

/// Checkpoint directory helper for tests that drive `run_in` shapes.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kairos-chaos-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}
