//! The control loop: poll telemetry, detect drift, re-plan, migrate.
//!
//! One [`Controller::tick`] = one monitoring interval of the whole fleet.
//! The loop bootstraps by observing every workload for a full planning
//! horizon, plans once (cold solve + provisioning), then stays quiet
//! until either the drift detector trips or fleet membership changes —
//! at which point it re-solves *warm* with a migration-cost objective and
//! executes the resulting capacity-safe move list.

use crate::drift::{DriftDetector, DriftReport};
use crate::executor::{ExecutionReport, FleetExecutor};
use crate::ingest::{TelemetryConfig, TelemetryIngester, TelemetrySource};
use crate::migration::plan_migration;
use crate::resolver::{forecast_profile, FleetPlacement, ReSolver};
use kairos_core::ConsolidationEngine;
use kairos_solver::{evaluate, Assignment, Evaluation, SolverConfig};
use kairos_types::WorkloadProfile;
use std::collections::BTreeMap;
use std::time::Instant;

/// Loop tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    pub telemetry: TelemetryConfig,
    /// Planning horizon, in monitoring windows. Periodic workloads are
    /// only well-represented when the horizon covers their cycle.
    pub horizon: usize,
    /// Drift-check cadence: every N ticks once planned.
    pub check_every: u64,
    /// Ticks after any (re-)plan during which drift checks are skipped,
    /// letting the rolling window refill with the new regime before being
    /// judged again. Without it, a window still mixing pre- and
    /// post-change samples re-trips the detector and the loop thrashes.
    pub cooldown_ticks: u64,
    pub detector: DriftDetector,
    /// Objective price per migrated slot on re-solves.
    pub cost_per_move: f64,
    /// Warm re-solve budgets.
    pub solver: SolverConfig,
    /// Measurement mode: re-solve cold (no warm start, no migration
    /// term) to quantify what the incumbent-aware path saves.
    pub cold_resolves: bool,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            telemetry: TelemetryConfig {
                interval_secs: 300.0,
                window_capacity: 288,
                gauged_working_set: None,
            },
            horizon: 24,
            check_every: 6,
            cooldown_ticks: 24,
            detector: DriftDetector::default(),
            cost_per_move: 0.25,
            solver: SolverConfig {
                probe_evals: 400,
                final_evals: 2_000,
                polish_rounds: 60,
                ..Default::default()
            },
            cold_resolves: false,
        }
    }
}

/// Why a re-plan happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplanReason {
    /// These workloads' live windows left their planned envelopes.
    Drift(Vec<String>),
    /// Workloads arrived or departed.
    Membership,
}

/// Summary of one re-plan.
#[derive(Debug, Clone)]
pub struct ReplanSummary {
    pub reason: ReplanReason,
    pub feasible: bool,
    /// Pre-existing slots relocated.
    pub moves: usize,
    /// `moves / pre-existing slots`.
    pub churn: f64,
    pub machines: usize,
    pub execution: ExecutionReport,
    /// Wall-clock seconds spent in the solver.
    pub solve_secs: f64,
}

/// What one tick did.
#[derive(Debug, Clone)]
pub enum TickOutcome {
    /// Still accumulating the bootstrap horizon.
    Bootstrapping,
    /// First plan produced and the fleet provisioned.
    InitialPlan { machines: usize, solve_secs: f64 },
    /// Drift was checked; nothing left its envelope.
    Stable,
    /// Off-cadence tick: telemetry ingested, nothing else to do.
    Idle,
    /// Drift or membership change forced a re-plan.
    Replanned(ReplanSummary),
}

/// Running counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    pub ticks: u64,
    pub samples_ingested: u64,
    pub drift_checks: u64,
    pub resolves: u64,
    pub total_moves: u64,
    pub forced_steps: u64,
    pub bytes_copied: f64,
    pub max_churn: f64,
    pub solve_secs_total: f64,
}

/// The online consolidation daemon.
pub struct Controller {
    cfg: ControllerConfig,
    ingester: TelemetryIngester,
    sources: BTreeMap<String, Box<dyn TelemetrySource>>,
    resolver: ReSolver,
    executor: FleetExecutor,
    placement: FleetPlacement,
    /// Per workload: the profile its current placement was solved for.
    planned: BTreeMap<String, WorkloadProfile>,
    planned_once: bool,
    membership_changed: bool,
    /// Tick of the most recent (re-)plan, for cooldown accounting.
    last_plan_tick: u64,
    /// Do not attempt another re-plan before this tick (set after a
    /// failed solve so retries are paced, not per-tick).
    replan_backoff_until: u64,
    stats: ControllerStats,
}

impl Controller {
    pub fn new(cfg: ControllerConfig, engine: ConsolidationEngine) -> Controller {
        let mut resolver = ReSolver::new(engine);
        resolver.solver = cfg.solver;
        resolver.cost_per_move = cfg.cost_per_move;
        resolver.cold = cfg.cold_resolves;
        Controller {
            cfg,
            ingester: TelemetryIngester::new(),
            sources: BTreeMap::new(),
            resolver,
            executor: FleetExecutor::new(),
            placement: FleetPlacement::new(),
            planned: BTreeMap::new(),
            planned_once: false,
            membership_changed: false,
            last_plan_tick: 0,
            replan_backoff_until: 0,
            stats: ControllerStats::default(),
        }
    }

    /// Attach a workload's telemetry stream. Arrival of a new workload
    /// after the initial plan triggers a membership re-plan once the
    /// newcomer has enough observed windows.
    pub fn add_workload(&mut self, source: Box<dyn TelemetrySource>) {
        let name = source.name().to_string();
        self.ingester.register(&name, self.cfg.telemetry);
        self.sources.insert(name, source);
        if self.planned_once {
            self.membership_changed = true;
        }
    }

    /// Detach a workload: telemetry dropped, tenant retired, and an
    /// opportunistic repack scheduled (departures free capacity).
    pub fn remove_workload(&mut self, name: &str) {
        self.sources.remove(name);
        self.ingester.deregister(name);
        self.planned.remove(name);
        self.placement.remove_workload(name);
        self.executor.retire(name);
        if self.planned_once {
            self.membership_changed = true;
        }
    }

    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    pub fn placement(&self) -> &FleetPlacement {
        &self.placement
    }

    pub fn executor(&self) -> &FleetExecutor {
        &self.executor
    }

    pub fn workloads(&self) -> Vec<String> {
        self.ingester.names()
    }

    /// One monitoring interval: poll every source, then act.
    pub fn tick(&mut self) -> TickOutcome {
        self.stats.ticks += 1;
        for (name, source) in self.sources.iter_mut() {
            let sample = source.poll();
            self.ingester.ingest(name, &sample);
            self.stats.samples_ingested += 1;
        }

        if !self.planned_once {
            return self.maybe_bootstrap();
        }
        if self.stats.ticks < self.replan_backoff_until {
            return TickOutcome::Idle;
        }
        if self.membership_changed && self.fleet_observable() {
            return self.replan(ReplanReason::Membership);
        }
        let cooled_down =
            self.stats.ticks.saturating_sub(self.last_plan_tick) >= self.cfg.cooldown_ticks;
        if cooled_down && self.stats.ticks.is_multiple_of(self.cfg.check_every) {
            return self.check_drift();
        }
        TickOutcome::Idle
    }

    /// Every registered workload has at least the detector's minimum
    /// window of live samples.
    fn fleet_observable(&self) -> bool {
        self.ingester.names().iter().all(|n| {
            self.ingester
                .get(n)
                .is_some_and(|t| t.window_len() >= self.cfg.detector.min_windows)
        })
    }

    /// Bootstrap: wait until every workload has a full horizon of
    /// observations, then plan cold and provision the fleet.
    fn maybe_bootstrap(&mut self) -> TickOutcome {
        let ready = !self.ingester.is_empty()
            && self.ingester.names().iter().all(|n| {
                self.ingester
                    .get(n)
                    .is_some_and(|t| t.window_len() >= self.cfg.horizon)
            });
        if !ready {
            return TickOutcome::Bootstrapping;
        }
        let profiles = self.forecast_fleet();
        let t0 = Instant::now();
        let plan = match self.resolver.engine.consolidate(&profiles) {
            Ok(p) => p,
            Err(_) => return TickOutcome::Bootstrapping,
        };
        let solve_secs = t0.elapsed().as_secs_f64();
        self.stats.solve_secs_total += solve_secs;

        let problem = self
            .resolver
            .engine
            .problem(&profiles)
            .expect("profiles already consolidated");
        let from = vec![None; problem.slots().len()];
        let migration = plan_migration(&problem, &from, &plan.report.assignment);
        let exec = self.executor.execute(&migration, &problem);
        self.stats.forced_steps += exec.forced_steps as u64;

        self.placement = FleetPlacement::from_plan(&plan);
        self.planned = profiles.into_iter().map(|p| (p.name.clone(), p)).collect();
        self.planned_once = true;
        self.last_plan_tick = self.stats.ticks;
        TickOutcome::InitialPlan {
            machines: plan.machines_used(),
            solve_secs,
        }
    }

    /// Forecast every workload's next horizon from its rolling telemetry.
    fn forecast_fleet(&self) -> Vec<WorkloadProfile> {
        self.ingester
            .names()
            .iter()
            .map(|n| {
                forecast_profile(
                    n,
                    self.ingester.get(n).expect("registered"),
                    self.cfg.horizon,
                )
            })
            .collect()
    }

    /// Compare each live window against its planned profile.
    fn check_drift(&mut self) -> TickOutcome {
        self.stats.drift_checks += 1;
        let mut drifted: Vec<String> = Vec::new();
        for name in self.ingester.names() {
            let Some(planned) = self.planned.get(&name) else {
                // A workload with telemetry but no plan yet (arrival still
                // warming up) is membership, not drift.
                continue;
            };
            let telemetry = self.ingester.get(&name).expect("registered");
            let Some(live) = telemetry.live_profile(&name, self.cfg.horizon) else {
                continue;
            };
            let report =
                self.cfg
                    .detector
                    .check(planned, &live, telemetry.samples_seen().saturating_sub(1));
            if report.drifted {
                drifted.push(report.workload);
            }
        }
        if drifted.is_empty() {
            TickOutcome::Stable
        } else {
            self.replan(ReplanReason::Drift(drifted))
        }
    }

    /// Warm re-solve + capacity-safe migration.
    fn replan(&mut self, reason: ReplanReason) -> TickOutcome {
        let profiles = self.forecast_fleet();
        let t0 = Instant::now();
        let outcome = match self.resolver.resolve(&profiles, &self.placement) {
            Ok(o) => o,
            Err(_) => {
                // Nothing placeable right now (e.g. a workload's forecast
                // momentarily outgrew the machine class). Keep the old
                // plan and leave `membership_changed` untouched so a
                // pending arrival is retried rather than orphaned; back
                // off one check period so a persistently infeasible fleet
                // doesn't pay a full solve every tick.
                self.replan_backoff_until = self.stats.ticks + self.cfg.check_every;
                return TickOutcome::Stable;
            }
        };
        let solve_secs = t0.elapsed().as_secs_f64();

        let migration = plan_migration(
            &outcome.problem,
            &outcome.baseline,
            &outcome.report.assignment,
        );
        let execution = self.executor.execute(&migration, &outcome.problem);

        let churn = outcome.churn();
        self.stats.resolves += 1;
        self.stats.total_moves += outcome.moves as u64;
        self.stats.forced_steps += execution.forced_steps as u64;
        self.stats.bytes_copied += execution.bytes_copied;
        self.stats.max_churn = self.stats.max_churn.max(churn);
        self.stats.solve_secs_total += solve_secs;

        self.placement = outcome.placement;
        self.planned = profiles.into_iter().map(|p| (p.name.clone(), p)).collect();
        self.membership_changed = false;
        self.last_plan_tick = self.stats.ticks;

        TickOutcome::Replanned(ReplanSummary {
            reason,
            feasible: outcome.report.evaluation.feasible,
            moves: outcome.moves,
            churn,
            machines: self.placement.machines_used(),
            execution,
            solve_secs,
        })
    }

    /// Re-evaluate the current placement against the current forecast —
    /// the "is the plan still sound" check exposed for tests and reports.
    /// `None` before the initial plan.
    pub fn verify_current(&self) -> Option<Evaluation> {
        if !self.planned_once {
            return None;
        }
        let profiles = self.forecast_fleet();
        let problem = self.resolver.engine.problem(&profiles).ok()?;
        let slots = problem.slots();
        let mut machine_of = Vec::with_capacity(slots.len());
        for slot in &slots {
            let name = &problem.workloads[slot.workload].name;
            machine_of.push(self.placement.machine_of(name, slot.replica)?);
        }
        Some(evaluate(&problem, &Assignment::new(machine_of)))
    }

    /// Latest drift reports without acting on them (observability hook).
    pub fn drift_snapshot(&self) -> Vec<DriftReport> {
        let mut out = Vec::new();
        for name in self.ingester.names() {
            let (Some(planned), Some(telemetry)) =
                (self.planned.get(&name), self.ingester.get(&name))
            else {
                continue;
            };
            if let Some(live) = telemetry.live_profile(&name, self.cfg.horizon) {
                out.push(self.cfg.detector.check(
                    planned,
                    &live,
                    telemetry.samples_seen().saturating_sub(1),
                ));
            }
        }
        out
    }
}
