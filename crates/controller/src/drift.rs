//! Drift detection: is the live window still the workload the current
//! placement was solved for?
//!
//! The paper's Fig 13 predictability result (weekly periods predict the
//! next week within 7–8 % relative RMSE) justifies planning on a past
//! horizon at all; the same error measure, applied online, tells us when
//! that justification has expired. Each resource series of the live
//! rolling window is compared, phase-aligned, against the planned
//! profile — but *one-sidedly*:
//!
//! * **overload** (live above planned) threatens feasibility and trips
//!   fast;
//! * **slack** (live below planned) only wastes machines, so it trips at
//!   a lazier threshold — scale-up is urgent, scale-down is housekeeping.
//!
//! The split is what lets the loop converge: a re-plan that provisioned a
//! conservative envelope for a new regime sits *above* the live load, and
//! must not itself read as drift.

use kairos_types::WorkloadProfile;

/// One resource's one-sided relative errors.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceDrift {
    /// Relative RMSE of live *excess* over planned (`max(live−planned,0)`),
    /// over the planned mean. Capacity risk.
    pub overload: f64,
    /// Relative RMSE of live *shortfall* under planned. Wasted headroom.
    pub slack: f64,
}

/// Per-workload drift verdict.
#[derive(Debug, Clone)]
pub struct DriftReport {
    pub workload: String,
    pub cpu: ResourceDrift,
    pub ram: ResourceDrift,
    pub working_set: ResourceDrift,
    pub update_rate: ResourceDrift,
    /// Worst overload error across the four resources.
    pub max_overload: f64,
    /// Worst slack error across the four resources.
    pub max_slack: f64,
    /// Did either side trip its threshold (with enough live samples)?
    pub drifted: bool,
}

/// The detector.
#[derive(Debug, Clone, Copy)]
pub struct DriftDetector {
    /// Overload trip point. The paper's predictable fleets sit at
    /// 0.07–0.08 relative error; the default trips at ~3× that, outside
    /// measurement noise but well before saturation.
    pub overload_threshold: f64,
    /// Slack trip point (lazier: consolidation opportunity, not risk).
    pub slack_threshold: f64,
    /// Minimum live samples before a verdict.
    pub min_windows: usize,
}

impl Default for DriftDetector {
    fn default() -> DriftDetector {
        DriftDetector {
            overload_threshold: 0.25,
            slack_threshold: 0.5,
            min_windows: 4,
        }
    }
}

impl DriftDetector {
    /// Compare `live` (the rolling window, oldest first, ending *now*)
    /// against `planned` (the horizon the current placement was solved
    /// for). `now_index` is the global sample index of the live window's
    /// final sample; it phase-aligns the comparison so periodic planned
    /// profiles (diurnal horizons) are compared against the right part of
    /// their cycle.
    pub fn check(
        &self,
        planned: &WorkloadProfile,
        live: &WorkloadProfile,
        now_index: u64,
    ) -> DriftReport {
        let horizon = planned.windows().max(1);
        let m = live.windows();
        // Phase of the live window's first sample within the planned cycle.
        let start = (now_index + 1).saturating_sub(m as u64);
        let planned_at = |series: &kairos_types::TimeSeries, i: usize| {
            let idx = ((start + i as u64) % horizon as u64) as usize;
            series.values().get(idx).copied().unwrap_or(0.0)
        };
        let drift_of = |planned_s: &kairos_types::TimeSeries, live_s: &kairos_types::TimeSeries| {
            let n = live_s.len();
            if n == 0 {
                return ResourceDrift::default();
            }
            let (mut over_sq, mut under_sq) = (0.0f64, 0.0f64);
            for (i, &v) in live_s.values().iter().enumerate() {
                let p = planned_at(planned_s, i);
                let d = v - p;
                if d > 0.0 {
                    over_sq += d * d;
                } else {
                    under_sq += d * d;
                }
            }
            let mean = planned_s.mean().abs().max(1e-12);
            ResourceDrift {
                overload: (over_sq / n as f64).sqrt() / mean,
                slack: (under_sq / n as f64).sqrt() / mean,
            }
        };

        let cpu = drift_of(&planned.cpu_cores, &live.cpu_cores);
        let ram = drift_of(&planned.ram_bytes, &live.ram_bytes);
        let working_set = drift_of(
            &planned.disk_working_set_bytes,
            &live.disk_working_set_bytes,
        );
        let update_rate = drift_of(
            &planned.disk_update_rows_per_sec,
            &live.disk_update_rows_per_sec,
        );
        let max_overload = cpu
            .overload
            .max(ram.overload)
            .max(working_set.overload)
            .max(update_rate.overload);
        let max_slack = cpu
            .slack
            .max(ram.slack)
            .max(working_set.slack)
            .max(update_rate.slack);
        DriftReport {
            workload: live.name.clone(),
            cpu,
            ram,
            working_set,
            update_rate,
            max_overload,
            max_slack,
            drifted: m >= self.min_windows
                && (max_overload > self.overload_threshold || max_slack > self.slack_threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_types::{Bytes, DiskDemand, Rate, TimeSeries, WorkloadProfile};

    fn flat(name: &str, windows: usize, cpu: f64, rate: f64) -> WorkloadProfile {
        WorkloadProfile::flat(
            name,
            300.0,
            windows,
            cpu,
            Bytes::gib(4),
            DiskDemand::new(Bytes::gib(1), Rate(rate)),
        )
    }

    #[test]
    fn identical_load_does_not_drift() {
        let planned = flat("w", 12, 1.0, 100.0);
        let live = flat("w", 6, 1.0, 100.0);
        let d = DriftDetector::default().check(&planned, &live, 5);
        assert!(!d.drifted);
        assert!(d.max_overload < 1e-9);
        assert!(d.max_slack < 1e-9);
    }

    #[test]
    fn doubled_cpu_is_overload_drift() {
        let planned = flat("w", 12, 1.0, 100.0);
        let live = flat("w", 6, 2.0, 100.0);
        let d = DriftDetector::default().check(&planned, &live, 5);
        assert!(d.drifted);
        assert!(
            (d.cpu.overload - 1.0).abs() < 1e-9,
            "cpu over {}",
            d.cpu.overload
        );
        assert_eq!(d.cpu.slack, 0.0);
        assert_eq!(d.workload, "w");
    }

    #[test]
    fn mild_slack_is_tolerated_deep_slack_trips() {
        let planned = flat("w", 12, 2.0, 100.0);
        // Live at 1.5 of planned 2.0: slack 0.25 < 0.5 — hold position.
        let mild = DriftDetector::default().check(&planned, &flat("w", 6, 1.5, 100.0), 5);
        assert!(!mild.drifted);
        assert!((mild.cpu.slack - 0.25).abs() < 1e-9);
        // Live at 0.5: slack 0.75 — repack.
        let deep = DriftDetector::default().check(&planned, &flat("w", 6, 0.5, 100.0), 5);
        assert!(deep.drifted);
        assert!(deep.max_slack > 0.5);
        assert_eq!(deep.max_overload, 0.0);
    }

    #[test]
    fn short_window_withholds_verdict() {
        let planned = flat("w", 12, 1.0, 100.0);
        let live = flat("w", 2, 5.0, 100.0); // huge error, 2 samples
        let d = DriftDetector::default().check(&planned, &live, 1);
        assert!(!d.drifted, "needs min_windows before tripping");
        assert!(d.max_overload > 1.0, "error is still reported");
    }

    #[test]
    fn phase_aligned_periodic_profile_matches() {
        // Planned horizon: 8-window ramp 0..7. Live window = phases 2..6
        // (now_index = 29 → start = 26 → phase 2).
        let vals: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mk = |v: Vec<f64>| TimeSeries::new(300.0, v);
        let planned = WorkloadProfile::new(
            "w",
            mk(vals.clone()),
            mk(vec![1e9; 8]),
            mk(vec![5e8; 8]),
            mk(vec![10.0; 8]),
        );
        let live = WorkloadProfile::new(
            "w",
            mk(vec![2.0, 3.0, 4.0, 5.0]),
            mk(vec![1e9; 4]),
            mk(vec![5e8; 4]),
            mk(vec![10.0; 4]),
        );
        let d = DriftDetector::default().check(&planned, &live, 29);
        assert!(
            d.cpu.overload < 1e-9 && d.cpu.slack < 1e-9,
            "aligned phase must match exactly: {:?}",
            d.cpu
        );
        // The same live window compared at the wrong phase reads as drift.
        let wrong = DriftDetector::default().check(&planned, &live, 33);
        assert!(wrong.cpu.overload > 0.25 || wrong.cpu.slack > 0.25);
    }
}
