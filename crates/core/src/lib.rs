//! # kairos-core — the Kairos system (§2–§6)
//!
//! The paper's primary contribution, assembled from the workspace's
//! substrates:
//!
//! * [`estimator`] — the Combined Load Estimator: CPU/RAM sums with
//!   per-instance overhead corrections, disk through the empirical
//!   [`kairos_diskmodel::DiskModel`];
//! * [`combiner`] — adapters exposing the disk model to the solver's
//!   non-linear constraint;
//! * [`engine`] — the Consolidation Engine facade: profiles in,
//!   [`engine::ConsolidationPlan`] out (Kairos or the greedy baseline);
//! * [`pipeline`] — the end-to-end loop against the simulated
//!   deployment: monitor each dedicated server, gauge its buffer pool,
//!   plan, and verify by co-locating for real.
//!
//! ```
//! use kairos_core::prelude::*;
//!
//! let profiles = demo_profiles();
//! let engine = ConsolidationEngine::builder().build();
//! let plan = engine.consolidate(&profiles).expect("feasible");
//! assert!(plan.machines_used() < profiles.len());
//! println!("{}:1 consolidation", plan.consolidation_ratio());
//! ```

pub mod combiner;
pub mod engine;
pub mod estimator;
pub mod pipeline;

pub use combiner::{AnalyticDiskCombiner, ModelDiskCombiner};
pub use engine::{ConsolidationEngine, ConsolidationPlan, EngineBuilder, Placement, PlanStrategy};
pub use estimator::{CombinedEstimate, CombinedLoadEstimator};
pub use pipeline::{
    Kairos, ObservationSession, PipelineConfig, VerifiedWorkload, WorkloadObservation,
};

/// Convenience re-exports for downstream users and doc examples.
pub mod prelude {
    pub use crate::engine::{ConsolidationEngine, ConsolidationPlan, PlanStrategy};
    pub use crate::estimator::CombinedLoadEstimator;
    pub use crate::pipeline::{Kairos, PipelineConfig};
    pub use kairos_solver::{ResourceWeights, SolverConfig, TargetMachine};
    pub use kairos_types::{Bytes, DiskDemand, Rate, WorkloadProfile};

    /// A small synthetic fleet for examples and doc tests: ten
    /// over-provisioned servers that comfortably consolidate.
    pub fn demo_profiles() -> Vec<WorkloadProfile> {
        (0..10)
            .map(|i| {
                WorkloadProfile::flat(
                    format!("server-{i:02}"),
                    300.0,
                    12,
                    0.3 + 0.05 * i as f64,
                    Bytes::gib(3),
                    DiskDemand::new(Bytes::gib(1), Rate(200.0 + 30.0 * i as f64)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn demo_profiles_consolidate() {
        let profiles = demo_profiles();
        assert_eq!(profiles.len(), 10);
        let engine = ConsolidationEngine::builder().build();
        let plan = engine.consolidate(&profiles).unwrap();
        assert!(plan.report.evaluation.feasible);
        assert!(plan.consolidation_ratio() > 2.0);
    }
}
