//! Seeded property suite for the standalone sketch frames — the same
//! discipline the store suite applies to snapshot frames, pointed at
//! the telemetry compression layer: random sketches round-trip
//! bit-exactly, every single-bit flip and every truncation point is
//! rejected with a clean error (never a panic, never a silently wrong
//! sketch), and version skew refuses to decode.
//!
//! Runs on the workspace's SplitMix64 harness; CI sweeps
//! `KAIROS_TEST_SEED` over these assertions.

use kairos_fleet::sketch::{
    decode_aggregate_sketch, decode_series_sketch, encode_aggregate_sketch, encode_series_sketch,
    AggregateSketch, SeriesSketch, SketchConfig, SKETCH_WIRE_VERSION,
};
use kairos_store::StoreError;
use kairos_types::{SplitMix64, TimeSeries};

fn random_config(rng: &mut SplitMix64) -> SketchConfig {
    SketchConfig {
        marks: 2 + rng.next_range(14) as u32,
        tail: 1 + rng.next_range(12) as u32,
    }
}

fn random_series_sketch(rng: &mut SplitMix64) -> SeriesSketch {
    let n = rng.next_range(96) as usize;
    let samples: Vec<f64> = (0..n).map(|_| rng.next_in(0.0, 1e6)).collect();
    SeriesSketch::of(&TimeSeries::new(300.0, samples), &random_config(rng))
}

fn random_aggregate_sketch(rng: &mut SplitMix64) -> AggregateSketch {
    AggregateSketch {
        cpu_cores: random_series_sketch(rng),
        ram_bytes: random_series_sketch(rng),
        ws_bytes: random_series_sketch(rng),
        rate_rows: random_series_sketch(rng),
        tenants: rng.next_range(512) as usize,
    }
}

#[test]
fn series_sketch_frames_roundtrip_bit_exact() {
    let mut rng = SplitMix64::from_env(0x5E7C_0001);
    for _ in 0..100 {
        let sk = random_series_sketch(&mut rng);
        let frame = encode_series_sketch(&sk);
        let back = decode_series_sketch(&frame).expect("clean frame decodes");
        assert_eq!(back, sk);
        // Bit-exact peaks: the decision-critical fields must not be
        // normalized or rounded by the codec.
        assert_eq!(back.peak().to_bits(), sk.peak().to_bits());
        assert_eq!(back.mean().to_bits(), sk.mean().to_bits());
        // Deterministic bytes — frames are diffable.
        assert_eq!(frame, encode_series_sketch(&sk));
    }
}

#[test]
fn aggregate_sketch_frames_roundtrip_bit_exact() {
    let mut rng = SplitMix64::from_env(0x5E7C_0002);
    for _ in 0..50 {
        let sk = random_aggregate_sketch(&mut rng);
        let frame = encode_aggregate_sketch(&sk);
        let back = decode_aggregate_sketch(&frame).expect("clean frame decodes");
        let bp: Vec<u64> = back.peaks().iter().map(|v| v.to_bits()).collect();
        let sp: Vec<u64> = sk.peaks().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bp, sp);
        assert_eq!(back, sk);
    }
}

#[test]
fn every_bit_flip_is_rejected() {
    // Exhaustive, not sampled: a sketch frame is small enough to flip
    // every bit of every byte and demand rejection for each.
    let mut rng = SplitMix64::from_env(0x5E7C_0003);
    let sk = random_series_sketch(&mut rng);
    let frame = encode_series_sketch(&sk);
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut bad = frame.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                decode_series_sketch(&bad).is_err(),
                "flip of byte {byte} bit {bit} must be rejected"
            );
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    let mut rng = SplitMix64::from_env(0x5E7C_0004);
    let sk = random_aggregate_sketch(&mut rng);
    let frame = encode_aggregate_sketch(&sk);
    for cut in 0..frame.len() {
        assert!(
            decode_aggregate_sketch(&frame[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
}

#[test]
fn version_skew_refuses_to_decode() {
    let sk = AggregateSketch::empty(300.0);
    for skew in [SKETCH_WIRE_VERSION + 1, SKETCH_WIRE_VERSION + 7, 0] {
        let frame = kairos_store::encode_frame(skew, &sk);
        assert!(matches!(
            decode_aggregate_sketch(&frame),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }
}

#[test]
fn oversized_declared_shapes_are_rejected_not_allocated() {
    // A frame whose payload *claims* an absurd mark count must fail in
    // the sketch deserializer's bounds check (fed directly, bypassing
    // the CRC which would otherwise catch the tamper first).
    let cfg = SketchConfig {
        marks: kairos_fleet::sketch::MAX_SKETCH_MARKS + 1,
        tail: 1,
    };
    let bytes = serde::to_bytes(&cfg);
    assert!(
        serde::from_bytes::<SketchConfig>(&bytes).is_err(),
        "a config beyond MAX_SKETCH_MARKS must not deserialize"
    );
}
