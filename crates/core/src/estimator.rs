//! The Combined Load Estimator (§4).
//!
//! "For CPU and RAM, this problem is straightforward (once we have
//! properly gauged the RAM requirements of each database): for each time
//! instant we can simply sum the CPU and RAM of individual workloads
//! being co-located. For disk, the problem is much more challenging."
//!
//! Refinements from §6:
//! * CPU — "simply summing the CPU utilization will double-count [the
//!   OS/DBMS background] portion of the load": subtract a per-instance
//!   overhead for every instance beyond the first.
//! * RAM — one shared DBMS replaces n copies: subtract the per-instance
//!   memory overhead likewise.
//! * Disk — sum the `(working set, update rate)` parameters and look the
//!   combination up in the fitted [`DiskModel`].

use kairos_diskmodel::DiskModel;
use kairos_types::{Bytes, DiskDemand, TimeSeries, WorkloadProfile};
use std::sync::Arc;

/// Estimator configuration. Defaults match the simulator's instance
/// overheads (and §7.4's 190 MB / §7.2's ~6 % CPU observations).
#[derive(Clone)]
pub struct CombinedLoadEstimator {
    /// Standardized cores of background load per DBMS+OS instance that
    /// disappears on consolidation.
    pub cpu_overhead_per_instance: f64,
    /// Memory per DBMS instance that disappears on consolidation.
    pub ram_overhead_per_instance: Bytes,
    /// Fitted disk model; `None` falls back to a linear bytes-per-row sum
    /// (the Fig 6 "baseline").
    pub disk_model: Option<Arc<DiskModel>>,
    /// Baseline bytes per updated row when no model is present.
    pub baseline_bytes_per_row: f64,
}

impl Default for CombinedLoadEstimator {
    fn default() -> CombinedLoadEstimator {
        CombinedLoadEstimator {
            cpu_overhead_per_instance: 0.03,
            ram_overhead_per_instance: Bytes::mib(190),
            disk_model: None,
            baseline_bytes_per_row: 1200.0,
        }
    }
}

impl std::fmt::Debug for CombinedLoadEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CombinedLoadEstimator")
            .field("cpu_overhead_per_instance", &self.cpu_overhead_per_instance)
            .field("ram_overhead_per_instance", &self.ram_overhead_per_instance)
            .field("has_disk_model", &self.disk_model.is_some())
            .finish()
    }
}

/// Predicted combined utilization of a set of co-located workloads.
#[derive(Debug, Clone)]
pub struct CombinedEstimate {
    /// Combined CPU, standardized cores per window.
    pub cpu_cores: TimeSeries,
    /// Combined RAM, bytes per window.
    pub ram_bytes: TimeSeries,
    /// Aggregate disk demand per window.
    pub disk_demand: Vec<DiskDemand>,
    /// Predicted disk write throughput per window, bytes/s.
    pub disk_write_bytes: TimeSeries,
}

impl CombinedLoadEstimator {
    pub fn with_model(model: Arc<DiskModel>) -> CombinedLoadEstimator {
        CombinedLoadEstimator {
            disk_model: Some(model),
            ..Default::default()
        }
    }

    /// Predict the combined load of `profiles` on one machine.
    ///
    /// # Panics
    /// Panics if `profiles` is empty or sampling intervals differ.
    pub fn combine(&self, profiles: &[WorkloadProfile]) -> CombinedEstimate {
        assert!(!profiles.is_empty(), "need at least one profile");
        let interval = profiles[0].interval_secs();
        for p in profiles {
            assert!(
                (p.interval_secs() - interval).abs() < f64::EPSILON,
                "profiles must share a sampling interval"
            );
        }
        let windows = profiles.iter().map(|p| p.windows()).max().unwrap_or(0);
        let n = profiles.len() as f64;

        let mut cpu = Vec::with_capacity(windows);
        let mut ram = Vec::with_capacity(windows);
        let mut demand = Vec::with_capacity(windows);
        let mut writes = Vec::with_capacity(windows);
        for t in 0..windows {
            let mut cpu_sum = 0.0;
            let mut ram_sum = 0.0;
            let mut d = DiskDemand::default();
            for p in profiles {
                let w = p.window(t);
                cpu_sum += w.cpu_cores;
                ram_sum += w.ram.as_f64();
                d = d.combine(w.disk);
            }
            // Consolidation removes n-1 OS+DBMS copies.
            cpu_sum = (cpu_sum - self.cpu_overhead_per_instance * (n - 1.0)).max(0.0);
            ram_sum = (ram_sum - self.ram_overhead_per_instance.as_f64() * (n - 1.0)).max(0.0);
            let write = match &self.disk_model {
                Some(m) => m.predict_write_bytes(d),
                None => d.update_rows_per_sec.as_f64() * self.baseline_bytes_per_row,
            };
            cpu.push(cpu_sum);
            ram.push(ram_sum);
            demand.push(d);
            writes.push(write);
        }

        CombinedEstimate {
            cpu_cores: TimeSeries::new(interval, cpu),
            ram_bytes: TimeSeries::new(interval, ram),
            disk_demand: demand,
            disk_write_bytes: TimeSeries::new(interval, writes),
        }
    }

    /// The naive baseline (Fig 6's "baseline"): straight sums of observed
    /// per-workload rates with no overhead correction and linear disk.
    pub fn baseline_sum(
        profiles: &[WorkloadProfile],
        observed_write_bytes: &[TimeSeries],
    ) -> CombinedEstimate {
        assert!(!profiles.is_empty());
        assert_eq!(profiles.len(), observed_write_bytes.len());
        let interval = profiles[0].interval_secs();
        let windows = profiles.iter().map(|p| p.windows()).max().unwrap_or(0);
        let mut cpu = Vec::with_capacity(windows);
        let mut ram = Vec::with_capacity(windows);
        let mut demand = Vec::with_capacity(windows);
        for t in 0..windows {
            let mut cpu_sum = 0.0;
            let mut ram_sum = 0.0;
            let mut d = DiskDemand::default();
            for p in profiles {
                let w = p.window(t);
                cpu_sum += w.cpu_cores;
                ram_sum += w.ram.as_f64();
                d = d.combine(w.disk);
            }
            cpu.push(cpu_sum);
            ram.push(ram_sum);
            demand.push(d);
        }
        let writes = TimeSeries::sum(interval, observed_write_bytes.iter());
        CombinedEstimate {
            cpu_cores: TimeSeries::new(interval, cpu),
            ram_bytes: TimeSeries::new(interval, ram),
            disk_demand: demand,
            disk_write_bytes: writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_types::Rate;

    fn profile(name: &str, cpu: f64, ram_mb: u64, ws_mb: u64, rate: f64) -> WorkloadProfile {
        WorkloadProfile::flat(
            name,
            300.0,
            4,
            cpu,
            Bytes::mib(ram_mb),
            DiskDemand::new(Bytes::mib(ws_mb), Rate(rate)),
        )
    }

    #[test]
    fn cpu_combines_minus_overhead() {
        let est = CombinedLoadEstimator::default();
        let profiles = vec![
            profile("a", 1.0, 1000, 500, 100.0),
            profile("b", 2.0, 2000, 500, 200.0),
            profile("c", 0.5, 500, 200, 50.0),
        ];
        let combined = est.combine(&profiles);
        // 3.5 cores minus 2 × 0.03 overhead.
        let expected = 3.5 - 2.0 * est.cpu_overhead_per_instance;
        assert!((combined.cpu_cores.values()[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn ram_combines_minus_instance_copies() {
        let est = CombinedLoadEstimator::default();
        let profiles = vec![
            profile("a", 0.1, 1000, 500, 1.0),
            profile("b", 0.1, 1000, 500, 1.0),
        ];
        let combined = est.combine(&profiles);
        let expected = 2.0 * Bytes::mib(1000).as_f64() - Bytes::mib(190).as_f64();
        assert!((combined.ram_bytes.values()[0] - expected).abs() < 1.0);
    }

    #[test]
    fn disk_demand_aggregates() {
        let est = CombinedLoadEstimator::default();
        let profiles = vec![
            profile("a", 0.1, 100, 300, 150.0),
            profile("b", 0.1, 100, 700, 350.0),
        ];
        let combined = est.combine(&profiles);
        let d = combined.disk_demand[0];
        assert_eq!(d.working_set, Bytes::mib(1000));
        assert!((d.update_rows_per_sec.as_f64() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn without_model_disk_prediction_is_linear() {
        let est = CombinedLoadEstimator::default();
        let one = est.combine(&[profile("a", 0.1, 100, 300, 100.0)]);
        let two = est.combine(&[
            profile("a", 0.1, 100, 300, 100.0),
            profile("b", 0.1, 100, 300, 100.0),
        ]);
        let r = two.disk_write_bytes.values()[0] / one.disk_write_bytes.values()[0];
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_sums_everything_raw() {
        let profiles = vec![
            profile("a", 1.0, 1000, 500, 100.0),
            profile("b", 1.0, 1000, 500, 100.0),
        ];
        let observed = vec![
            TimeSeries::constant(300.0, 5e6, 4),
            TimeSeries::constant(300.0, 7e6, 4),
        ];
        let baseline = CombinedLoadEstimator::baseline_sum(&profiles, &observed);
        assert!((baseline.cpu_cores.values()[0] - 2.0).abs() < 1e-12);
        assert!((baseline.disk_write_bytes.values()[0] - 12e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_input_panics() {
        CombinedLoadEstimator::default().combine(&[]);
    }
}
