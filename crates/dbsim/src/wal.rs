//! Write-ahead log with group commit.
//!
//! One consolidated DBMS instance owns a single log stream: commits from
//! *all* hosted databases share group-commit forces, and log bytes form one
//! sequential stream. This shared stream is one of the two coordination
//! effects (§4.1) that make a consolidated DBMS far more disk-efficient
//! than per-database instances — the DB-in-VM baseline gives each database
//! its own `LogManager`, multiplying forces.

/// Log configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Bytes appended per modified row (record header + image). The paper
    /// notes this is "roughly constant and small for typical OLTP
    /// workloads" (§4.1).
    pub record_bytes: f64,
    /// Fixed bytes per commit record.
    pub commit_bytes: f64,
    /// Group-commit window in seconds: commits arriving within one window
    /// share a single force.
    pub group_window_secs: f64,
    /// Total log file capacity; filling it forces a checkpoint (MySQL's
    /// "garbage collect log files" stall from §7.2).
    pub capacity_bytes: f64,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            record_bytes: 240.0,
            commit_bytes: 64.0,
            group_window_secs: 0.005,
            // A tuned-but-bounded redo log: large enough that multi-GB
            // working sets at moderate update rates run cleanly, small
            // enough that checkpoint pressure is a first-class effect at
            // saturation (the paper's §7.2 latency-spike observations).
            capacity_bytes: 512.0 * 1024.0 * 1024.0,
        }
    }
}

/// Per-tick log output: what the disk must absorb.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WalTickOutput {
    pub bytes: f64,
    pub forces: f64,
}

/// The log manager. Accumulates appends during a tick; `drain_tick`
/// converts them into sequential bytes + group-commit forces.
#[derive(Debug, Clone)]
pub struct LogManager {
    config: WalConfig,
    pending_rows: f64,
    pending_commits: f64,
    bytes_since_checkpoint: f64,
    total_bytes: f64,
    total_forces: f64,
}

impl LogManager {
    pub fn new(config: WalConfig) -> LogManager {
        LogManager {
            config,
            pending_rows: 0.0,
            pending_commits: 0.0,
            bytes_since_checkpoint: 0.0,
            total_bytes: 0.0,
            total_forces: 0.0,
        }
    }

    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Record `rows` modified rows committed across `commits` transactions
    /// (fractional values allowed — the simulator works in expectations).
    pub fn append(&mut self, rows: f64, commits: f64) {
        debug_assert!(rows >= 0.0 && commits >= 0.0);
        self.pending_rows += rows;
        self.pending_commits += commits;
    }

    /// Record raw log payload bytes (bulk inserts log full row images, so
    /// their volume scales with row size rather than the fixed per-row
    /// record size).
    pub fn append_bytes(&mut self, bytes: f64, commits: f64) {
        debug_assert!(bytes >= 0.0 && commits >= 0.0);
        self.pending_rows += bytes / self.config.record_bytes;
        self.pending_commits += commits;
    }

    /// Convert the tick's appends into disk demand.
    ///
    /// Group commit: at most `dt / group_window` forces fit in the tick;
    /// fewer commits than that means one force per commit.
    pub fn drain_tick(&mut self, dt: f64) -> WalTickOutput {
        let bytes = self.pending_rows * self.config.record_bytes
            + self.pending_commits * self.config.commit_bytes;
        let max_forces = dt / self.config.group_window_secs;
        let forces = if self.pending_commits <= 0.0 {
            0.0
        } else {
            self.pending_commits.min(max_forces).max(1.0)
        };
        self.pending_rows = 0.0;
        self.pending_commits = 0.0;
        self.bytes_since_checkpoint += bytes;
        self.total_bytes += bytes;
        self.total_forces += forces;
        WalTickOutput { bytes, forces }
    }

    /// Fraction of the log file consumed since the last checkpoint. Values
    /// above ~0.75 put checkpoint pressure on the flusher.
    pub fn fill_fraction(&self) -> f64 {
        self.bytes_since_checkpoint / self.config.capacity_bytes
    }

    /// Called when the flusher completes a checkpoint (dirty backlog
    /// drained): reclaims log space.
    pub fn checkpoint_complete(&mut self) {
        self.bytes_since_checkpoint = 0.0;
    }

    /// Reclaim a fraction of the outstanding log. Flushing `fraction` of
    /// the dirty pages lets the recovery LSN advance roughly
    /// proportionally, releasing log capacity without a full checkpoint.
    /// Returns the bytes reclaimed.
    pub fn reclaim(&mut self, fraction: f64) -> f64 {
        let f = fraction.clamp(0.0, 1.0);
        let reclaimed = self.bytes_since_checkpoint * f;
        self.bytes_since_checkpoint -= reclaimed;
        reclaimed
    }

    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    pub fn total_forces(&self) -> f64 {
        self.total_forces
    }

    /// Expected group-commit wait for one transaction: half the window
    /// when commits are being batched, otherwise negligible.
    pub fn commit_wait_secs(&self, commits_per_sec: f64) -> f64 {
        let forces_per_sec = 1.0 / self.config.group_window_secs;
        if commits_per_sec > forces_per_sec {
            self.config.group_window_secs / 2.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_scale_with_rows_and_commits() {
        let mut wal = LogManager::new(WalConfig::default());
        wal.append(100.0, 10.0);
        let out = wal.drain_tick(0.1);
        let expected = 100.0 * 240.0 + 10.0 * 64.0;
        assert!((out.bytes - expected).abs() < 1e-9);
    }

    #[test]
    fn group_commit_caps_forces() {
        let cfg = WalConfig {
            group_window_secs: 0.01,
            ..Default::default()
        };
        let mut wal = LogManager::new(cfg);
        // 1000 commits in a 0.1 s tick can force at most 10 times.
        wal.append(0.0, 1000.0);
        let out = wal.drain_tick(0.1);
        assert!((out.forces - 10.0).abs() < 1e-9);
    }

    #[test]
    fn few_commits_force_individually() {
        let mut wal = LogManager::new(WalConfig::default());
        wal.append(0.0, 3.0);
        let out = wal.drain_tick(1.0);
        assert!((out.forces - 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_commits_no_forces() {
        let mut wal = LogManager::new(WalConfig::default());
        let out = wal.drain_tick(0.1);
        assert_eq!(out.forces, 0.0);
        assert_eq!(out.bytes, 0.0);
    }

    #[test]
    fn drain_resets_pending() {
        let mut wal = LogManager::new(WalConfig::default());
        wal.append(10.0, 1.0);
        wal.drain_tick(0.1);
        let out = wal.drain_tick(0.1);
        assert_eq!(out.bytes, 0.0);
    }

    #[test]
    fn fill_rises_then_checkpoint_resets() {
        let cfg = WalConfig {
            capacity_bytes: 1000.0,
            record_bytes: 10.0,
            commit_bytes: 0.0,
            ..Default::default()
        };
        let mut wal = LogManager::new(cfg);
        wal.append(50.0, 1.0);
        wal.drain_tick(0.1);
        assert!((wal.fill_fraction() - 0.5).abs() < 1e-9);
        wal.checkpoint_complete();
        assert_eq!(wal.fill_fraction(), 0.0);
    }

    #[test]
    fn reclaim_is_proportional_and_clamped() {
        let cfg = WalConfig {
            capacity_bytes: 1000.0,
            record_bytes: 10.0,
            commit_bytes: 0.0,
            ..Default::default()
        };
        let mut wal = LogManager::new(cfg);
        wal.append(80.0, 1.0);
        wal.drain_tick(0.1);
        assert!((wal.fill_fraction() - 0.8).abs() < 1e-9);
        wal.reclaim(0.5);
        assert!((wal.fill_fraction() - 0.4).abs() < 1e-9);
        wal.reclaim(2.0); // clamped to 1.0
        assert_eq!(wal.fill_fraction(), 0.0);
    }

    #[test]
    fn commit_wait_only_under_batching() {
        let wal = LogManager::new(WalConfig::default());
        assert_eq!(wal.commit_wait_secs(10.0), 0.0);
        assert!(wal.commit_wait_secs(10_000.0) > 0.0);
    }

    #[test]
    fn shared_stream_fewer_forces_than_split_streams() {
        // 20 databases, 50 commits each, 0.1 s tick, 5 ms window.
        // Shared: one stream, forces capped at 20.
        let mut shared = LogManager::new(WalConfig::default());
        shared.append(0.0, 20.0 * 50.0);
        let shared_forces = shared.drain_tick(0.1).forces;
        // Split: 20 streams each capped at 20 forces => 20*20.
        let mut split_total = 0.0;
        for _ in 0..20 {
            let mut wal = LogManager::new(WalConfig::default());
            wal.append(0.0, 50.0);
            split_total += wal.drain_tick(0.1).forces;
        }
        assert!(split_total >= shared_forces * 10.0);
    }
}
