//! Minimal dense linear algebra: solving the small normal-equation
//! systems (≤ 6×6) behind the polynomial fits. Gaussian elimination with
//! partial pivoting is ample at this scale.

// Index loops here alias rows of the same matrix (elimination reads row
// `col` while writing row `row`; symmetrization mirrors across the
// diagonal), which iterator folds cannot express without split borrows.
#![allow(clippy::needless_range_loop)]

use kairos_types::{KairosError, Result};

/// Solve `A x = b` for square `A` (row-major), destroying neither input.
///
/// Returns an error when the matrix is numerically singular.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>> {
    let n = a.len();
    assert!(n > 0, "empty system");
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "dimension mismatch");

    // Augmented matrix.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            let mut r = row.clone();
            r.push(bi);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("NaN in matrix")
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() < 1e-12 {
            return Err(KairosError::Numerical(format!(
                "singular matrix at column {col}"
            )));
        }
        m.swap(col, pivot_row);
        // Eliminate below.
        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..=n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in row + 1..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

/// Solve the weighted least-squares problem `min Σ w_i (X_i·c − y_i)²`
/// via the normal equations `(XᵀWX) c = XᵀW y`.
///
/// `rows` are the design-matrix rows; `y` the targets; `w` the weights.
pub fn weighted_least_squares(rows: &[Vec<f64>], y: &[f64], w: &[f64]) -> Result<Vec<f64>> {
    let n = rows.len();
    assert!(n > 0, "no data points");
    assert_eq!(y.len(), n);
    assert_eq!(w.len(), n);
    let p = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == p), "ragged design matrix");
    if n < p {
        return Err(KairosError::InvalidInput(format!(
            "{n} points cannot determine {p} coefficients"
        )));
    }

    let mut xtx = vec![vec![0.0; p]; p];
    let mut xty = vec![0.0; p];
    for (i, row) in rows.iter().enumerate() {
        let wi = w[i];
        for a in 0..p {
            xty[a] += wi * row[a] * y[i];
            for b in a..p {
                xtx[a][b] += wi * row[a] * row[b];
            }
        }
    }
    // Symmetrize.
    for a in 0..p {
        for b in 0..a {
            xtx[a][b] = xtx[b][a];
        }
    }
    solve(&xtx, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solves_general_3x3() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        // Known solution: (2, 3, -1).
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(&a, &[2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_an_error() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 2 + 3x sampled exactly.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
        let w = vec![1.0; 10];
        let c = weighted_least_squares(&rows, &y, &w).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-9);
        assert!((c[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn weights_downweight_outliers() {
        // Line y = x with one gross outlier; zero weight kills it.
        let mut rows: Vec<Vec<f64>> = (0..6).map(|i| vec![1.0, i as f64]).collect();
        let mut y: Vec<f64> = (0..6).map(|i| i as f64).collect();
        rows.push(vec![1.0, 3.0]);
        y.push(1000.0);
        let mut w = vec![1.0; 7];
        w[6] = 0.0;
        let c = weighted_least_squares(&rows, &y, &w).unwrap();
        assert!(c[0].abs() < 1e-9);
        assert!((c[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_is_an_error() {
        let rows = vec![vec![1.0, 0.0, 0.0]];
        assert!(weighted_least_squares(&rows, &[1.0], &[1.0]).is_err());
    }
}
