//! The cross-shard balancer policy.
//!
//! Each shard plans itself greedily and honestly — if a flash crowd blows
//! past its machine budget, its own re-solver will happily use more
//! machines, because an overloaded-but-feasible placement beats a
//! violated one. Restoring budget compliance is the *balancer's* job:
//! watch per-shard summaries, pick donors (over budget, infeasible, or
//! failing to place), and move their heaviest tenants to the shards with
//! the most headroom through the two-phase handoff ([`crate::handoff`]).
//!
//! The policy is deliberately work-conserving and conservative:
//! reservations use the greedy packer, so a move is only made when the
//! destination certainly fits it, and donors stop shedding as soon as
//! their greedy estimate fits the budget again.

use kairos_controller::ShardSummary;

/// Balancer tuning.
#[derive(Debug, Clone, Copy)]
pub struct BalancerConfig {
    /// Machine budget per shard — the capacity constraint the balancer
    /// enforces fleet-wide (each shard's own solver is unconstrained).
    /// This is the **high watermark**: a shard becomes a donor only when
    /// it exceeds it.
    pub machines_per_shard: usize,
    /// Run a balance round every N fleet ticks (once all shards have
    /// bootstrapped).
    pub balance_every: u64,
    /// Handoff cap per round — bounds migration traffic bursts.
    pub max_moves_per_round: usize,
    /// **Low watermark**: once a donor starts shedding, it sheds until its
    /// greedy pack estimate fits this many machines, and receivers must
    /// certify admissions against it too — so a move leaves both sides
    /// with headroom below the donor trigger instead of parking them
    /// exactly at the budget (where the next drift nudges them straight
    /// back over). `0` means "same as `machines_per_shard`" (no split).
    pub low_watermark: usize,
    /// Balance rounds a tenant sits out after being probed for a handoff
    /// (completed *or* rejected). Hysteresis against ping-pong: a fleet
    /// hovering at its budget otherwise re-proposes the same tenants
    /// round after round. `0` disables the cooldown.
    pub cooldown_rounds: u64,
}

impl Default for BalancerConfig {
    fn default() -> BalancerConfig {
        BalancerConfig {
            machines_per_shard: 16,
            balance_every: 6,
            max_moves_per_round: 8,
            low_watermark: 0,
            cooldown_rounds: 2,
        }
    }
}

impl BalancerConfig {
    /// The effective shed/admit target (low watermark, capped at the
    /// budget).
    pub fn shed_target(&self) -> usize {
        if self.low_watermark == 0 {
            self.machines_per_shard
        } else {
            self.low_watermark.min(self.machines_per_shard)
        }
    }
}

/// Is this shard a donor — i.e., must it shed load?
pub fn is_overloaded(summary: &ShardSummary, budget: usize) -> bool {
    summary.planned
        && (summary.machines_used > budget || !summary.feasible || summary.resolve_failed)
}

/// Donor shards, most-loaded first.
pub fn donor_order(summaries: &[ShardSummary], budget: usize) -> Vec<usize> {
    let mut donors: Vec<usize> = (0..summaries.len())
        .filter(|&i| is_overloaded(&summaries[i], budget))
        .collect();
    donors.sort_by_key(|&i| std::cmp::Reverse(summaries[i].machines_used));
    donors
}

/// Receiver preference for one tenant: shards with the fewest machines
/// in use first, excluding the donor and anything unplanned or itself
/// overloaded.
pub fn receiver_order(summaries: &[ShardSummary], donor: usize, budget: usize) -> Vec<usize> {
    let mut receivers: Vec<usize> = (0..summaries.len())
        .filter(|&i| i != donor && summaries[i].planned && !is_overloaded(&summaries[i], budget))
        .collect();
    receivers.sort_by_key(|&i| summaries[i].machines_used);
    receivers
}

/// Handoff candidates on a donor: heaviest forecast CPU peak first —
/// moving the tenant that caused the overload relieves the most pressure
/// per migration.
pub fn candidate_order(summary: &ShardSummary) -> Vec<String> {
    let mut loads = summary.tenant_loads.clone();
    loads.sort_by(|a, b| {
        b.cpu_peak
            .partial_cmp(&a.cpu_peak)
            .expect("finite forecast peaks")
            .then_with(|| a.name.cmp(&b.name))
    });
    loads.into_iter().map(|t| t.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_controller::TenantLoad;
    use kairos_traces::ShardAggregate;

    fn summary(planned: bool, machines: usize, feasible: bool) -> ShardSummary {
        ShardSummary {
            tenants: 3,
            planned,
            machines_used: machines,
            feasible,
            violation: if feasible { 0.0 } else { 1.0 },
            resolve_failed: false,
            drifting: 0,
            aggregate: ShardAggregate::from_windows(std::iter::empty(), 300.0),
            tenant_loads: vec![
                TenantLoad {
                    name: "small".into(),
                    replicas: 1,
                    cpu_peak: 1.0,
                    ram_peak: 1e9,
                    ws_peak: 5e8,
                    rate_peak: 10.0,
                },
                TenantLoad {
                    name: "big".into(),
                    replicas: 1,
                    cpu_peak: 6.0,
                    ram_peak: 4e9,
                    ws_peak: 2e9,
                    rate_peak: 400.0,
                },
            ],
        }
    }

    #[test]
    fn donors_are_over_budget_or_broken() {
        let s = vec![
            summary(true, 10, true), // fine
            summary(true, 20, true), // over budget
            summary(true, 8, false), // infeasible
            summary(false, 0, true), // bootstrapping: never a donor
        ];
        assert_eq!(donor_order(&s, 16), vec![1, 2]);
    }

    #[test]
    fn receivers_prefer_emptier_shards() {
        let s = vec![
            summary(true, 20, true), // donor
            summary(true, 12, true),
            summary(true, 4, true),
            summary(true, 17, true), // itself over budget: excluded
        ];
        assert_eq!(receiver_order(&s, 0, 16), vec![2, 1]);
    }

    #[test]
    fn candidates_heaviest_first() {
        assert_eq!(
            candidate_order(&summary(true, 20, true)),
            vec!["big".to_string(), "small".to_string()]
        );
    }
}
