//! CPU device model.
//!
//! Capacity is expressed in *standardized core-seconds* per tick
//! ([`kairos_types::CpuSpec::standardized_cores`] × tick length), matching
//! the normalization the paper applies to heterogeneous machines (§6).
//! Demand above capacity is served fractionally — transactions queue and
//! the achieved throughput drops, as in any processor-sharing model.

use kairos_types::CpuSpec;

/// Per-tick CPU accounting result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuTickServed {
    /// Fraction of demanded work completed, in `[0, 1]`.
    pub fraction: f64,
    /// Utilization in `[0, 1]` (fraction of all cores busy).
    pub utilization: f64,
    /// Queueing-inflated latency multiplier (≥ 1).
    pub latency_factor: f64,
}

/// A multicore CPU served as a processor-sharing resource.
#[derive(Debug, Clone)]
pub struct CpuDevice {
    spec: CpuSpec,
    busy_core_secs: f64,
    elapsed_secs: f64,
}

impl CpuDevice {
    pub fn new(spec: CpuSpec) -> CpuDevice {
        CpuDevice {
            spec,
            busy_core_secs: 0.0,
            elapsed_secs: 0.0,
        }
    }

    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Standardized cores available.
    pub fn capacity_cores(&self) -> f64 {
        self.spec.standardized_cores()
    }

    /// Serve `demand_core_secs` of work (in standardized core-seconds)
    /// during a tick of `dt` seconds.
    pub fn serve(&mut self, dt: f64, demand_core_secs: f64) -> CpuTickServed {
        assert!(dt > 0.0, "tick length must be positive");
        assert!(demand_core_secs >= 0.0, "demand cannot be negative");
        let capacity = self.capacity_cores() * dt;
        let served = demand_core_secs.min(capacity);
        let fraction = if demand_core_secs == 0.0 {
            1.0
        } else {
            served / demand_core_secs
        };
        let utilization = (served / capacity).clamp(0.0, 1.0);
        self.busy_core_secs += served;
        self.elapsed_secs += dt;

        // Processor-sharing response inflation, capped near saturation.
        let rho = utilization.min(0.98);
        let latency_factor = 1.0 / (1.0 - rho);

        CpuTickServed {
            fraction,
            utilization,
            latency_factor,
        }
    }

    /// Lifetime average utilization in `[0, 1]`.
    pub fn average_utilization(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.busy_core_secs / (self.elapsed_secs * self.capacity_cores())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu8() -> CpuDevice {
        CpuDevice::new(CpuSpec::new(8, kairos_types::spec::STANDARD_CORE_GHZ))
    }

    #[test]
    fn under_load_everything_served() {
        let mut c = cpu8();
        let r = c.serve(1.0, 2.0);
        assert_eq!(r.fraction, 1.0);
        assert!((r.utilization - 0.25).abs() < 1e-12);
    }

    #[test]
    fn overload_scales_fractionally() {
        let mut c = cpu8();
        let r = c.serve(1.0, 16.0);
        assert!((r.fraction - 0.5).abs() < 1e-12);
        assert!((r.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_demand_is_fully_served() {
        let mut c = cpu8();
        let r = c.serve(0.1, 0.0);
        assert_eq!(r.fraction, 1.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.latency_factor, 1.0);
    }

    #[test]
    fn latency_factor_grows_convexly() {
        let mut c = cpu8();
        let low = c.serve(1.0, 1.0).latency_factor;
        let mid = c.serve(1.0, 6.0).latency_factor;
        let high = c.serve(1.0, 7.8).latency_factor;
        assert!(low < mid && mid < high);
        assert!(high - mid > mid - low, "convex growth near saturation");
    }

    #[test]
    fn clock_speed_raises_capacity() {
        let fast = CpuDevice::new(CpuSpec::new(8, kairos_types::spec::STANDARD_CORE_GHZ * 2.0));
        assert!((fast.capacity_cores() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn average_utilization_tracks_history() {
        let mut c = cpu8();
        c.serve(1.0, 8.0); // 100% of 8 cores for 1s
        c.serve(1.0, 0.0); // idle 1s
        assert!((c.average_utilization() - 0.5).abs() < 1e-12);
    }
}
