//! # kairos-vmsim — virtualization baselines (§7.4)
//!
//! Three ways to put N database workloads on one physical machine:
//!
//! * **Consolidated DBMS** (Kairos' recommendation): one DBMS instance,
//!   one shared buffer pool, one log stream, N logical databases.
//! * **OS virtualization**: N DBMS processes on one kernel — no
//!   hypervisor tax, but N buffer pools, N log streams, N × the DBMS
//!   memory overhead.
//! * **Hardware virtualization** (VMware-style): N VMs, each carrying an
//!   OS *and* a DBMS copy, hypervisor CPU tax, and context-switch
//!   overhead on top.
//!
//! The §7.4 performance gaps emerge from exactly the mechanisms the paper
//! names: redundant log forces that no longer share group commit,
//! write-back streams that no longer sort across one big pool, RAM eaten
//! by per-instance OS/DBMS copies (which starves the per-VM buffer pools
//! and turns reads into random disk I/O), and extra CPU burn.

use kairos_dbsim::{DbmsConfig, DbmsInstance, Host, VirtOverheads};
use kairos_types::{Bytes, KairosError, MachineSpec, Result, TimeSeries};
use kairos_workloads::{Driver, TpccWorkload};

/// Memory footprint of one OS copy (§7.4: ≈64 MB).
pub const OS_RAM_OVERHEAD: Bytes = Bytes(64 * 1024 * 1024);
/// Memory footprint of one DBMS copy (§7.4: MySQL ≈190 MB).
pub const DBMS_RAM_OVERHEAD: Bytes = Bytes(190 * 1024 * 1024);
/// Hypervisor's own resident memory.
pub const HYPERVISOR_RAM: Bytes = Bytes(128 * 1024 * 1024);

/// The consolidation strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One shared DBMS instance hosting all databases.
    ConsolidatedDbms,
    /// One DBMS process per database on a single kernel.
    OsVirtualization,
    /// One VM (OS + DBMS) per database under a hypervisor.
    HardwareVirtualization,
}

impl Strategy {
    pub const ALL: [Strategy; 3] = [
        Strategy::ConsolidatedDbms,
        Strategy::OsVirtualization,
        Strategy::HardwareVirtualization,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Strategy::ConsolidatedDbms => "consolidated-dbms",
            Strategy::OsVirtualization => "os-virtualization",
            Strategy::HardwareVirtualization => "db-in-vm",
        }
    }
}

/// Offered-load shape: uniform across databases, or the paper's skewed
/// case ("19 databases are throttled to one request per second, and 1
/// database runs at maximum speed").
#[derive(Debug, Clone, Copy)]
pub enum LoadShape {
    Uniform { tps_per_db: f64 },
    Skewed { throttled_tps: f64, hot_tps: f64 },
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ComparisonConfig {
    pub machine: MachineSpec,
    pub databases: usize,
    pub warehouses_per_db: u32,
    pub load: LoadShape,
    pub warmup_secs: f64,
    pub measure_secs: f64,
    /// Granularity of the Fig 10 throughput time series.
    pub series_window_secs: f64,
}

impl ComparisonConfig {
    /// The Fig 10 setup: 20 TPC-C databases at a fixed 20:1 consolidation
    /// level on a machine whose RAM comfortably fits the *shared* pool but
    /// leaves per-VM pools just short of each database's working set once
    /// 20 OS+DBMS copies take their cut — the §7.4 regime where the VM
    /// deployment thrashes while the consolidated DBMS stays in memory.
    pub fn fig10(load: LoadShape) -> ComparisonConfig {
        let mut machine = MachineSpec::server1();
        machine.ram = kairos_types::RamSpec::with_reserved(Bytes::mib(9728), OS_RAM_OVERHEAD);
        ComparisonConfig {
            machine,
            databases: 20,
            warehouses_per_db: 2,
            load,
            warmup_secs: 30.0,
            measure_secs: 120.0,
            series_window_secs: 10.0,
        }
    }
}

/// Measured outcome for one strategy.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    pub strategy: Strategy,
    /// Total committed tps per series window (Fig 10's curves).
    pub total_tps: TimeSeries,
    pub avg_total_tps: f64,
    pub per_db_tps: Vec<f64>,
    pub mean_latency_secs: f64,
}

impl StrategyOutcome {
    /// Average committed throughput per database.
    pub fn avg_tps_per_db(&self) -> f64 {
        if self.per_db_tps.is_empty() {
            0.0
        } else {
            self.per_db_tps.iter().sum::<f64>() / self.per_db_tps.len() as f64
        }
    }
}

/// Buffer-pool budget per instance for a strategy on a machine.
fn pool_budget(strategy: Strategy, machine: &MachineSpec, k: usize) -> Result<Bytes> {
    let total = machine.ram.total;
    let kf = k as u64;
    let overhead = match strategy {
        Strategy::ConsolidatedDbms => OS_RAM_OVERHEAD + DBMS_RAM_OVERHEAD,
        Strategy::OsVirtualization => OS_RAM_OVERHEAD + Bytes(DBMS_RAM_OVERHEAD.0 * kf),
        Strategy::HardwareVirtualization => {
            HYPERVISOR_RAM + Bytes((OS_RAM_OVERHEAD.0 + DBMS_RAM_OVERHEAD.0) * kf)
        }
    };
    let pool_total = total.saturating_sub(overhead);
    let per_instance = match strategy {
        Strategy::ConsolidatedDbms => pool_total,
        _ => Bytes(pool_total.0 / kf.max(1)),
    };
    if per_instance < Bytes::mib(16) {
        return Err(KairosError::InvalidInput(format!(
            "{} leaves {} per buffer pool on {} — unrunnable",
            strategy.label(),
            per_instance,
            machine.name
        )));
    }
    Ok(per_instance)
}

fn overheads(strategy: Strategy) -> VirtOverheads {
    match strategy {
        Strategy::ConsolidatedDbms => VirtOverheads::none(),
        Strategy::OsVirtualization => VirtOverheads::os_processes(),
        Strategy::HardwareVirtualization => VirtOverheads::hypervisor(),
    }
}

fn offered_tps(load: LoadShape, db_index: usize) -> f64 {
    match load {
        LoadShape::Uniform { tps_per_db } => tps_per_db,
        LoadShape::Skewed {
            throttled_tps,
            hot_tps,
        } => {
            if db_index == 0 {
                hot_tps
            } else {
                throttled_tps
            }
        }
    }
}

/// Run one strategy and measure it.
pub fn run_strategy(strategy: Strategy, cfg: &ComparisonConfig) -> Result<StrategyOutcome> {
    let k = cfg.databases;
    assert!(k >= 1, "need at least one database");
    let n_instances = match strategy {
        Strategy::ConsolidatedDbms => 1,
        _ => k,
    };
    let pool = pool_budget(strategy, &cfg.machine, k)?;

    let mut host = Host::new(cfg.machine.clone()).with_overheads(overheads(strategy));
    for i in 0..n_instances {
        let mut dbms = DbmsConfig::mysql(pool);
        dbms.seed = 0xF1610 ^ i as u64;
        host.add_instance(DbmsInstance::new(dbms));
    }

    let mut driver = Driver::new();
    for db in 0..k {
        let instance = match strategy {
            Strategy::ConsolidatedDbms => 0,
            _ => db,
        };
        let tps = offered_tps(cfg.load, db);
        let workload = TpccWorkload::new(cfg.warehouses_per_db, tps).named(format!("tpcc-db{db}"));
        driver.bind(&mut host, instance, Box::new(workload));
    }

    driver.warmup(&mut host, cfg.warmup_secs);

    let windows = (cfg.measure_secs / cfg.series_window_secs).round().max(1.0) as usize;
    let mut series = Vec::with_capacity(windows);
    let mut per_db = vec![0.0f64; k];
    let mut latency_weighted = 0.0;
    let mut committed_total = 0.0;
    for _ in 0..windows {
        let stats = driver.run(&mut host, cfg.series_window_secs);
        let mut window_tps = 0.0;
        for (i, s) in stats.iter().enumerate() {
            window_tps += s.tps();
            per_db[i] += s.committed_txns;
            latency_weighted += s.mean_latency_secs() * s.committed_txns;
            committed_total += s.committed_txns;
        }
        series.push(window_tps);
    }
    for v in &mut per_db {
        *v /= cfg.measure_secs;
    }

    let total_tps = TimeSeries::new(cfg.series_window_secs, series);
    Ok(StrategyOutcome {
        strategy,
        avg_total_tps: total_tps.mean(),
        per_db_tps: per_db,
        mean_latency_secs: if committed_total > 0.0 {
            latency_weighted / committed_total
        } else {
            0.0
        },
        total_tps,
    })
}

/// The Fig 11 sweep: average per-database throughput at increasing
/// consolidation levels, for one strategy.
pub fn consolidation_sweep(
    strategy: Strategy,
    levels: &[usize],
    tps_per_db: f64,
    cfg_base: &ComparisonConfig,
) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(levels.len());
    for &n in levels {
        let cfg = ComparisonConfig {
            databases: n,
            load: LoadShape::Uniform { tps_per_db },
            ..cfg_base.clone()
        };
        match run_strategy(strategy, &cfg) {
            Ok(outcome) => out.push((n, outcome.avg_tps_per_db())),
            Err(_) => out.push((n, 0.0)), // unrunnable level (no RAM left)
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(databases: usize, tps: f64) -> ComparisonConfig {
        ComparisonConfig {
            warmup_secs: 10.0,
            measure_secs: 30.0,
            series_window_secs: 5.0,
            databases,
            ..ComparisonConfig::fig10(LoadShape::Uniform { tps_per_db: tps })
        }
    }

    /// The scale where isolation hurts: 20 databases on one 8 GB machine.
    /// Per-VM buffer pools (~140 MB) cannot hold the 250 MB working sets,
    /// while the shared pool holds all twenty.
    fn fig10_scale() -> ComparisonConfig {
        quick_cfg(20, 25.0)
    }

    #[test]
    fn pool_budget_shrinks_with_isolation() {
        let m = ComparisonConfig::fig10(LoadShape::Uniform { tps_per_db: 1.0 }).machine;
        let cons = pool_budget(Strategy::ConsolidatedDbms, &m, 20).unwrap();
        let os = pool_budget(Strategy::OsVirtualization, &m, 20).unwrap();
        let vm = pool_budget(Strategy::HardwareVirtualization, &m, 20).unwrap();
        assert!(cons > Bytes(os.0 * 20), "shared pool beats 20 split pools");
        assert!(os > vm, "VM overhead exceeds process overhead");
    }

    #[test]
    fn pool_budget_can_become_unrunnable() {
        let mut m = MachineSpec::server2(); // 2 GB RAM
        m.ram = kairos_types::RamSpec::with_reserved(Bytes::gib(2), Bytes::mib(64));
        // 2 GB / 40 VMs with 254 MB overhead each: impossible.
        assert!(pool_budget(Strategy::HardwareVirtualization, &m, 40).is_err());
    }

    #[test]
    fn consolidated_beats_hardware_virtualization() {
        let cfg = fig10_scale();
        let cons = run_strategy(Strategy::ConsolidatedDbms, &cfg).unwrap();
        let vm = run_strategy(Strategy::HardwareVirtualization, &cfg).unwrap();
        assert!(
            cons.avg_total_tps > vm.avg_total_tps * 2.0,
            "consolidated {} vs VM {}",
            cons.avg_total_tps,
            vm.avg_total_tps
        );
    }

    #[test]
    fn consolidated_beats_os_virtualization_but_less() {
        let cfg = fig10_scale();
        let cons = run_strategy(Strategy::ConsolidatedDbms, &cfg).unwrap();
        let os = run_strategy(Strategy::OsVirtualization, &cfg).unwrap();
        let vm = run_strategy(Strategy::HardwareVirtualization, &cfg).unwrap();
        assert!(cons.avg_total_tps > os.avg_total_tps);
        assert!(
            os.avg_total_tps >= vm.avg_total_tps * 0.95,
            "OS virt should be no worse than full VMs: {} vs {}",
            os.avg_total_tps,
            vm.avg_total_tps
        );
    }

    #[test]
    fn skewed_load_keeps_consolidated_advantage() {
        let cfg = ComparisonConfig {
            warmup_secs: 10.0,
            measure_secs: 30.0,
            series_window_secs: 5.0,
            ..ComparisonConfig::fig10(LoadShape::Skewed {
                throttled_tps: 1.0,
                hot_tps: 200.0,
            })
        };
        let cons = run_strategy(Strategy::ConsolidatedDbms, &cfg).unwrap();
        let vm = run_strategy(Strategy::HardwareVirtualization, &cfg).unwrap();
        assert!(
            cons.avg_total_tps > vm.avg_total_tps,
            "consolidated {} vs VM {}",
            cons.avg_total_tps,
            vm.avg_total_tps
        );
        // The hot database dominates total throughput under consolidation.
        assert!(cons.per_db_tps[0] > cons.per_db_tps[1] * 10.0);
    }

    #[test]
    fn outcome_series_has_expected_windows() {
        let cfg = quick_cfg(4, 10.0);
        let out = run_strategy(Strategy::ConsolidatedDbms, &cfg).unwrap();
        assert_eq!(out.total_tps.len(), 6); // 30 s / 5 s
        assert_eq!(out.per_db_tps.len(), 4);
        assert!(out.mean_latency_secs > 0.0);
    }

    #[test]
    fn sweep_degrades_with_consolidation_level() {
        let base = quick_cfg(4, 40.0);
        let sweep = consolidation_sweep(Strategy::OsVirtualization, &[4, 16], 40.0, &base);
        assert_eq!(sweep.len(), 2);
        assert!(
            sweep[0].1 > sweep[1].1,
            "per-DB throughput should fall with more tenants: {sweep:?}"
        );
    }
}
