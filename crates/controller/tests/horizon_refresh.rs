//! Regression tests for the scheduled horizon refresh (ROADMAP item):
//! after a regime change the controller plans against a conservative
//! flat envelope; once `profile_refresh_ticks` of post-drift telemetry
//! re-accumulates, a cheap **zero-move** refresh tightens the planned
//! profile from the post-drift window alone — no solver run, no
//! migrations — instead of waiting for slack drift (which, for a
//! moderately periodic regime, may *never* trip: the envelope would
//! stay loose forever).
//!
//! The scenario is built to sit exactly in that gap: a tenant switches
//! from flat load to a sinusoid whose slack against the envelope stays
//! *below* the slack threshold. Without the refresh the envelope is
//! permanent; with it, the planned profile drops to the sinusoid's
//! phase means while the placement never moves.

use kairos_controller::{ControllerConfig, ShardController, SyntheticSource, TickOutcome};
use kairos_core::ConsolidationEngine;
use kairos_types::Bytes;
use kairos_workloads::RatePattern;

const HORIZON: usize = 8;
const INTERVAL: f64 = 300.0;
const SWITCH_AT: u64 = 24;

fn cfg(profile_refresh_ticks: u64) -> ControllerConfig {
    ControllerConfig {
        horizon: HORIZON,
        check_every: 4,
        cooldown_ticks: 8,
        profile_refresh_ticks,
        ..ControllerConfig::default()
    }
}

/// The regime-changing tenant: flat 200 tps, then a sinusoid (mean 260,
/// amplitude 140 → peak 400) with one full cycle per planning horizon.
/// Against a flat-400 envelope its slack relative RMSE is ≈ 0.43 —
/// *below* the 0.5 slack threshold, so only the scheduled refresh can
/// ever tighten the plan.
fn hot_source() -> SyntheticSource {
    SyntheticSource::new(
        "hot",
        INTERVAL,
        Bytes::gib(4),
        RatePattern::Flat { tps: 200.0 },
    )
    .with_noise(0.0)
    .then_at(
        SWITCH_AT,
        RatePattern::Sinusoid {
            mean: 260.0,
            amplitude: 140.0,
            period_secs: HORIZON as f64 * INTERVAL,
            phase: 0.0,
        },
    )
}

fn build_shard(profile_refresh_ticks: u64) -> ShardController {
    let mut shard = ShardController::new(
        cfg(profile_refresh_ticks),
        ConsolidationEngine::builder().build(),
    );
    shard.add_workload(Box::new(hot_source()));
    for i in 0..3 {
        shard.add_workload(Box::new(
            SyntheticSource::new(
                format!("flat-{i}"),
                INTERVAL,
                Bytes::gib(4),
                RatePattern::Flat { tps: 220.0 },
            )
            .with_noise(0.0),
        ));
    }
    shard
}

fn planned_cpu(shard: &ShardController, name: &str) -> (f64, f64) {
    let planned = shard.planned_profile(name).expect("planned");
    (planned.cpu_cores.mean(), planned.cpu_cores.max())
}

#[test]
fn refresh_tightens_the_envelope_without_migrations() {
    let mut shard = build_shard(HORIZON as u64);

    let mut replan_tick = None;
    let mut refresh_tick = None;
    let mut envelope_cpu = (0.0, 0.0);
    let mut resolves_at_refresh = 0;
    let mut placement_before_refresh = None;

    for tick in 1..=90u64 {
        let resolves_before = shard.stats().resolves;
        let placement = shard.placement().clone();
        match shard.tick() {
            TickOutcome::Replanned(r) => {
                assert!(replan_tick.is_none(), "one regime change, one re-solve");
                assert!(matches!(
                    r.reason,
                    kairos_controller::ReplanReason::Drift(_)
                ));
                replan_tick = Some(tick);
                // The drifted tenant is now envelope-planned, and the
                // refresh is scheduled.
                assert_eq!(shard.envelope_planned(), vec!["hot".to_string()]);
                envelope_cpu = planned_cpu(&shard, "hot");
            }
            TickOutcome::ProfileRefreshed { refreshed } => {
                assert!(replan_tick.is_some(), "refresh only follows a replan");
                assert!(refresh_tick.is_none(), "exactly one refresh");
                assert_eq!(refreshed, 1, "only the drifted tenant refreshes");
                refresh_tick = Some(tick);
                resolves_at_refresh = resolves_before;
                placement_before_refresh = Some(placement);
            }
            _ => {}
        }
    }

    let replan_tick = replan_tick.expect("the regime change must force a re-solve");
    let refresh_tick = refresh_tick.expect("the scheduled refresh must fire");
    assert!(
        refresh_tick >= replan_tick + HORIZON as u64,
        "refresh waits for a full horizon of post-drift telemetry \
         (replan {replan_tick}, refresh {refresh_tick})"
    );
    assert!(
        refresh_tick <= replan_tick + HORIZON as u64 + cfg(0).check_every,
        "refresh fires promptly once history re-accumulated"
    );

    // Zero-move: the refresh ran no solver and moved nothing.
    assert_eq!(
        shard.stats().resolves,
        resolves_at_refresh,
        "a profile refresh must not be a re-solve"
    );
    assert_eq!(
        shard.placement(),
        &placement_before_refresh.expect("captured"),
        "a profile refresh must not migrate anything"
    );
    assert_eq!(shard.stats().profile_refreshes, 1);
    assert!(shard.envelope_planned().is_empty(), "worklist drained");

    // Tightened: the planned profile dropped from the flat envelope to
    // the sinusoid's phase means — same peak, much lower mean.
    let (refreshed_mean, refreshed_peak) = planned_cpu(&shard, "hot");
    let (envelope_mean, envelope_peak) = envelope_cpu;
    assert!(
        (envelope_mean - envelope_peak).abs() < 1e-9,
        "the envelope was flat (mean == peak)"
    );
    assert!(refreshed_peak <= envelope_peak * (1.0 + 1e-9));
    assert!(
        refreshed_mean < envelope_mean * 0.75,
        "planned mean must tighten substantially: {refreshed_mean} vs envelope {envelope_mean}"
    );

    // And the tightened plan is *stable*: the sinusoid now matches its
    // planned profile phase-for-phase, so the loop goes quiet again.
    let resolves = shard.stats().resolves;
    for _ in 0..40 {
        shard.tick();
    }
    assert_eq!(
        shard.stats().resolves,
        resolves,
        "the refreshed profile must not re-trip the detector"
    );
    assert!(shard.verify_current().expect("planned").feasible);
}

#[test]
fn without_the_refresh_the_envelope_is_permanent() {
    // Control: profile_refresh_ticks = 0 disables the refresh, and this
    // regime's slack (≈0.43) sits below the 0.5 threshold — so the
    // conservative envelope never tightens. This is precisely the waste
    // the scheduled refresh exists to reclaim.
    let mut shard = build_shard(0);
    let mut saw_replan = false;
    for _ in 1..=90u64 {
        match shard.tick() {
            TickOutcome::Replanned(_) => saw_replan = true,
            TickOutcome::ProfileRefreshed { .. } => {
                panic!("refresh disabled: must never fire")
            }
            _ => {}
        }
    }
    assert!(saw_replan, "the regime change still re-solves");
    assert_eq!(shard.stats().profile_refreshes, 0);
    let (mean, peak) = planned_cpu(&shard, "hot");
    assert!(
        (mean - peak).abs() < 1e-9,
        "without the refresh the planned profile stays a flat envelope"
    );
    assert_eq!(shard.envelope_planned(), vec!["hot".to_string()]);
}

#[test]
fn refresh_state_survives_checkpoint_restore() {
    // Crash between the replan and the refresh: the restored shard must
    // still fire the refresh on schedule (the due tick and worklist are
    // checkpointed state).
    let mut shard = build_shard(HORIZON as u64);
    let mut replan_tick = None;
    for tick in 1..=60u64 {
        if let TickOutcome::Replanned(_) = shard.tick() {
            replan_tick = Some(tick);
            break;
        }
    }
    let replan_tick = replan_tick.expect("re-solve happens");
    // Two more ticks, then "crash".
    shard.tick();
    shard.tick();
    let crash_tick = replan_tick + 2;
    let mut restored = ShardController::restore(
        cfg(HORIZON as u64),
        ConsolidationEngine::builder().build(),
        shard.snapshot(),
    )
    .expect("snapshot restores");
    assert_eq!(restored.envelope_planned(), vec!["hot".to_string()]);
    restored
        .attach_source(Box::new(hot_source().fast_forward(crash_tick)))
        .expect("rebinds");
    for i in 0..3 {
        let src = SyntheticSource::new(
            format!("flat-{i}"),
            INTERVAL,
            Bytes::gib(4),
            RatePattern::Flat { tps: 220.0 },
        )
        .with_noise(0.0)
        .fast_forward(crash_tick);
        restored.attach_source(Box::new(src)).expect("rebinds");
    }
    let mut refreshed = false;
    for _ in 0..30 {
        if let TickOutcome::ProfileRefreshed { .. } = restored.tick() {
            refreshed = true;
            break;
        }
    }
    assert!(
        refreshed,
        "the restored shard still runs its scheduled refresh"
    );
    assert_eq!(restored.stats().profile_refreshes, 1);
}
