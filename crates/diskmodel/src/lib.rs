//! # kairos-diskmodel — the Combined Load Estimator's disk half (§4)
//!
//! CPU and RAM combine (almost) linearly across consolidated workloads;
//! disk I/O does not. This crate builds the paper's empirical,
//! hardware-specific disk model:
//!
//! 1. [`profiler::run_profiler`] sweeps `(working-set size, row-update
//!    rate)` with a controlled TPC-C-style load
//!    ([`kairos_workloads::ProfileLoad`]) against the simulated
//!    DBMS/host, recording disk write throughput at each point;
//! 2. [`poly::Poly2D::fit_lar`] fits a Least-Absolute-Residuals
//!    second-order polynomial to the map (the Fig 4 contours) and
//!    [`poly::Quadratic`] fits the saturation frontier (the dashed line);
//! 3. [`model::DiskModel`] answers the consolidation engine's questions:
//!    predicted write throughput for a combined
//!    [`kairos_types::DiskDemand`], the saturation rate for a working
//!    set, and feasibility at a given headroom.

pub mod linalg;
pub mod model;
pub mod poly;
pub mod profiler;

pub use model::DiskModel;
pub use poly::{Poly2D, Quadratic};
pub use profiler::{
    measure_workload, run_profiler, DiskPoint, DiskProfile, MeasuredDisk, ProfilerConfig,
};
