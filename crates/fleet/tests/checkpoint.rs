//! Checkpoint/restore correctness for the fleet control plane.
//!
//! Three properties, all on the workspace's seeded SplitMix64 harness
//! (CI sweeps `KAIROS_TEST_SEED`):
//!
//! 1. **Resume equivalence** — a fleet checkpointed at a random mid-run
//!    tick, "crashed", restored from the file and re-bound to
//!    fast-forwarded telemetry sources finishes the run tick-for-tick
//!    identically to an uninterrupted fleet: same outcomes, same handoff
//!    log, same placements, bit-identical audit objectives, and zero
//!    spurious re-solves.
//! 2. **Byte identity** — restoring a checkpoint and snapshotting again
//!    reproduces the original file byte-for-byte (the snapshot is a
//!    fixed point, so nothing is lost or invented across a restore).
//! 3. **Corruption rejection** — random truncations, bit flips and byte
//!    zeroing of the checkpoint file always yield a clean error from
//!    `resume_from`, never a panic or a partial restore.

use kairos_controller::{ControllerConfig, SyntheticSource, TickOutcome};
use kairos_fleet::{BalancerConfig, FleetConfig, FleetController};
use kairos_types::{Bytes, SplitMix64};
use kairos_workloads::RatePattern;
use std::path::PathBuf;

const SHARDS: usize = 2;
const TENANTS_PER_SHARD: usize = 5;
const TICKS: u64 = 60;

fn config() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: ControllerConfig {
            horizon: 8,
            check_every: 4,
            cooldown_ticks: 8,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: 3,
            balance_every: 5,
            max_moves_per_round: 3,
            ..BalancerConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// One tenant's deterministic generator parameters, so the "restarted
/// process" can rebuild the exact same source and fast-forward it.
#[derive(Clone)]
struct TenantSpec {
    shard: usize,
    name: String,
    replicas: u32,
    base_tps: f64,
    spike: Option<(u64, f64)>,
}

fn tenant_specs(rng: &mut SplitMix64) -> Vec<TenantSpec> {
    let mut specs = Vec::new();
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            let base_tps = rng.next_in(120.0, 300.0);
            let spike_tps = rng.next_in(420.0, 640.0);
            let spike_at = 18 + rng.next_range(18);
            // Shard 0's t1 always spikes ~3x (so every seed exercises a
            // drift re-solve and the equivalence check is never
            // vacuous); the rest drift with probability 1/3.
            let spikes = (shard == 0 && i == 1) || rng.next_range(3) == 0;
            specs.push(TenantSpec {
                shard,
                name: format!("s{shard}-t{i}"),
                replicas: if i == 0 { 2 } else { 1 },
                base_tps,
                spike: spikes.then_some((spike_at, spike_tps.max(3.0 * base_tps))),
            });
        }
    }
    specs
}

fn make_source(spec: &TenantSpec) -> SyntheticSource {
    let src = SyntheticSource::new(
        spec.name.clone(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps: spec.base_tps },
    );
    match spec.spike {
        Some((at, tps)) => src.then_at(at, RatePattern::Flat { tps }),
        None => src,
    }
}

fn build_fleet(specs: &[TenantSpec]) -> FleetController {
    let mut fleet = FleetController::new(config());
    for spec in specs {
        let src = Box::new(make_source(spec));
        if spec.replicas > 1 {
            fleet.add_workload_with_replicas(spec.shard, src, spec.replicas);
        } else {
            fleet.add_workload_to(spec.shard, src);
        }
    }
    for shard in 0..SHARDS {
        fleet.add_anti_affinity(&format!("s{shard}-t1"), &format!("s{shard}-t2"));
    }
    fleet
}

/// Canonical wall-clock-free signature of one tick (solver wall time
/// legitimately differs between the two processes).
fn outcome_sig(o: &TickOutcome) -> String {
    match o {
        TickOutcome::Bootstrapping => "boot".into(),
        TickOutcome::Idle => "idle".into(),
        TickOutcome::Stable => "stable".into(),
        TickOutcome::ProfileRefreshed { refreshed } => format!("refresh:{refreshed}"),
        TickOutcome::InitialPlan { machines, .. } => format!("init:m{machines}"),
        TickOutcome::Replanned(r) => format!(
            "replan:{:?}:feasible={}:moves={}:churn={:016x}:m{}",
            r.reason,
            r.feasible,
            r.moves,
            r.churn.to_bits(),
            r.machines,
        ),
    }
}

fn tick_sig(fleet: &mut FleetController) -> String {
    let report = fleet.tick();
    let outcomes: Vec<String> = report.outcomes.iter().map(outcome_sig).collect();
    format!("{outcomes:?} handoffs={:?}", report.handoffs)
}

fn audit_bits(fleet: &FleetController) -> Vec<Option<(u64, u64)>> {
    fleet
        .audit()
        .per_shard
        .iter()
        .map(|e| {
            e.as_ref()
                .map(|e| (e.objective.to_bits(), e.violation.to_bits()))
        })
        .collect()
}

fn total_resolves(fleet: &FleetController) -> u64 {
    fleet.shards().iter().map(|s| s.stats().resolves).sum()
}

fn temp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kairos-ckpt-{}-{tag}.ksnp", std::process::id()))
}

#[test]
fn restored_fleet_matches_uninterrupted_run() {
    let mut rng = SplitMix64::from_env(0xC8EC_4901);
    let specs = tenant_specs(&mut rng);
    // Crash somewhere between bootstrap and the end of the run.
    let crash_at = 16 + rng.next_range(TICKS - 16 - 8);
    let path = temp_ckpt("equivalence");

    // Uninterrupted reference run.
    let mut reference = build_fleet(&specs);
    let mut reference_sigs = Vec::new();
    for _ in 0..TICKS {
        reference_sigs.push(tick_sig(&mut reference));
    }
    assert!(
        total_resolves(&reference) > 0,
        "drift too weak: equivalence would be vacuous"
    );

    // Interrupted run: tick to the crash point, checkpoint, "crash".
    let mut doomed = build_fleet(&specs);
    for (tick, expected) in reference_sigs.iter().enumerate().take(crash_at as usize) {
        let sig = tick_sig(&mut doomed);
        assert_eq!(&sig, expected, "pre-crash divergence at tick {tick}");
    }
    doomed.checkpoint(&path).expect("checkpoint writes");
    let resolves_at_crash = total_resolves(&doomed);
    drop(doomed); // the crash

    // Restart: restore from the file, re-bind fast-forwarded sources.
    let mut restored = FleetController::resume_from(config(), &path).expect("clean file restores");
    assert_eq!(restored.stats().ticks, crash_at);
    let mut missing = restored.missing_sources();
    missing.sort();
    let mut expected: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    expected.sort();
    assert_eq!(missing, expected, "every tenant needs a re-bound source");
    for spec in &specs {
        let src = make_source(spec).fast_forward(crash_at);
        restored.reattach(Box::new(src)).expect("known tenant");
    }
    assert!(restored.missing_sources().is_empty());

    // The resumed fleet must finish the run exactly like the reference.
    for (tick, expected) in reference_sigs.iter().enumerate().skip(crash_at as usize) {
        let sig = tick_sig(&mut restored);
        assert_eq!(
            &sig, expected,
            "post-restore divergence at tick {tick} (crash was at {crash_at})"
        );
    }

    // Same final placements, routing, audit (bit-for-bit) and handoffs.
    assert_eq!(restored.handoffs(), reference.handoffs());
    for (a, b) in restored.shards().iter().zip(reference.shards()) {
        assert_eq!(a.workloads(), b.workloads());
        assert_eq!(a.placement(), b.placement());
    }
    assert_eq!(audit_bits(&restored), audit_bits(&reference));
    // Zero spurious re-solves: the restored run spends exactly the
    // re-solves the uninterrupted run spends, no bootstrap repeats, no
    // flat-envelope replans.
    assert_eq!(total_resolves(&restored), total_resolves(&reference));
    assert!(total_resolves(&restored) >= resolves_at_crash);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_is_a_fixed_point_of_restore() {
    let mut rng = SplitMix64::from_env(0xC8EC_4902);
    let specs = tenant_specs(&mut rng);
    let path = temp_ckpt("fixed-point");

    let mut fleet = build_fleet(&specs);
    for _ in 0..30 {
        fleet.tick();
    }
    fleet.checkpoint(&path).expect("checkpoint writes");
    let original = std::fs::read(&path).expect("file exists");

    let restored = FleetController::resume_from(config(), &path).expect("restores");
    let re_encoded =
        kairos_store::encode_frame(kairos_fleet::FLEET_SNAPSHOT_VERSION, &restored.snapshot());
    assert_eq!(
        original, re_encoded,
        "restore → snapshot must reproduce the checkpoint byte-for-byte"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_checkpoints_are_rejected_cleanly() {
    let mut rng = SplitMix64::from_env(0xC8EC_4903);
    let specs = tenant_specs(&mut rng);
    let path = temp_ckpt("corruption");

    let mut fleet = build_fleet(&specs);
    for _ in 0..24 {
        fleet.tick();
    }
    fleet.checkpoint(&path).expect("checkpoint writes");
    let clean = std::fs::read(&path).expect("file exists");

    for round in 0..60 {
        let mutated = match rng.next_range(3) {
            0 => {
                let cut = rng.next_range(clean.len() as u64) as usize;
                clean[..cut].to_vec()
            }
            1 => {
                let mut bad = clean.clone();
                let byte = rng.next_range(bad.len() as u64) as usize;
                bad[byte] ^= 1 << rng.next_range(8);
                bad
            }
            _ => {
                let mut bad = clean.clone();
                let byte = rng.next_range(bad.len() as u64) as usize;
                bad[byte] = if bad[byte] == 0 { 0xFF } else { 0 };
                bad
            }
        };
        std::fs::write(&path, &mutated).expect("write mutated file");
        let r = FleetController::resume_from(config(), &path);
        assert!(
            r.is_err(),
            "round {round}: corrupted checkpoint must be rejected, not restored"
        );
    }

    // The pristine bytes still restore after all that.
    std::fs::write(&path, &clean).expect("write clean file");
    assert!(FleetController::resume_from(config(), &path).is_ok());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_mismatched_shard_count() {
    let mut rng = SplitMix64::from_env(0xC8EC_4904);
    let specs = tenant_specs(&mut rng);
    let path = temp_ckpt("mismatch");

    let mut fleet = build_fleet(&specs);
    for _ in 0..20 {
        fleet.tick();
    }
    fleet.checkpoint(&path).expect("checkpoint writes");

    let mut wrong = config();
    wrong.shards = SHARDS + 1;
    match FleetController::resume_from(wrong, &path) {
        Err(kairos_store::StoreError::Inconsistent(_)) => {}
        Err(other) => panic!("expected Inconsistent, got {other:?}"),
        Ok(_) => panic!("mismatched shard count must not restore"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reattach_rejects_unknown_tenants() {
    let mut rng = SplitMix64::from_env(0xC8EC_4905);
    let specs = tenant_specs(&mut rng);
    let path = temp_ckpt("reattach");

    let mut fleet = build_fleet(&specs);
    for _ in 0..20 {
        fleet.tick();
    }
    fleet.checkpoint(&path).expect("checkpoint writes");
    let mut restored = FleetController::resume_from(config(), &path).expect("restores");
    let ghost = SyntheticSource::new(
        "ghost".to_string(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps: 100.0 },
    );
    assert!(restored.reattach(Box::new(ghost)).is_err());
    let _ = std::fs::remove_file(&path);
}
