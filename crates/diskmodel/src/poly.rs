//! Bivariate second-order polynomials with Least-Absolute-Residuals
//! fitting.
//!
//! The paper (§4.1, footnote 5): "We use a Least Absolute Residuals (LAR)
//! second-order polynomial fit of the disk I/O to build the disk model
//! shown by the contour of Figure 4." LAR is implemented as iteratively
//! re-weighted least squares (IRLS) with weights `1/max(|r|, ε)`, which
//! converges to the L1 estimate and is robust to the occasional
//! checkpoint-spike outlier in profiled data.

use crate::linalg::weighted_least_squares;
use kairos_types::Result;

/// `f(x, y) = c0 + c1·x + c2·y + c3·x² + c4·xy + c5·y²`, with inputs
/// internally normalized by `x_scale`/`y_scale` for conditioning.
#[derive(Debug, Clone, PartialEq)]
pub struct Poly2D {
    pub coeffs: [f64; 6],
    pub x_scale: f64,
    pub y_scale: f64,
}

impl Poly2D {
    fn basis(x: f64, y: f64) -> [f64; 6] {
        [1.0, x, y, x * x, x * y, y * y]
    }

    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let xs = x / self.x_scale;
        let ys = y / self.y_scale;
        let b = Self::basis(xs, ys);
        self.coeffs.iter().zip(b.iter()).map(|(c, v)| c * v).sum()
    }

    /// Ordinary least-squares fit of `(x, y) → z` samples.
    pub fn fit_least_squares(samples: &[(f64, f64, f64)]) -> Result<Poly2D> {
        Self::fit_weighted(samples, &vec![1.0; samples.len()])
    }

    /// Least-absolute-residuals fit via IRLS.
    pub fn fit_lar(samples: &[(f64, f64, f64)]) -> Result<Poly2D> {
        let mut w = vec![1.0; samples.len()];
        let mut model = Self::fit_weighted(samples, &w)?;
        const EPS: f64 = 1e-6;
        for _ in 0..30 {
            let mut max_delta: f64 = 0.0;
            for (i, &(x, y, z)) in samples.iter().enumerate() {
                let r = (z - model.eval(x, y))
                    .abs()
                    .max(EPS * model.z_scale_hint(samples));
                let new_w = 1.0 / r;
                max_delta = max_delta.max((new_w - w[i]).abs() / new_w.max(1e-12));
                w[i] = new_w;
            }
            let next = Self::fit_weighted(samples, &w)?;
            let coeff_delta: f64 = next
                .coeffs
                .iter()
                .zip(model.coeffs.iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
            model = next;
            if coeff_delta < 1e-9 {
                break;
            }
        }
        Ok(model)
    }

    fn z_scale_hint(&self, samples: &[(f64, f64, f64)]) -> f64 {
        samples
            .iter()
            .map(|&(_, _, z)| z.abs())
            .fold(0.0, f64::max)
            .max(1.0)
    }

    fn fit_weighted(samples: &[(f64, f64, f64)], w: &[f64]) -> Result<Poly2D> {
        assert!(!samples.is_empty(), "cannot fit an empty sample set");
        let x_scale = samples
            .iter()
            .map(|&(x, _, _)| x.abs())
            .fold(0.0, f64::max)
            .max(1e-12);
        let y_scale = samples
            .iter()
            .map(|&(_, y, _)| y.abs())
            .fold(0.0, f64::max)
            .max(1e-12);
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|&(x, y, _)| Self::basis(x / x_scale, y / y_scale).to_vec())
            .collect();
        let z: Vec<f64> = samples.iter().map(|&(_, _, z)| z).collect();
        let c = weighted_least_squares(&rows, &z, w)?;
        Ok(Poly2D {
            coeffs: [c[0], c[1], c[2], c[3], c[4], c[5]],
            x_scale,
            y_scale,
        })
    }
}

/// Univariate quadratic `g(x) = a + b·x + c·x²` — the Fig 4 dashed
/// saturation frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct Quadratic {
    pub coeffs: [f64; 3],
    pub x_scale: f64,
}

impl Quadratic {
    pub fn eval(&self, x: f64) -> f64 {
        let xs = x / self.x_scale;
        self.coeffs[0] + self.coeffs[1] * xs + self.coeffs[2] * xs * xs
    }

    /// Least-squares quadratic through `(x, y)` samples.
    pub fn fit(samples: &[(f64, f64)]) -> Result<Quadratic> {
        assert!(!samples.is_empty(), "cannot fit an empty sample set");
        let x_scale = samples
            .iter()
            .map(|&(x, _)| x.abs())
            .fold(0.0, f64::max)
            .max(1e-12);
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|&(x, _)| {
                let xs = x / x_scale;
                vec![1.0, xs, xs * xs]
            })
            .collect();
        let y: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
        let w = vec![1.0; samples.len()];
        let c = weighted_least_squares(&rows, &y, &w)?;
        Ok(Quadratic {
            coeffs: [c[0], c[1], c[2]],
            x_scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_types::SplitMix64;

    fn truth(x: f64, y: f64) -> f64 {
        5.0 + 2.0 * x + 0.5 * y + 0.1 * x * x + 0.3 * x * y + 0.02 * y * y
    }

    fn grid_samples() -> Vec<(f64, f64, f64)> {
        let mut out = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let x = i as f64 * 0.5;
                let y = j as f64 * 2.0;
                out.push((x, y, truth(x, y)));
            }
        }
        out
    }

    #[test]
    fn least_squares_recovers_exact_polynomial() {
        let p = Poly2D::fit_least_squares(&grid_samples()).unwrap();
        for &(x, y, z) in &grid_samples()[..20] {
            assert!((p.eval(x, y) - z).abs() < 1e-6, "at ({x},{y})");
        }
    }

    #[test]
    fn lar_recovers_exact_polynomial() {
        let p = Poly2D::fit_lar(&grid_samples()).unwrap();
        for &(x, y, z) in &grid_samples()[..20] {
            assert!((p.eval(x, y) - z).abs() < 1e-4, "at ({x},{y})");
        }
    }

    #[test]
    fn lar_is_robust_to_outliers_where_lsq_is_not() {
        let mut samples = grid_samples();
        // Corrupt 6 points grossly.
        for i in 0..6 {
            samples[i * 20].2 += 500.0;
        }
        let lar = Poly2D::fit_lar(&samples).unwrap();
        let lsq = Poly2D::fit_least_squares(&samples).unwrap();
        let clean = grid_samples();
        let err = |p: &Poly2D| -> f64 {
            clean
                .iter()
                .map(|&(x, y, z)| (p.eval(x, y) - z).abs())
                .sum::<f64>()
                / clean.len() as f64
        };
        let lar_err = err(&lar);
        let lsq_err = err(&lsq);
        assert!(
            lar_err < lsq_err * 0.5,
            "LAR {lar_err:.3} should beat LSQ {lsq_err:.3} under outliers"
        );
    }

    #[test]
    fn fit_with_noise_stays_close() {
        let mut rng = SplitMix64::new(99);
        let noisy: Vec<(f64, f64, f64)> = grid_samples()
            .into_iter()
            .map(|(x, y, z)| (x, y, z + rng.next_gaussian() * 0.5))
            .collect();
        let p = Poly2D::fit_lar(&noisy).unwrap();
        let mean_err: f64 = noisy
            .iter()
            .map(|&(x, y, _)| (p.eval(x, y) - truth(x, y)).abs())
            .sum::<f64>()
            / noisy.len() as f64;
        assert!(mean_err < 0.5, "mean err {mean_err}");
    }

    #[test]
    fn scaling_keeps_large_inputs_conditioned() {
        // Bytes-scale x (1e9) and rate-scale y (1e4).
        let samples: Vec<(f64, f64, f64)> = (1..10)
            .flat_map(|i| {
                (1..10).map(move |j| {
                    let x = i as f64 * 4e8;
                    let y = j as f64 * 4e3;
                    (x, y, 1e6 + 2e-3 * x + 50.0 * y)
                })
            })
            .collect();
        let p = Poly2D::fit_lar(&samples).unwrap();
        for &(x, y, z) in &samples[..10] {
            let rel = ((p.eval(x, y) - z) / z).abs();
            assert!(rel < 1e-6, "relative error {rel}");
        }
    }

    #[test]
    fn quadratic_fit_recovers_parabola() {
        let samples: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64 * 0.25e9;
                (x, 40_000.0 - 1e-5 * x - 1e-14 * x * x)
            })
            .collect();
        let q = Quadratic::fit(&samples).unwrap();
        for &(x, y) in &samples {
            assert!((q.eval(x) - y).abs() < y.abs() * 1e-6 + 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_fit_panics() {
        let _ = Poly2D::fit_least_squares(&[]);
    }
}
