//! A physical host: one CPU, one disk, and one or more DBMS instances.
//!
//! The consolidated configuration Kairos recommends runs a *single*
//! instance hosting many databases. The baselines of §7.4 run one instance
//! per database, either as plain OS processes ("OS virtualization") or
//! inside hardware virtual machines. [`VirtOverheads`] captures the costs
//! those baselines pay:
//!
//! * a hypervisor CPU tax on all work (binary translation / vm-exits),
//! * fixed per-instance background CPU (extra OS + DBMS copies),
//! * context-switch overhead growing with the number of co-scheduled
//!   instances,
//! * and — implicitly, through per-instance [`crate::wal::LogManager`]s —
//!   the loss of shared group commit and of pool-wide sorted write-back
//!   (the host divides the elevator batch depth by the instance count).

use crate::cpu::CpuDevice;
use crate::disk::{DiskDevice, DiskTickDemand};
use crate::engine::{DbmsInstance, DeviceGrant, InstanceDemand, OpBatch, TickResult};
use crate::pages::DatabaseId;
use kairos_types::MachineSpec;

/// CPU/RAM penalties of running many isolated instances instead of one
/// consolidated DBMS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtOverheads {
    /// Multiplier on every instance's CPU demand (0 = none).
    pub cpu_tax: f64,
    /// Fixed standardized cores consumed per instance (idle OS + DBMS
    /// background work beyond the first instance's baseline).
    pub per_instance_cores: f64,
    /// Additional cores consumed per instance when more than one instance
    /// runs (context switches, cache pollution).
    pub context_switch_cores: f64,
}

impl VirtOverheads {
    /// The consolidated configuration: a single shared instance.
    pub fn none() -> VirtOverheads {
        VirtOverheads {
            cpu_tax: 0.0,
            per_instance_cores: 0.0,
            context_switch_cores: 0.0,
        }
    }

    /// One MySQL process per database on one kernel (§7.4's "OS
    /// virtualization", akin to containers/zones).
    pub fn os_processes() -> VirtOverheads {
        VirtOverheads {
            cpu_tax: 0.02,
            per_instance_cores: 0.012,
            context_switch_cores: 0.006,
        }
    }

    /// One VM per database under a hypervisor (§7.4's VMware ESXi setup).
    pub fn hypervisor() -> VirtOverheads {
        VirtOverheads {
            cpu_tax: 0.13,
            per_instance_cores: 0.03,
            context_switch_cores: 0.012,
        }
    }
}

/// Outcome of one host tick.
#[derive(Debug, Clone, Default)]
pub struct HostTickReport {
    pub per_instance: Vec<TickResult>,
    pub cpu_utilization: f64,
    pub disk_utilization: f64,
    /// Total committed transactions across all instances.
    pub committed_txns: f64,
}

/// A physical machine running one or more DBMS instances.
#[derive(Debug)]
pub struct Host {
    spec: MachineSpec,
    cpu: CpuDevice,
    disk: DiskDevice,
    instances: Vec<DbmsInstance>,
    overheads: VirtOverheads,
    sim_secs: f64,
}

impl Host {
    pub fn new(spec: MachineSpec) -> Host {
        let cpu = CpuDevice::new(spec.cpu);
        let disk = DiskDevice::new(spec.disk);
        Host {
            spec,
            cpu,
            disk,
            instances: Vec::new(),
            overheads: VirtOverheads::none(),
            sim_secs: 0.0,
        }
    }

    pub fn with_overheads(mut self, overheads: VirtOverheads) -> Host {
        self.overheads = overheads;
        self
    }

    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    pub fn overheads(&self) -> &VirtOverheads {
        &self.overheads
    }

    pub fn add_instance(&mut self, instance: DbmsInstance) -> usize {
        self.instances.push(instance);
        self.instances.len() - 1
    }

    pub fn instance(&self, idx: usize) -> &DbmsInstance {
        &self.instances[idx]
    }

    pub fn instance_mut(&mut self, idx: usize) -> &mut DbmsInstance {
        &mut self.instances[idx]
    }

    /// `DROP DATABASE` on one of this host's instances: the tenant's
    /// pages leave the instance's buffer pool (and OS cache) and its disk
    /// footprint is reclaimed. Returns the bytes reclaimed. See
    /// [`DbmsInstance::drop_database`].
    pub fn remove_database(
        &mut self,
        instance: usize,
        db: crate::pages::DatabaseId,
    ) -> kairos_types::Result<kairos_types::Bytes> {
        self.instances[instance].drop_database(db)
    }

    pub fn instances(&self) -> &[DbmsInstance] {
        &self.instances
    }

    pub fn sim_secs(&self) -> f64 {
        self.sim_secs
    }

    /// RAM committed by all instances (allocated view).
    pub fn ram_committed(&self) -> kairos_types::Bytes {
        self.instances.iter().map(|i| i.ram_allocated()).sum()
    }

    /// Average disk utilization since construction.
    pub fn disk_average_utilization(&self) -> f64 {
        self.disk.average_utilization()
    }

    /// Average CPU utilization since construction.
    pub fn cpu_average_utilization(&self) -> f64 {
        self.cpu.average_utilization()
    }

    /// Advance the host by one tick of `dt` seconds.
    ///
    /// `loads[i]` is the offered work for instance `i`. Missing entries
    /// mean an idle instance (background flushing still happens).
    pub fn tick(&mut self, dt: f64, loads: &[Vec<(DatabaseId, OpBatch)>]) -> HostTickReport {
        let k = self.instances.len();
        let empty: Vec<(DatabaseId, OpBatch)> = Vec::new();

        // Phase 1: gather demand.
        let mut demands: Vec<InstanceDemand> = Vec::with_capacity(k);
        for (i, inst) in self.instances.iter_mut().enumerate() {
            let load = loads.get(i).unwrap_or(&empty);
            demands.push(inst.prepare_tick(dt, load));
        }

        // Phase 2: aggregate onto shared devices.
        let ov = &self.overheads;
        let active = k.max(1) as f64;
        let mut cpu_demand = 0.0;
        let mut disk_demand = DiskTickDemand::default();
        let mut total_wb_request = 0.0;
        for d in &demands {
            cpu_demand += d.cpu_core_secs * (1.0 + ov.cpu_tax);
            disk_demand.log_bytes += d.log_bytes;
            disk_demand.log_forces += d.log_forces;
            disk_demand.read_pages += d.read_pages;
            total_wb_request += d.writeback_pages;
            disk_demand.writeback_batch += d.writeback_batch;
        }
        cpu_demand += ov.per_instance_cores * active * dt;
        if k > 1 {
            cpu_demand += ov.context_switch_cores * active * dt;
        }
        disk_demand.writeback_pages = total_wb_request;
        // Independent instances each sort only their own stream, so the
        // device-level elevator batch is divided by the instance count.
        disk_demand.writeback_batch /= active;

        let cpu_served = self.cpu.serve(dt, cpu_demand);
        let disk_served = self.disk.serve(dt, disk_demand);

        // Phase 3: distribute grants and complete.
        let mut report = HostTickReport {
            per_instance: Vec::with_capacity(k),
            cpu_utilization: cpu_served.utilization,
            disk_utilization: disk_served.utilization,
            committed_txns: 0.0,
        };
        for (i, inst) in self.instances.iter_mut().enumerate() {
            let share = if total_wb_request > 0.0 {
                demands[i].writeback_pages / total_wb_request
            } else {
                0.0
            };
            let grant = DeviceGrant {
                fg_fraction: disk_served.foreground_fraction,
                writeback_pages: disk_served.writeback_pages * share,
                cpu_fraction: cpu_served.fraction,
                cpu_latency_factor: cpu_served.latency_factor,
                read_service_secs: disk_served.read_service_secs,
                disk_utilization: disk_served.utilization,
            };
            let r = inst.complete_tick(dt, grant);
            report.committed_txns += r.committed_txns;
            report.per_instance.push(r);
        }
        self.sim_secs += dt;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DbmsConfig, UpdateSpec};
    use kairos_types::Bytes;

    fn tpcc_like_batch(
        inst: &mut DbmsInstance,
        _db: DatabaseId,
        table: crate::pages::TableId,
        txns: f64,
    ) -> OpBatch {
        let _ = inst;
        OpBatch {
            txns,
            updates: vec![UpdateSpec {
                table,
                prefix_pages: 0,
                rows: txns * 10.0,
            }],
            cpu_core_secs: txns * 0.4e-3,
            base_latency_secs: 0.01,
            ..Default::default()
        }
    }

    fn host_with_one_instance() -> (Host, DatabaseId, crate::pages::TableId) {
        let mut host = Host::new(MachineSpec::server1());
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(64)));
        let db = inst.create_database("app");
        let t = inst.create_table(db, 100_000, 164).unwrap();
        inst.prewarm_table(t);
        host.add_instance(inst);
        (host, db, t)
    }

    #[test]
    fn single_instance_ticks_and_commits() {
        let (mut host, db, t) = host_with_one_instance();
        let mut total = 0.0;
        for _ in 0..50 {
            let batch = {
                let inst = host.instance_mut(0);
                tpcc_like_batch(inst, db, t, 10.0)
            };
            let r = host.tick(0.1, &[vec![(db, batch)]]);
            total += r.committed_txns;
        }
        // 10 txns per 0.1 s tick = 100 tps, easily within capacity.
        assert!((total - 500.0).abs() < 5.0, "committed {total}");
    }

    #[test]
    fn idle_instance_still_flushes() {
        let (mut host, db, t) = host_with_one_instance();
        // Dirty some pages.
        let batch = {
            let inst = host.instance_mut(0);
            tpcc_like_batch(inst, db, t, 100.0)
        };
        host.tick(0.1, &[vec![(db, batch)]]);
        let dirty_before = host.instance(0).pool_dirty_pages();
        assert!(dirty_before > 0);
        // Idle ticks: background flusher should drain.
        for _ in 0..200 {
            host.tick(0.1, &[]);
        }
        assert!(host.instance(0).pool_dirty_pages() < dirty_before / 4);
    }

    #[test]
    fn cpu_saturation_caps_throughput() {
        let (mut host, db, t) = host_with_one_instance();
        // Demand far beyond 8 cores: 10k txns/tick * 0.4 ms = 4 core-sec
        // per 0.1 s tick => needs 40 cores.
        let mut committed = 0.0;
        for _ in 0..20 {
            let batch = {
                let inst = host.instance_mut(0);
                tpcc_like_batch(inst, db, t, 10_000.0)
            };
            let r = host.tick(0.1, &[vec![(db, batch)]]);
            committed += r.committed_txns;
        }
        let offered = 10_000.0 * 20.0;
        assert!(committed < offered * 0.5, "CPU must throttle: {committed}");
    }

    #[test]
    fn hypervisor_overheads_inflate_cpu_and_cost_throughput() {
        // Same 8-instance load with and without hypervisor overheads: the
        // virtualized run must burn more CPU, and under CPU saturation it
        // must commit less.
        let run = |overheads: VirtOverheads, txns_per_tick: f64| -> (f64, f64) {
            let mut host = Host::new(MachineSpec::server2()).with_overheads(overheads);
            let mut handles = Vec::new();
            for i in 0..8 {
                let mut cfg = DbmsConfig::mysql(Bytes::mib(24));
                cfg.seed = 42 + i as u64;
                let mut inst = DbmsInstance::new(cfg);
                let db = inst.create_database(format!("db{i}"));
                let t = inst.create_table(db, 50_000, 164).unwrap();
                inst.prewarm_table(t);
                host.add_instance(inst);
                handles.push((db, t));
            }
            let mut committed = 0.0;
            let mut cpu_util = 0.0;
            let ticks = 50;
            for _ in 0..ticks {
                let loads: Vec<Vec<(DatabaseId, OpBatch)>> = handles
                    .iter()
                    .map(|&(db, t)| {
                        vec![(
                            db,
                            OpBatch {
                                txns: txns_per_tick,
                                updates: vec![UpdateSpec {
                                    table: t,
                                    prefix_pages: 0,
                                    rows: txns_per_tick,
                                }],
                                cpu_core_secs: txns_per_tick * 1.0e-3,
                                base_latency_secs: 0.01,
                                ..Default::default()
                            },
                        )]
                    })
                    .collect();
                let r = host.tick(0.1, &loads);
                committed += r.committed_txns;
                cpu_util += r.cpu_utilization;
            }
            (committed, cpu_util / ticks as f64)
        };
        // Light load: same throughput, higher CPU utilization under the
        // hypervisor.
        let (c_plain, u_plain) = run(VirtOverheads::none(), 5.0);
        let (c_hyper, u_hyper) = run(VirtOverheads::hypervisor(), 5.0);
        assert!((c_plain - c_hyper).abs() < 1e-6);
        assert!(u_hyper > u_plain * 1.05, "{u_hyper} vs {u_plain}");
        // CPU-saturating load: the tax turns into lost throughput.
        let (c_plain, _) = run(VirtOverheads::none(), 150.0);
        let (c_hyper, _) = run(VirtOverheads::hypervisor(), 150.0);
        assert!(
            c_hyper < c_plain * 0.97,
            "hypervisor should cost throughput: {c_hyper} vs {c_plain}"
        );
    }

    #[test]
    fn ram_committed_sums_instances() {
        let mut host = Host::new(MachineSpec::server1());
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(100))));
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(200))));
        let committed = host.ram_committed();
        assert!(committed > Bytes::mib(300));
    }

    #[test]
    fn utilizations_reported_in_bounds() {
        let (mut host, db, t) = host_with_one_instance();
        let batch = {
            let inst = host.instance_mut(0);
            tpcc_like_batch(inst, db, t, 200.0)
        };
        let r = host.tick(0.1, &[vec![(db, batch)]]);
        assert!((0.0..=1.0).contains(&r.cpu_utilization));
        assert!((0.0..=1.0).contains(&r.disk_utilization));
    }
}
