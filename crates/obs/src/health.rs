//! The health watchdog: typed rules over the metrics registry, turned
//! into severities somebody can page on.
//!
//! Metrics answer "what is the value"; the watchdog answers "is that
//! value *wrong*". A [`HealthMonitor`] holds a catalog of
//! [`HealthRule`]s — gauge thresholds, gauge growth streaks, counter
//! rates, p99 regressions against a rolling baseline — and evaluates
//! them on a driver's cadence (the fleet/balancer tick loops call
//! [`HealthMonitor::observe`]). Findings come out two ways:
//!
//! * the **current** [`HealthReport`] (every firing rule, with
//!   severity and detail), served over the `Health` RPC so any node —
//!   or `kairos-top` across a fleet — can be asked "are you ok";
//! * **newly fired** findings, returned from `observe` so the caller
//!   can record a [`crate::events::DecisionEvent::HealthFlagged`] once
//!   per transition (a why-chain link, not a per-tick alarm storm).
//!
//! Health reads wall-clock-shaped registries, so the watchdog is
//! **disabled by default** and never enabled inside chaos fingerprint
//! runs; the decision events it records are gated on the same opt-in.

use crate::metrics::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How loud a finding is. `Critical` is the CI-failing level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Info,
    Warning,
    Critical,
}

impl Severity {
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One typed health rule over a named metric.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum HealthRule {
    /// A gauge is above a fixed threshold.
    GaugeAbove {
        metric: String,
        threshold: f64,
        severity: Severity,
    },
    /// A gauge grew strictly across the last `observations` consecutive
    /// observations (a trend, robust to any one-off blip resetting it).
    GaugeGrowing {
        metric: String,
        observations: u32,
        severity: Severity,
    },
    /// A counter advanced by more than `max_per_observation` since the
    /// previous observation (`0.0` ⇒ any advance fires).
    CounterRateAbove {
        metric: String,
        max_per_observation: f64,
        severity: Severity,
    },
    /// A histogram's p99 exceeds `factor ×` its rolling baseline (the
    /// minimum p99 seen since the histogram first held `min_count`
    /// samples).
    P99RegressionOver {
        metric: String,
        factor: f64,
        min_count: u64,
        severity: Severity,
    },
}

impl HealthRule {
    /// Short rule-kind slug (finding keys, event fields, docs).
    pub fn kind(&self) -> &'static str {
        match self {
            HealthRule::GaugeAbove { .. } => "gauge-above",
            HealthRule::GaugeGrowing { .. } => "gauge-growing",
            HealthRule::CounterRateAbove { .. } => "counter-rate",
            HealthRule::P99RegressionOver { .. } => "p99-regression",
        }
    }

    pub fn metric(&self) -> &str {
        match self {
            HealthRule::GaugeAbove { metric, .. }
            | HealthRule::GaugeGrowing { metric, .. }
            | HealthRule::CounterRateAbove { metric, .. }
            | HealthRule::P99RegressionOver { metric, .. } => metric,
        }
    }

    pub fn severity(&self) -> Severity {
        match self {
            HealthRule::GaugeAbove { severity, .. }
            | HealthRule::GaugeGrowing { severity, .. }
            | HealthRule::CounterRateAbove { severity, .. }
            | HealthRule::P99RegressionOver { severity, .. } => *severity,
        }
    }

    fn key(&self) -> String {
        format!("{}:{}", self.kind(), self.metric())
    }
}

/// One firing rule: what fired, how loud, at what value, and why.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthFinding {
    /// The rule-kind slug ([`HealthRule::kind`]).
    pub rule: String,
    pub metric: String,
    pub severity: Severity,
    /// The observed value that fired the rule.
    pub value: f64,
    pub detail: String,
}

/// Everything firing at one observation, served over the `Health` RPC.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// The driver's tick at the observation.
    pub tick: u64,
    pub findings: Vec<HealthFinding>,
}

impl HealthReport {
    pub fn healthy(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    pub fn has_critical(&self) -> bool {
        self.max_severity() == Some(Severity::Critical)
    }

    /// One line per finding; `"healthy"` when clean.
    pub fn render(&self) -> String {
        if self.findings.is_empty() {
            return format!("tick {:>4} · healthy\n", self.tick);
        }
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "tick {:>4} · {} · {} on {}: {} (value {:.3})\n",
                self.tick,
                f.severity.name().to_uppercase(),
                f.rule,
                f.metric,
                f.detail,
                f.value,
            ));
        }
        out
    }
}

/// The default watchdog catalog — the fleet-operations conditions the
/// control plane already exports metrics for:
///
/// | rule | metric | fires when |
/// |---|---|---|
/// | gauge-growing (critical) | `kairos_fleet_sync_lag_rounds` | standby sync lag grew 3 observations in a row |
/// | gauge-above (critical) | `kairos_fleet_parked_oldest_rounds` | a parked handoff aged past 8 balance rounds |
/// | counter-rate (warning) | `kairos_net_auth_failures_total` | any authentication failure since last observation |
/// | counter-rate (warning) | `kairos_net_lease_misses_total` | any lease miss since last observation |
/// | p99-regression (warning) | `kairos_fleet_solve_tick_usecs` | solve-path p99 over 4× its rolling baseline |
pub fn default_rules() -> Vec<HealthRule> {
    vec![
        HealthRule::GaugeGrowing {
            metric: "kairos_fleet_sync_lag_rounds".to_string(),
            observations: 3,
            severity: Severity::Critical,
        },
        HealthRule::GaugeAbove {
            metric: "kairos_fleet_parked_oldest_rounds".to_string(),
            threshold: 8.0,
            severity: Severity::Critical,
        },
        HealthRule::CounterRateAbove {
            metric: "kairos_net_auth_failures_total".to_string(),
            max_per_observation: 0.0,
            severity: Severity::Warning,
        },
        HealthRule::CounterRateAbove {
            metric: "kairos_net_lease_misses_total".to_string(),
            max_per_observation: 0.0,
            severity: Severity::Warning,
        },
        HealthRule::P99RegressionOver {
            metric: "kairos_fleet_solve_tick_usecs".to_string(),
            factor: 4.0,
            min_count: 50,
            severity: Severity::Warning,
        },
    ]
}

/// Tick-driven rule evaluator. Holds the cross-observation state the
/// rules need (gauge history, counter snapshots, p99 baselines) plus
/// which findings are currently firing, so callers get clean
/// fired-edge transitions for the decision trace.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    rules: Vec<HealthRule>,
    gauge_history: BTreeMap<String, VecDeque<f64>>,
    counter_seen: BTreeMap<String, u64>,
    p99_baseline: BTreeMap<String, u64>,
    firing: BTreeSet<String>,
    last: HealthReport,
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthMonitor {
    /// A monitor over [`default_rules`].
    pub fn new() -> HealthMonitor {
        Self::with_rules(default_rules())
    }

    pub fn with_rules(rules: Vec<HealthRule>) -> HealthMonitor {
        HealthMonitor {
            rules,
            gauge_history: BTreeMap::new(),
            counter_seen: BTreeMap::new(),
            p99_baseline: BTreeMap::new(),
            firing: BTreeSet::new(),
            last: HealthReport::default(),
        }
    }

    pub fn rules(&self) -> &[HealthRule] {
        &self.rules
    }

    /// The report from the most recent [`HealthMonitor::observe`].
    pub fn report(&self) -> &HealthReport {
        &self.last
    }

    /// Evaluate every rule against `registries` (first registry holding
    /// the metric wins; a metric absent everywhere simply cannot fire).
    /// Returns only the findings that **started** firing at this
    /// observation; the full current picture is [`HealthMonitor::report`].
    pub fn observe(&mut self, tick: u64, registries: &[&MetricsRegistry]) -> Vec<HealthFinding> {
        let mut findings = Vec::new();
        let mut newly = Vec::new();
        let mut now_firing = BTreeSet::new();
        for rule in &self.rules.clone() {
            if let Some(finding) = self.evaluate(rule, registries) {
                if !self.firing.contains(&rule.key()) {
                    newly.push(finding.clone());
                }
                now_firing.insert(rule.key());
                findings.push(finding);
            }
        }
        self.firing = now_firing;
        self.last = HealthReport { tick, findings };
        newly
    }

    fn evaluate(
        &mut self,
        rule: &HealthRule,
        registries: &[&MetricsRegistry],
    ) -> Option<HealthFinding> {
        let fired = match rule {
            HealthRule::GaugeAbove {
                metric, threshold, ..
            } => {
                let value = lookup_gauge(registries, metric)?;
                (value > *threshold).then(|| {
                    (
                        value,
                        format!("gauge {value:.3} above threshold {threshold:.3}"),
                    )
                })
            }
            HealthRule::GaugeGrowing {
                metric,
                observations,
                ..
            } => {
                let value = lookup_gauge(registries, metric)?;
                let keep = *observations as usize + 1;
                let history = self.gauge_history.entry(metric.clone()).or_default();
                history.push_back(value);
                while history.len() > keep {
                    history.pop_front();
                }
                let growing = history.len() == keep
                    && history
                        .iter()
                        .zip(history.iter().skip(1))
                        .all(|(a, b)| b > a);
                growing.then(|| {
                    (
                        value,
                        format!(
                            "gauge grew strictly across {observations} observations (now {value:.3})"
                        ),
                    )
                })
            }
            HealthRule::CounterRateAbove {
                metric,
                max_per_observation,
                ..
            } => {
                let value = lookup_counter(registries, metric)?;
                let seen = self.counter_seen.insert(metric.clone(), value);
                let delta = value.saturating_sub(seen.unwrap_or(value));
                (delta as f64 > *max_per_observation).then(|| {
                    (
                        delta as f64,
                        format!("counter advanced by {delta} since last observation (max {max_per_observation})"),
                    )
                })
            }
            HealthRule::P99RegressionOver {
                metric,
                factor,
                min_count,
                ..
            } => {
                let (count, p99) = lookup_histogram_p99(registries, metric)?;
                if count < *min_count {
                    return None;
                }
                let baseline = self
                    .p99_baseline
                    .entry(metric.clone())
                    .and_modify(|b| *b = (*b).min(p99.max(1)))
                    .or_insert(p99.max(1));
                (p99 as f64 > *factor * *baseline as f64).then(|| {
                    (
                        p99 as f64,
                        format!("p99 {p99}us over {factor}x rolling baseline {baseline}us"),
                    )
                })
            }
        };
        fired.map(|(value, detail)| HealthFinding {
            rule: rule.kind().to_string(),
            metric: rule.metric().to_string(),
            severity: rule.severity(),
            value,
            detail,
        })
    }
}

fn lookup_gauge(registries: &[&MetricsRegistry], metric: &str) -> Option<f64> {
    registries.iter().find_map(|r| r.gauge_value(metric))
}

fn lookup_counter(registries: &[&MetricsRegistry], metric: &str) -> Option<u64> {
    registries.iter().find_map(|r| r.counter_value(metric))
}

fn lookup_histogram_p99(registries: &[&MetricsRegistry], metric: &str) -> Option<(u64, u64)> {
    registries
        .iter()
        .find_map(|r| r.histogram_view(metric))
        .map(|h| (h.count(), h.percentile(0.99)))
}

/// Caller-side ages for the balancer's parked-handoff lot, exported as
/// the `kairos_fleet_parked_oldest_rounds` gauge the watchdog's
/// aged-parked rule reads. Kept **outside** the replicated
/// `BalancerSoftState` (its wire layout is pinned); a promoted standby
/// starts counting ages from its own first round, which only delays —
/// never suppresses — the alert.
#[derive(Clone, Debug, Default)]
pub struct ParkedAges {
    first_round: BTreeMap<String, u64>,
}

impl ParkedAges {
    pub fn new() -> ParkedAges {
        ParkedAges::default()
    }

    /// Reconcile against the lot after a balance round and return the
    /// oldest age in rounds (0 when the lot is empty). The caller sets
    /// the gauge with it.
    pub fn update<'a>(&mut self, round: u64, parked: impl IntoIterator<Item = &'a str>) -> u64 {
        let live: BTreeSet<&str> = parked.into_iter().collect();
        self.first_round.retain(|t, _| live.contains(t.as_str()));
        for t in live {
            self.first_round.entry(t.to_string()).or_insert(round);
        }
        self.first_round
            .values()
            .map(|first| round.saturating_sub(*first))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn clean_registries_stay_silent() {
        let reg = MetricsRegistry::new();
        reg.gauge("kairos_fleet_sync_lag_rounds").set(0.0);
        reg.gauge("kairos_fleet_parked_oldest_rounds").set(0.0);
        reg.counter("kairos_net_auth_failures_total");
        let mut monitor = HealthMonitor::new();
        for tick in 0..20 {
            let newly = monitor.observe(tick, &[&reg]);
            assert!(newly.is_empty(), "tick {tick}: {newly:?}");
        }
        assert!(monitor.report().healthy());
        assert!(monitor.report().render().contains("healthy"));
    }

    #[test]
    fn growing_sync_lag_fires_critical_once_and_clears() {
        let reg = MetricsRegistry::new();
        let lag = reg.gauge("kairos_fleet_sync_lag_rounds");
        let mut monitor = HealthMonitor::new();
        // Strictly growing for 4 observations (3 growth steps).
        let mut total_new = 0;
        for (tick, v) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            lag.set(*v);
            total_new += monitor.observe(tick as u64, &[&reg]).len();
        }
        assert_eq!(total_new, 1, "fires exactly once at the edge");
        let report = monitor.report().clone();
        assert!(report.has_critical());
        assert_eq!(report.findings[0].rule, "gauge-growing");
        assert_eq!(report.findings[0].metric, "kairos_fleet_sync_lag_rounds");
        // Still growing: still firing, but not "newly".
        lag.set(5.0);
        assert!(monitor.observe(4, &[&reg]).is_empty());
        assert!(!monitor.report().healthy());
        // The standby catches up: lag flat, the finding clears.
        monitor.observe(5, &[&reg]);
        assert!(monitor.report().healthy(), "{:?}", monitor.report());
    }

    #[test]
    fn aged_parked_handoff_fires_threshold_rule() {
        let reg = MetricsRegistry::new();
        let gauge = reg.gauge("kairos_fleet_parked_oldest_rounds");
        let mut ages = ParkedAges::new();
        let mut monitor = HealthMonitor::new();
        for round in 0..12u64 {
            // One handoff stays parked from round 1 onwards.
            let parked: Vec<&str> = if round >= 1 { vec!["t-stuck"] } else { vec![] };
            let oldest = ages.update(round, parked);
            gauge.set(oldest as f64);
            monitor.observe(round, &[&reg]);
        }
        let report = monitor.report();
        assert!(report.has_critical(), "{report:?}");
        assert!(report
            .findings
            .iter()
            .any(|f| f.metric == "kairos_fleet_parked_oldest_rounds" && f.value > 8.0));
        // The handoff resolves: ages drain, the rule clears.
        let oldest = ages.update(12, Vec::<&str>::new());
        gauge.set(oldest as f64);
        monitor.observe(12, &[&reg]);
        assert!(monitor.report().healthy());
    }

    #[test]
    fn counter_rate_and_p99_regression_fire() {
        let reg = MetricsRegistry::new();
        let auth = reg.counter("kairos_net_auth_failures_total");
        let solve = reg.histogram("kairos_fleet_solve_tick_usecs");
        for _ in 0..60 {
            solve.record(100);
        }
        let mut monitor = HealthMonitor::new();
        monitor.observe(0, &[&reg]);
        assert!(monitor.report().healthy(), "baseline observation clean");
        // An auth failure lands and the solve path regresses hard.
        auth.inc();
        for _ in 0..200 {
            solve.record(2_000);
        }
        monitor.observe(1, &[&reg]);
        let report = monitor.report();
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"counter-rate"), "{report:?}");
        assert!(rules.contains(&"p99-regression"), "{report:?}");
        assert_eq!(report.max_severity(), Some(Severity::Warning));
        // Quiet again next observation: the counter stopped advancing.
        monitor.observe(2, &[&reg]);
        assert!(!monitor
            .report()
            .findings
            .iter()
            .any(|f| f.rule == "counter-rate"));
    }

    #[test]
    fn severity_orders_and_serializes() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let report = HealthReport {
            tick: 9,
            findings: vec![HealthFinding {
                rule: "gauge-above".into(),
                metric: "m".into(),
                severity: Severity::Critical,
                value: 11.0,
                detail: "d".into(),
            }],
        };
        let bytes = serde::to_bytes(&report);
        let back: HealthReport = serde::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, report);
        assert!(report.render().contains("CRITICAL"));
    }
}
