//! Decision traces through the snapshot store.
//!
//! Traces ride inside shard and fleet checkpoints, but they are also a
//! standalone artifact (the `Trace` RPC ships them raw; the CI
//! decision-trace job diffs them on disk) — so the store must round-trip
//! a bare `Vec<TracedEvent>` under [`kairos_obs::TRACE_WIRE_VERSION`]
//! with the same guarantees as any snapshot: byte-stable encoding,
//! version pinning, and clean rejection of corruption.

use kairos_obs::{DecisionEvent, DecisionLog, TracedEvent, TRACE_WIRE_VERSION};
use kairos_store::{decode_frame, encode_frame, load, save, StoreError};
use std::path::PathBuf;

fn sample_trace() -> Vec<TracedEvent> {
    let mut log = DecisionLog::new();
    log.record(
        3,
        DecisionEvent::Bootstrapped {
            machines: 4,
            objective_bits: 1.25f64.to_bits(),
        },
    );
    log.record(
        17,
        DecisionEvent::DriftTripped {
            workloads: vec!["s0-t03".into(), "s0-t07".into()],
            max_overload_bits: 1.4f64.to_bits(),
            max_slack_bits: 0.2f64.to_bits(),
            overload_threshold_bits: 1.2f64.to_bits(),
            slack_threshold_bits: 0.5f64.to_bits(),
        },
    );
    log.record(
        22,
        DecisionEvent::HandoffCompleted {
            tenant: "s0-t07".into(),
            donor: 0,
            receiver: 2,
        },
    );
    log.record(
        31,
        DecisionEvent::ParkedRetried {
            tenant: "s0-t07".into(),
            donor: 0,
            receiver: 2,
            resolution: "completed-late".into(),
        },
    );
    log.to_vec()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "kairos-trace-frame-{}-{tag}.ktrc",
        std::process::id()
    ))
}

#[test]
fn traces_roundtrip_through_frames_and_files() {
    let trace = sample_trace();
    let frame = encode_frame(TRACE_WIRE_VERSION, &trace);
    let back: Vec<TracedEvent> =
        decode_frame(&frame, TRACE_WIRE_VERSION).expect("frame roundtrips");
    assert_eq!(back, trace);

    // Byte stability: encoding is a pure function of the events.
    assert_eq!(frame, encode_frame(TRACE_WIRE_VERSION, &trace));

    let path = temp_path("roundtrip");
    save(&path, TRACE_WIRE_VERSION, &trace).expect("trace saves");
    let loaded: Vec<TracedEvent> = load(&path, TRACE_WIRE_VERSION).expect("trace loads");
    assert_eq!(loaded, trace);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_version_is_rejected() {
    let frame = encode_frame(TRACE_WIRE_VERSION, &sample_trace());
    match decode_frame::<Vec<TracedEvent>>(&frame, TRACE_WIRE_VERSION + 1) {
        Err(StoreError::UnsupportedVersion { found, expected }) => {
            assert_eq!(found, TRACE_WIRE_VERSION);
            assert_eq!(expected, TRACE_WIRE_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn corruption_is_rejected_not_misread() {
    let trace = sample_trace();
    let clean = encode_frame(TRACE_WIRE_VERSION, &trace);
    // Flip every byte position in turn: no single-byte corruption may
    // decode (the CRC trailer guards the whole payload).
    for i in 0..clean.len() {
        let mut bad = clean.clone();
        bad[i] ^= 0x40;
        assert!(
            decode_frame::<Vec<TracedEvent>>(&bad, TRACE_WIRE_VERSION).is_err(),
            "byte {i}: corrupted frame must not decode"
        );
    }
    // Truncations too.
    for cut in 0..clean.len() {
        assert!(
            decode_frame::<Vec<TracedEvent>>(&clean[..cut], TRACE_WIRE_VERSION).is_err(),
            "truncation at {cut} must not decode"
        );
    }
}

#[test]
fn restored_log_continues_sequence_numbers() {
    let trace = sample_trace();
    let frame = encode_frame(TRACE_WIRE_VERSION, &trace);
    let events: Vec<TracedEvent> =
        decode_frame(&frame, TRACE_WIRE_VERSION).expect("frame roundtrips");
    let last_seq = events.last().expect("non-empty").seq;
    let mut log = DecisionLog::restore(events, 1024, true);
    log.record(
        40,
        DecisionEvent::TenantEvicted {
            tenant: "s0-t07".into(),
        },
    );
    let appended = log.to_vec();
    assert_eq!(
        appended.last().expect("appended").seq,
        last_seq + 1,
        "post-restore events must extend the sequence, not fork it"
    );
}
