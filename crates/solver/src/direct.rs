//! The DIRECT (DIviding RECTangles) global optimization algorithm
//! (Jones et al.), used by the paper via the Tomlab solver library (§5–6)
//! and implemented here from scratch.
//!
//! DIRECT minimizes a black-box function over a box by maintaining a set
//! of hyperrectangles, each evaluated at its center. Every iteration it
//! selects the *potentially optimal* rectangles — the lower convex hull of
//! (diameter, f) — and trisects them along their longest sides. The `ε`
//! parameter trades global exploration against local refinement: this is
//! the knob §6 tunes ("a parameter of DIRECT that determines the ratio of
//! time spent in local versus global search").
//!
//! The search is fully deterministic.

/// Configuration for a DIRECT run.
#[derive(Debug, Clone, Copy)]
pub struct DirectConfig {
    /// Evaluation budget.
    pub max_evals: usize,
    /// Iteration (division round) budget.
    pub max_iters: usize,
    /// Jones' ε: minimum non-trivial improvement, relative to |f_min|.
    /// Larger values bias toward large rectangles (global search).
    pub epsilon: f64,
    /// Stop as soon as a value below this is found (used by the K′
    /// binary search to bail out once feasibility is proven).
    pub stop_below: Option<f64>,
}

impl Default for DirectConfig {
    fn default() -> DirectConfig {
        DirectConfig {
            max_evals: 20_000,
            max_iters: 1_000,
            epsilon: 1e-4,
            stop_below: None,
        }
    }
}

/// Result of a DIRECT run.
#[derive(Debug, Clone)]
pub struct DirectResult {
    /// Best point found, in the unit cube.
    pub best_x: Vec<f64>,
    pub best_f: f64,
    pub evals: usize,
    pub iterations: usize,
}

#[derive(Debug, Clone)]
struct Rect {
    center: Vec<f64>,
    f: f64,
    /// Trisection count per dimension; side length = 3^-level.
    levels: Vec<u16>,
    /// Cached half-diagonal (the "size" d).
    d: f64,
}

fn half_diagonal(levels: &[u16]) -> f64 {
    let sum: f64 = levels.iter().map(|&l| 3f64.powi(-2 * l as i32)).sum();
    0.5 * sum.sqrt()
}

/// Minimize `f` over the unit cube `[0,1]^dims`.
pub fn direct_minimize(
    dims: usize,
    cfg: &DirectConfig,
    mut f: impl FnMut(&[f64]) -> f64,
) -> DirectResult {
    assert!(dims > 0, "need at least one dimension");
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    let center = vec![0.5; dims];
    let f0 = eval(&center, &mut evals);
    let mut rects = vec![Rect {
        center,
        f: f0,
        levels: vec![0; dims],
        d: half_diagonal(&vec![0; dims]),
    }];
    let mut best_f = f0;
    let mut best_x = rects[0].center.clone();
    let mut iterations = 0usize;

    let stop_hit = |best: f64| cfg.stop_below.is_some_and(|s| best < s);

    // A division needs at least two evaluations; with fewer left the
    // search cannot make progress.
    'outer: while iterations < cfg.max_iters && evals + 2 <= cfg.max_evals && !stop_hit(best_f) {
        iterations += 1;
        let selected = potentially_optimal(&rects, best_f, cfg.epsilon);
        if selected.is_empty() {
            break;
        }
        // Indices must be processed largest-first so splits appending new
        // rects don't disturb earlier indices; collect first.
        for &ri in selected.iter().rev() {
            if evals >= cfg.max_evals || stop_hit(best_f) {
                break 'outer;
            }
            // Longest sides = dimensions at the minimum level.
            let min_level = *rects[ri].levels.iter().min().expect("non-empty");
            let long_dims: Vec<usize> = (0..dims)
                .filter(|&i| rects[ri].levels[i] == min_level)
                .collect();
            let delta = 3f64.powi(-(min_level as i32 + 1));

            // Sample c ± δ e_i for every long dimension:
            // (dimension, f(c−δ), f(c+δ), c−δ, c+δ).
            type AxisSample = (usize, f64, f64, Vec<f64>, Vec<f64>);
            let mut samples: Vec<AxisSample> = Vec::new();
            for &i in &long_dims {
                if evals + 2 > cfg.max_evals {
                    break;
                }
                let mut lo = rects[ri].center.clone();
                let mut hi = rects[ri].center.clone();
                lo[i] = (lo[i] - delta).clamp(0.0, 1.0);
                hi[i] = (hi[i] + delta).clamp(0.0, 1.0);
                let f_lo = eval(&lo, &mut evals);
                let f_hi = eval(&hi, &mut evals);
                if f_lo < best_f {
                    best_f = f_lo;
                    best_x = lo.clone();
                }
                if f_hi < best_f {
                    best_f = f_hi;
                    best_x = hi.clone();
                }
                samples.push((i, f_lo, f_hi, lo, hi));
            }
            if samples.is_empty() {
                continue;
            }
            // Divide in order of best sample value (Jones' rule).
            samples.sort_by(|a, b| {
                a.1.min(a.2)
                    .partial_cmp(&b.1.min(b.2))
                    .expect("NaN objective")
            });
            for (i, f_lo, f_hi, lo, hi) in samples {
                rects[ri].levels[i] += 1;
                let levels = rects[ri].levels.clone();
                let d = half_diagonal(&levels);
                rects.push(Rect {
                    center: lo,
                    f: f_lo,
                    levels: levels.clone(),
                    d,
                });
                rects.push(Rect {
                    center: hi,
                    f: f_hi,
                    levels,
                    d,
                });
            }
            rects[ri].d = half_diagonal(&rects[ri].levels);
        }
    }

    DirectResult {
        best_x,
        best_f,
        evals,
        iterations,
    }
}

/// Indices of potentially-optimal rectangles: the lower-right convex hull
/// of (d, f), ε-filtered.
fn potentially_optimal(rects: &[Rect], f_min: f64, epsilon: f64) -> Vec<usize> {
    // Min-f representative per diameter class, keyed by quantized d so the
    // grouping is O(rects) rather than O(rects × classes).
    let mut by_class: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, r) in rects.iter().enumerate() {
        let key = (r.d * 1e12).round() as u64;
        by_class
            .entry(key)
            .and_modify(|bi| {
                if r.f < rects[*bi].f {
                    *bi = i;
                }
            })
            .or_insert(i);
    }
    let mut best_per_d: Vec<(f64, usize)> =
        by_class.into_values().map(|i| (rects[i].d, i)).collect();
    best_per_d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN diameter"));

    // Lower convex hull over ascending d.
    let mut hull: Vec<(f64, usize)> = Vec::new();
    for &(d, i) in &best_per_d {
        let fi = rects[i].f;
        while hull.len() >= 2 {
            let (d1, i1) = hull[hull.len() - 2];
            let (d2, i2) = hull[hull.len() - 1];
            let (f1, f2) = (rects[i1].f, rects[i2].f);
            // Remove i2 if it lies above segment (d1,f1)-(d,fi).
            let cross = (d2 - d1) * (fi - f1) - (f2 - f1) * (d - d1);
            if cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        // Also drop dominated points (same or larger f at smaller d handled
        // by hull; equal d handled above).
        hull.push((d, i));
    }

    // Keep only the ascending-f tail from the global minimum onward
    // (smaller rectangles with worse f than a larger one are never
    // potentially optimal), then ε-filter.
    let mut out = Vec::new();
    let n = hull.len();
    for (pos, &(d, i)) in hull.iter().enumerate() {
        let fi = rects[i].f;
        // Must be no larger-d hull point with smaller-or-equal f.
        if hull[pos + 1..].iter().any(|&(_, j)| rects[j].f <= fi) && rects[hull[n - 1].1].f < fi {
            continue;
        }
        // ε-condition against the right neighbour's slope.
        if pos + 1 < n {
            let (d2, j) = hull[pos + 1];
            let slope = (rects[j].f - fi) / (d2 - d);
            let reachable = fi - slope * d;
            if reachable > f_min - epsilon * f_min.abs() {
                continue;
            }
        }
        out.push(i);
    }
    if out.is_empty() && !hull.is_empty() {
        // Always divide at least the largest rectangle.
        out.push(hull[n - 1].1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(dims: usize, evals: usize, f: impl FnMut(&[f64]) -> f64) -> DirectResult {
        direct_minimize(
            dims,
            &DirectConfig {
                max_evals: evals,
                ..Default::default()
            },
            f,
        )
    }

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = run(2, 2000, |x| (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2));
        assert!(r.best_f < 1e-4, "best {}", r.best_f);
        assert!((r.best_x[0] - 0.3).abs() < 0.02);
        assert!((r.best_x[1] - 0.7).abs() < 0.02);
    }

    #[test]
    fn escapes_local_minima_rastrigin() {
        // Rastrigin scaled to [0,1]^2, global minimum at x = 0.5.
        let r = run(2, 6000, |x| {
            let a = 10.0;
            let n = 2.0;
            let mut sum = a * n;
            for &xi in x {
                let z = (xi - 0.5) * 8.0;
                sum += z * z - a * (2.0 * std::f64::consts::PI * z).cos();
            }
            sum
        });
        assert!(r.best_f < 1.0, "best {}", r.best_f);
    }

    #[test]
    fn handles_step_functions() {
        // Piecewise-constant (like floor-decoded assignments): min plateau
        // at x in [0.6, 0.8).
        let r = run(1, 500, |x| {
            let b = (x[0] * 5.0).floor();
            if b == 3.0 {
                0.0
            } else {
                (b - 3.0).abs()
            }
        });
        assert_eq!(r.best_f, 0.0);
        assert!((0.6..0.8).contains(&r.best_x[0]));
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let r = direct_minimize(
            3,
            &DirectConfig {
                max_evals: 100,
                ..Default::default()
            },
            |x| {
                count += 1;
                x.iter().sum()
            },
        );
        assert!(count <= 100);
        assert_eq!(r.evals, count);
    }

    #[test]
    fn stop_below_short_circuits() {
        let mut count = 0usize;
        let r = direct_minimize(
            2,
            &DirectConfig {
                max_evals: 100_000,
                stop_below: Some(0.5),
                ..Default::default()
            },
            |x| {
                count += 1;
                (x[0] - 0.1).abs() + (x[1] - 0.9).abs()
            },
        );
        assert!(r.best_f < 0.5);
        assert!(count < 1000, "should stop early, used {count}");
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |x: &[f64]| (x[0] - 0.21).powi(2) + (x[1] - 0.77).powi(2) + x[2].sin();
        let a = run(3, 3000, f);
        let b = run(3, 3000, f);
        assert_eq!(a.best_x, b.best_x);
        assert_eq!(a.best_f, b.best_f);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn works_in_higher_dimensions() {
        // 20-dim sphere: DIRECT should reach a decent (not perfect) value.
        let r = run(20, 20_000, |x| {
            x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum()
        });
        assert!(r.best_f < 1e-6, "best {}", r.best_f);
    }

    #[test]
    fn larger_epsilon_explores_more_rectangles() {
        // With huge epsilon, refinement around the incumbent is suppressed;
        // the optimizer keeps dividing large rectangles. Check it still
        // converges reasonably on a smooth bowl.
        let r = direct_minimize(
            2,
            &DirectConfig {
                max_evals: 2000,
                epsilon: 0.1,
                ..Default::default()
            },
            |x| (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2),
        );
        assert!(r.best_f < 1e-3);
    }
}
