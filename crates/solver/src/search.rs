//! The full consolidation search (§6): bound K, binary-search the minimum
//! feasible K′, then solve at K′ with a generous budget and polish.
//!
//! "Since upper and lower bounds are typically not too far apart, we can
//! binary search to determine the lowest value K′ of K that leads to a
//! viable solution. [...] We then re-run the solver, giving it a maximum
//! of K′ servers [...]. Limiting the number of possible servers reduces
//! the number of variables, and thus explores a much smaller solution
//! space."

use crate::bounds::{fractional_lower_bound, identity_assignment, upper_bound};
use crate::direct::{direct_minimize, DirectConfig};
use crate::local::polish;
use crate::objective::{evaluate, evaluate_objective, EvalScratch, Evaluation};
use crate::problem::{Assignment, ConsolidationProblem};
use kairos_types::{KairosError, Result};

/// Reusable allocation arena for repeated solves. An online re-solver
/// calls [`solve_warm_with`] every drift event against similarly-sized
/// problems; holding one `SolveScratch` across calls means the DIRECT
/// inner loop (thousands of decode+score evaluations per solve) performs
/// no steady-state allocation.
#[derive(Default)]
pub struct SolveScratch {
    eval: EvalScratch,
    decode_buf: Vec<usize>,
}

/// Any objective below this is feasible (the infeasibility penalty floor).
const FEASIBLE_BELOW: f64 = 1e4;

/// Solver tuning.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// DIRECT evaluations per K-feasibility probe.
    pub probe_evals: usize,
    /// DIRECT evaluations for the final K′ solve.
    pub final_evals: usize,
    /// DIRECT ε (local/global balance).
    pub epsilon: f64,
    /// Local-search rounds after DIRECT (0 disables polish).
    pub polish_rounds: usize,
    /// Online re-solve fast path: when a warm start polishes into a
    /// feasible plan that already meets the fractional lower bound on
    /// machine count, accept it without running the binary search or the
    /// final DIRECT solve (they cannot reduce K further; at most they
    /// rebalance within the same K, which a near-stationary fleet does
    /// not need every drift check). Off by default — one-shot solves keep
    /// the paper's full pipeline.
    pub accept_warm_at_bound: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            probe_evals: 1_500,
            final_evals: 8_000,
            epsilon: 1e-4,
            polish_rounds: 60,
            accept_warm_at_bound: false,
        }
    }
}

/// Full solve output.
#[derive(Debug, Clone)]
pub struct SolveReport {
    pub assignment: Assignment,
    pub evaluation: Evaluation,
    /// (fractional lower bound, upper bound) before the binary search.
    pub k_bounds: (usize, usize),
    /// The minimum feasible K found.
    pub k_final: usize,
    /// Objective evaluations consumed in total.
    pub evals_used: usize,
    /// K values probed, with feasibility outcomes.
    pub probes: Vec<(usize, bool)>,
}

impl SolveReport {
    /// Consolidation ratio against a reference server count.
    pub fn consolidation_ratio(&self, reference_servers: usize) -> f64 {
        reference_servers as f64 / self.assignment.machines_used().max(1) as f64
    }
}

/// Decode a DIRECT point into an assignment over `k` machines. Pinned
/// replica-0 slots are not variables: they sit on their pin.
pub fn decode(problem: &ConsolidationProblem, k: usize, x: &[f64]) -> Assignment {
    let mut machine_of = Vec::new();
    decode_into(problem, k, x, &mut machine_of);
    Assignment::new(machine_of)
}

/// [`decode`] into a caller-owned buffer (cleared first) — the
/// allocation-free variant DIRECT's inner loop uses.
pub fn decode_into(problem: &ConsolidationProblem, k: usize, x: &[f64], out: &mut Vec<usize>) {
    let slots = &problem.slot_series().slots;
    out.clear();
    out.reserve(slots.len());
    let mut xi = 0usize;
    for slot in slots {
        let pinned = if slot.replica == 0 {
            problem.workloads[slot.workload].pinned
        } else {
            None
        };
        match pinned {
            Some(p) => out.push(p.min(k - 1)),
            None => {
                let v = x[xi].clamp(0.0, 1.0);
                xi += 1;
                out.push(((v * k as f64).floor() as usize).min(k - 1));
            }
        }
    }
    debug_assert_eq!(xi, free_dims(problem));
}

/// Number of free decision variables (unpinned slots).
pub fn free_dims(problem: &ConsolidationProblem) -> usize {
    problem
        .slots()
        .iter()
        .filter(|s| !(s.replica == 0 && problem.workloads[s.workload].pinned.is_some()))
        .count()
}

/// Solve at a fixed machine count `k`: DIRECT over the decoded encoding,
/// then local polish. Returns the best assignment, its evaluation, and
/// evaluations used.
pub fn solve_at_k(
    problem: &ConsolidationProblem,
    k: usize,
    evals: usize,
    epsilon: f64,
    polish_rounds: usize,
    stop_on_feasible: bool,
) -> (Assignment, Evaluation, usize) {
    solve_at_k_with(
        problem,
        k,
        evals,
        epsilon,
        polish_rounds,
        stop_on_feasible,
        &mut SolveScratch::default(),
    )
}

/// [`solve_at_k`] with a caller-held scratch arena: DIRECT's inner loop
/// decodes into a reused buffer and scores through the allocation-free
/// [`evaluate_objective`] path instead of materializing a full
/// [`Evaluation`] per point.
pub fn solve_at_k_with(
    problem: &ConsolidationProblem,
    k: usize,
    evals: usize,
    epsilon: f64,
    polish_rounds: usize,
    stop_on_feasible: bool,
    scratch: &mut SolveScratch,
) -> (Assignment, Evaluation, usize) {
    assert!(k >= 1);
    let dims = free_dims(problem).max(1);
    let cfg = DirectConfig {
        max_evals: evals,
        max_iters: usize::MAX,
        epsilon,
        stop_below: if stop_on_feasible {
            Some(FEASIBLE_BELOW)
        } else {
            None
        },
    };
    let series = problem.slot_series().clone();
    let result = direct_minimize(dims, &cfg, |x| {
        decode_into(problem, k, x, &mut scratch.decode_buf);
        evaluate_objective(problem, &series, &scratch.decode_buf, &mut scratch.eval)
    });
    let direct_best = decode(problem, k, &result.best_x);
    if polish_rounds > 0 {
        let polished = polish(problem, &direct_best, k, polish_rounds);
        (polished.assignment, polished.evaluation, result.evals)
    } else {
        let eval = evaluate(problem, &direct_best);
        (direct_best, eval, result.evals)
    }
}

/// The §6-optimized solve: bounds → binary search for K′ → final solve.
pub fn solve(problem: &ConsolidationProblem, cfg: &SolverConfig) -> Result<SolveReport> {
    solve_inner(problem, cfg, None, &mut SolveScratch::default())
}

/// [`solve`] with a caller-held scratch arena (see [`SolveScratch`]).
pub fn solve_with(
    problem: &ConsolidationProblem,
    cfg: &SolverConfig,
    scratch: &mut SolveScratch,
) -> Result<SolveReport> {
    solve_inner(problem, cfg, None, scratch)
}

/// Warm-started solve for online re-planning: `warm` (typically the
/// placement currently deployed) is polished into the initial incumbent
/// and tightens the binary search's upper bound, so a drifted-but-close
/// problem re-solves in a fraction of the cold budget. Combine with
/// [`ConsolidationProblem::with_migration`] to also *prefer* low-churn
/// plans in the objective; without it the warm start only accelerates.
pub fn solve_warm(
    problem: &ConsolidationProblem,
    cfg: &SolverConfig,
    warm: &Assignment,
) -> Result<SolveReport> {
    solve_warm_with(problem, cfg, warm, &mut SolveScratch::default())
}

/// [`solve_warm`] with a caller-held scratch arena (see
/// [`SolveScratch`]) — the online re-solver's zero-steady-state-
/// allocation entry point.
pub fn solve_warm_with(
    problem: &ConsolidationProblem,
    cfg: &SolverConfig,
    warm: &Assignment,
    scratch: &mut SolveScratch,
) -> Result<SolveReport> {
    assert_eq!(
        warm.machine_of.len(),
        problem.slots().len(),
        "warm assignment must cover every placement slot"
    );
    solve_inner(problem, cfg, Some(warm), scratch)
}

fn solve_inner(
    problem: &ConsolidationProblem,
    cfg: &SolverConfig,
    warm: Option<&Assignment>,
    scratch: &mut SolveScratch,
) -> Result<SolveReport> {
    let lower = fractional_lower_bound(problem);
    let (ub_assignment, mut upper) = upper_bound(problem);
    let mut evals_used = 0usize;
    let mut best: Option<(Assignment, Evaluation)> = {
        let eval = evaluate(problem, &ub_assignment);
        if eval.feasible {
            Some((ub_assignment, eval))
        } else {
            // Even the identity may be infeasible (a single workload too
            // big for the target machine).
            let id = identity_assignment(problem);
            let id_eval = evaluate(problem, &id);
            if id_eval.feasible {
                upper = id.machines_used();
                Some((id, id_eval))
            } else {
                None
            }
        }
    };
    // Polish the warm start into a candidate incumbent. When the old plan
    // is still (near-)optimal for the drifted loads, this alone produces
    // the final answer and the search below merely confirms it.
    let mut warm_is_incumbent = false;
    if let Some(w) = warm {
        let polished = polish(problem, w, problem.max_machines, cfg.polish_rounds.max(20));
        if polished.evaluation.feasible {
            upper = upper.min(polished.assignment.machines_used());
            let better = best
                .as_ref()
                .is_none_or(|(_, e)| polished.evaluation.objective < e.objective);
            if better {
                best = Some((polished.assignment, polished.evaluation));
                warm_is_incumbent = true;
            }
        }
    }
    let Some(mut incumbent) = best.take() else {
        return Err(KairosError::Infeasible(
            "no feasible assignment exists even without consolidation; \
             some workload exceeds the target machine"
                .into(),
        ));
    };

    // Online fast path: the *warm-polished* incumbent already sits at
    // the fractional lower bound — no search can use fewer machines, so
    // skip straight to the answer (see
    // `SolverConfig::accept_warm_at_bound`). Gated on the incumbent
    // actually being the warm-derived plan: if the warm polish lost to
    // the baseline-blind greedy bound (e.g. the old placement went
    // infeasible under a spike), accepting greedy here could ship a
    // mass-migration plan the skipped search would have beaten, so the
    // full pipeline runs instead.
    if cfg.accept_warm_at_bound && warm_is_incumbent {
        let used = incumbent.0.machines_used();
        if incumbent.1.feasible && used <= lower {
            let (assignment, evaluation) = incumbent;
            return Ok(SolveReport {
                assignment,
                evaluation,
                k_bounds: (lower, upper),
                k_final: used,
                evals_used: 0,
                probes: Vec::new(),
            });
        }
    }
    let mut probes = Vec::new();

    // Binary search the smallest feasible K in [lower, upper].
    let (mut lo, mut hi) = (lower, upper.max(lower));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let (a, eval, used) = solve_at_k_with(
            problem,
            mid,
            cfg.probe_evals,
            cfg.epsilon,
            cfg.polish_rounds.min(40),
            true,
            scratch,
        );
        evals_used += used;
        let feasible = eval.feasible;
        probes.push((mid, feasible));
        if feasible {
            // The objective is the sole authority: without a migration
            // term it already orders fewer machines first; with one, an
            // equal-machine-count plan that relocates half the fleet must
            // NOT displace a cheaper low-churn incumbent.
            if eval.objective < incumbent.1.objective {
                incumbent = (a, eval);
            }
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let k_final = lo;

    // Final, well-funded solve at K′ with local-search emphasis.
    let (a, eval, used) = solve_at_k_with(
        problem,
        k_final,
        cfg.final_evals,
        cfg.epsilon,
        cfg.polish_rounds,
        false,
        scratch,
    );
    evals_used += used;
    if eval.feasible && eval.objective < incumbent.1.objective {
        incumbent = (a, eval);
    }

    let (assignment, evaluation) = incumbent;
    Ok(SolveReport {
        assignment,
        evaluation,
        k_bounds: (lower, upper),
        k_final,
        evals_used,
        probes,
    })
}

/// The unoptimized comparator for §7.5's solver-performance experiment:
/// a single raw DIRECT run over the full `max_machines` space — no
/// bounding, no binary search, no local-search polish (the paper's naive
/// Tomlab/DIRECT application).
pub fn solve_unbounded(problem: &ConsolidationProblem, cfg: &SolverConfig) -> Result<SolveReport> {
    let k = problem.max_machines;
    let (assignment, evaluation, evals_used) =
        solve_at_k(problem, k, cfg.final_evals, cfg.epsilon, 0, false);
    if !evaluation.feasible {
        return Err(KairosError::Infeasible(
            "unbounded DIRECT run found no feasible assignment".into(),
        ));
    }
    Ok(SolveReport {
        assignment,
        evaluation,
        k_bounds: (1, k),
        k_final: k,
        evals_used,
        probes: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearDiskCombiner, TargetMachine, WorkloadSpec};
    use std::sync::Arc;

    fn problem(cpus: &[f64]) -> ConsolidationProblem {
        let w = cpus
            .iter()
            .enumerate()
            .map(|(i, &c)| WorkloadSpec::flat(format!("w{i}"), 3, c, 2e9, 2e8, 50.0))
            .collect();
        ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            cpus.len(),
            Arc::new(LinearDiskCombiner::default()),
        )
    }

    #[test]
    fn decode_maps_unit_interval_to_machines() {
        let p = problem(&[1.0, 1.0, 1.0]);
        let a = decode(&p, 3, &[0.0, 0.5, 0.99]);
        assert_eq!(a.machine_of, vec![0, 1, 2]);
    }

    #[test]
    fn decode_skips_pinned_slots() {
        let mut p = problem(&[1.0, 1.0, 1.0]);
        p.workloads[1].pinned = Some(2);
        assert_eq!(free_dims(&p), 2);
        let a = decode(&p, 3, &[0.1, 0.9]);
        assert_eq!(a.machine_of, vec![0, 2, 2]);
    }

    #[test]
    fn solve_consolidates_light_workloads_to_one_machine() {
        // 8 × 1-core workloads on 12-core targets: K′ = 1.
        let p = problem(&[1.0; 8]);
        let report = solve(&p, &SolverConfig::default()).unwrap();
        assert!(report.evaluation.feasible);
        assert_eq!(report.assignment.machines_used(), 1);
        assert_eq!(report.k_final, 1);
        assert!(report.k_bounds.0 <= report.k_final);
    }

    #[test]
    fn solve_matches_fractional_bound_when_tight() {
        // 6 × 4-core = 24 cores → fractional bound = ceil(24/11.4) = 3.
        let p = problem(&[4.0; 6]);
        let report = solve(&p, &SolverConfig::default()).unwrap();
        assert!(report.evaluation.feasible);
        assert_eq!(report.k_bounds.0, 3);
        assert_eq!(report.assignment.machines_used(), 3);
    }

    #[test]
    fn solve_balances_across_machines() {
        // 4 × 5-core workloads: need 2 machines, balanced 2+2.
        let p = problem(&[5.0; 4]);
        let report = solve(&p, &SolverConfig::default()).unwrap();
        assert_eq!(report.assignment.machines_used(), 2);
        let by = report.assignment.by_machine();
        for (_, slots) in by {
            assert_eq!(slots.len(), 2, "expected a 2+2 split");
        }
    }

    #[test]
    fn solve_handles_replication() {
        let mut p = problem(&[1.0, 1.0]);
        p.workloads[0].replicas = 2;
        p.max_machines = 3;
        let report = solve(&p, &SolverConfig::default()).unwrap();
        assert!(report.evaluation.feasible);
        // Replicas on distinct machines forces ≥ 2 machines.
        assert!(report.assignment.machines_used() >= 2);
    }

    #[test]
    fn solve_errors_when_single_workload_cannot_fit() {
        let p = problem(&[50.0]); // 50 cores > 12-core target
        let err = solve(&p, &SolverConfig::default()).unwrap_err();
        assert!(matches!(err, KairosError::Infeasible(_)));
    }

    #[test]
    fn bounded_uses_fewer_evals_than_unbounded_for_same_quality() {
        let p = problem(&[2.0, 3.0, 1.0, 4.0, 2.0, 3.0, 1.5, 2.5]);
        let cfg = SolverConfig::default();
        let bounded = solve(&p, &cfg).unwrap();
        let unbounded = solve_unbounded(&p, &cfg).unwrap();
        assert!(bounded.evaluation.feasible && unbounded.evaluation.feasible);
        assert!(
            bounded.assignment.machines_used() <= unbounded.assignment.machines_used(),
            "bounded {} vs unbounded {}",
            bounded.assignment.machines_used(),
            unbounded.assignment.machines_used()
        );
    }

    #[test]
    fn consolidation_ratio_computed_vs_reference() {
        let p = problem(&[1.0; 8]);
        let report = solve(&p, &SolverConfig::default()).unwrap();
        assert!((report.consolidation_ratio(8) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn solve_is_deterministic() {
        let p = problem(&[2.0, 3.0, 1.0, 4.0]);
        let a = solve(&p, &SolverConfig::default()).unwrap();
        let b = solve(&p, &SolverConfig::default()).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.evals_used, b.evals_used);
    }

    #[test]
    fn warm_start_with_migration_prefers_low_churn() {
        // Six 3-core workloads, currently balanced 2+2+2 across three
        // machines — a perfectly good plan (18 cores / 11.4 per machine
        // needs ≥ 2; 3 is near-optimal but stable). After a mild drift,
        // the warm solve with migration cost must keep churn low, while
        // still producing a feasible plan.
        let p = problem(&[3.0, 3.0, 3.0, 3.0, 3.2, 3.2]);
        let current = Assignment::new(vec![0, 0, 1, 1, 2, 2]);
        assert!(evaluate(&p, &current).feasible);

        let baseline = current.machine_of.iter().map(|&m| Some(m)).collect();
        let warm_p = p.clone().with_migration(baseline, 0.5);
        let report = solve_warm(&warm_p, &SolverConfig::default(), &current).unwrap();
        assert!(report.evaluation.feasible);
        // With every machine fairly loaded and moves costing 0.5 each, a
        // wholesale reshuffle cannot win: most slots stay put.
        assert!(
            report.evaluation.moves_from_baseline <= 2,
            "warm re-solve moved {} of 6 slots",
            report.evaluation.moves_from_baseline
        );
    }

    #[test]
    fn warm_start_still_repairs_infeasible_current_plans() {
        // The current plan overloads machine 0 (3 × 5 cores > 11.4); the
        // warm solve must move something despite the migration cost.
        let p = problem(&[5.0, 5.0, 5.0, 1.0]);
        let current = Assignment::new(vec![0, 0, 0, 1]);
        assert!(!evaluate(&p, &current).feasible);

        let baseline = current.machine_of.iter().map(|&m| Some(m)).collect();
        let warm_p = p.clone().with_migration(baseline, 0.5);
        let report = solve_warm(&warm_p, &SolverConfig::default(), &current).unwrap();
        assert!(
            report.evaluation.feasible,
            "warm solve must repair overload"
        );
        assert!(report.evaluation.moves_from_baseline >= 1);
    }

    #[test]
    fn warm_start_matches_cold_quality_without_migration_cost() {
        let p = problem(&[2.0, 3.0, 1.0, 4.0, 2.0, 3.0]);
        let cold = solve(&p, &SolverConfig::default()).unwrap();
        let start = Assignment::new((0..p.slots().len()).collect());
        let warm = solve_warm(&p, &SolverConfig::default(), &start).unwrap();
        assert!(warm.evaluation.feasible);
        assert!(
            warm.assignment.machines_used() <= cold.assignment.machines_used(),
            "warm ({}) must not be worse than cold ({})",
            warm.assignment.machines_used(),
            cold.assignment.machines_used()
        );
    }
}
