//! The sharded fleet control plane.
//!
//! [`FleetController`] owns N independent [`ShardController`]s — each
//! with its own telemetry ingester, drift detector, warm re-solver,
//! migration planner and executor over a disjoint slice of hosts — plus
//! the [`crate::balancer`] policy that moves tenants between shards via
//! the two-phase handoff of [`crate::handoff`]. One `tick()` advances
//! every shard one monitoring interval and, on the balance cadence, runs
//! one balance round.
//!
//! The hierarchy is what makes the control plane scale: per-shard
//! re-solves see only their shard's tenants (solve cost grows with shard
//! size, not fleet size), while the balancer sees only coarse per-shard
//! summaries ([`kairos_traces::aggregate`] roll-ups), never per-tenant
//! telemetry.

use crate::balancer::{candidate_order, donor_order, receiver_order, BalancerConfig};
use crate::handoff::{HandoffOutcome, HandoffRecord};
use crate::shardmap::ShardMap;
use kairos_controller::{
    ControllerConfig, ShardController, ShardSummary, TelemetrySource, TickOutcome,
};
use kairos_core::ConsolidationEngine;
use kairos_solver::{evaluate, Assignment, Evaluation};
use kairos_types::WorkloadProfile;

/// Fleet-level tuning.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of shards. Each runs an independent control loop over its
    /// own (shard-local) machine namespace.
    pub shards: usize,
    /// Per-shard loop tuning.
    pub shard: ControllerConfig,
    pub balancer: BalancerConfig,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 4,
            shard: ControllerConfig::default(),
            balancer: BalancerConfig::default(),
        }
    }
}

/// Fleet-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetStats {
    pub ticks: u64,
    pub balance_rounds: u64,
    pub handoffs_completed: u64,
    pub handoffs_rejected: u64,
}

/// What one fleet tick did.
#[derive(Debug)]
pub struct FleetTickReport {
    /// Per-shard outcome, indexed by shard.
    pub outcomes: Vec<TickOutcome>,
    /// Handoffs proposed by this tick's balance round (empty off-cadence).
    pub handoffs: Vec<HandoffRecord>,
}

/// Global placement audit: every shard's placement re-evaluated against
/// the shard-local restriction of one global problem
/// ([`kairos_solver::ConsolidationProblem::restrict`]).
#[derive(Debug)]
pub struct FleetAudit {
    /// Per shard: `None` while bootstrapping (or mid-handoff tenants not
    /// yet placed), otherwise the evaluation of its current placement.
    pub per_shard: Vec<Option<Evaluation>>,
    /// Machines in use per shard.
    pub machines_used: Vec<usize>,
}

impl FleetAudit {
    /// Every planned shard's placement is feasible — zero capacity
    /// violations fleet-wide.
    pub fn zero_violations(&self) -> bool {
        self.per_shard
            .iter()
            .flatten()
            .all(|e| e.feasible && e.violation == 0.0)
    }

    /// Every shard evaluated (none bootstrapping / mid-handoff).
    pub fn complete(&self) -> bool {
        self.per_shard.iter().all(|e| e.is_some())
    }

    /// All shards within the machine budget.
    pub fn within_budget(&self, budget: usize) -> bool {
        self.machines_used.iter().all(|&m| m <= budget)
    }

    pub fn total_machines(&self) -> usize {
        self.machines_used.iter().sum()
    }
}

/// The top-level control plane. See module docs.
pub struct FleetController {
    cfg: FleetConfig,
    shards: Vec<ShardController>,
    map: ShardMap,
    /// Fleet-wide anti-affinity pairs (by name); registered on every
    /// shard so they keep holding wherever a handoff lands a tenant.
    anti_affinity: Vec<(String, String)>,
    handoff_log: Vec<HandoffRecord>,
    stats: FleetStats,
}

impl FleetController {
    /// A fleet whose shards all run the default consolidation engine.
    pub fn new(cfg: FleetConfig) -> FleetController {
        let engines = (0..cfg.shards)
            .map(|_| ConsolidationEngine::builder().build())
            .collect();
        FleetController::with_engines(cfg, engines)
    }

    /// A fleet with one pre-built engine per shard (custom machine
    /// classes, disk models, solver budgets).
    ///
    /// # Panics
    /// Panics unless `engines.len() == cfg.shards`.
    pub fn with_engines(cfg: FleetConfig, engines: Vec<ConsolidationEngine>) -> FleetController {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert_eq!(engines.len(), cfg.shards, "one engine per shard");
        let shards = engines
            .into_iter()
            .map(|e| ShardController::new(cfg.shard, e))
            .collect();
        FleetController {
            map: ShardMap::new(cfg.shards),
            cfg,
            shards,
            anti_affinity: Vec::new(),
            handoff_log: Vec::new(),
            stats: FleetStats::default(),
        }
    }

    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    pub fn shards(&self) -> &[ShardController] {
        &self.shards
    }

    /// All handoffs ever proposed (completed and rejected).
    pub fn handoffs(&self) -> &[HandoffRecord] {
        &self.handoff_log
    }

    /// Admit a new tenant, assigned to the least-populated shard.
    /// Returns the shard chosen.
    pub fn add_workload(&mut self, source: Box<dyn TelemetrySource>) -> usize {
        let shard = self.map.least_populated();
        self.add_workload_to(shard, source);
        shard
    }

    /// Admit a new tenant to a specific shard (initial partitioning).
    pub fn add_workload_to(&mut self, shard: usize, source: Box<dyn TelemetrySource>) {
        self.map.assign(source.name(), shard);
        self.shards[shard].add_workload(source);
    }

    /// Admit a replicated tenant to a specific shard.
    pub fn add_workload_with_replicas(
        &mut self,
        shard: usize,
        source: Box<dyn TelemetrySource>,
        replicas: u32,
    ) {
        self.map.assign(source.name(), shard);
        self.shards[shard].add_workload_with_replicas(source, replicas);
    }

    /// Retire a tenant wherever it currently lives.
    pub fn remove_workload(&mut self, name: &str) {
        if let Some(shard) = self.map.remove(name) {
            self.shards[shard].remove_workload(name);
        }
    }

    /// Declare a fleet-wide anti-affinity pair. Holds inside whatever
    /// shard the tenants occupy, including after handoffs (every shard
    /// carries the full pair list; pairs split across shards are
    /// trivially satisfied).
    pub fn add_anti_affinity(&mut self, a: &str, b: &str) {
        self.anti_affinity.push((a.to_string(), b.to_string()));
        for s in &mut self.shards {
            s.add_anti_affinity(a, b);
        }
    }

    /// Fleet-wide anti-affinity pairs registered so far.
    pub fn anti_affinity(&self) -> &[(String, String)] {
        &self.anti_affinity
    }

    /// Per-shard summaries (the balancer's input, exposed for
    /// observability).
    pub fn summaries(&self) -> Vec<ShardSummary> {
        self.shards.iter().map(|s| s.summary()).collect()
    }

    /// One monitoring interval: every shard ticks; on the balance
    /// cadence, one balance round runs.
    pub fn tick(&mut self) -> FleetTickReport {
        self.stats.ticks += 1;
        let outcomes: Vec<TickOutcome> = self.shards.iter_mut().map(|s| s.tick()).collect();

        let on_cadence = self
            .stats
            .ticks
            .is_multiple_of(self.cfg.balancer.balance_every.max(1));
        let all_planned = self.shards.iter().all(|s| s.planned_once());
        let handoffs = if on_cadence && all_planned {
            self.balance_round()
        } else {
            Vec::new()
        };
        FleetTickReport { outcomes, handoffs }
    }

    /// One balance round: donors shed their heaviest tenants to the
    /// emptiest shards that can reserve capacity for them.
    fn balance_round(&mut self) -> Vec<HandoffRecord> {
        self.stats.balance_rounds += 1;
        let budget = self.cfg.balancer.machines_per_shard;
        let summaries = self.summaries();
        let mut records = Vec::new();
        let mut moves_left = self.cfg.balancer.max_moves_per_round;

        for donor in donor_order(&summaries, budget) {
            // A saturated fleet can leave a donor with no willing
            // receiver; after a couple of failed reservations this round,
            // stop probing the rest of its tenants (smaller candidates
            // rarely fit where bigger ones already failed, and the next
            // round re-evaluates from fresh summaries anyway).
            let mut rejections = 0;
            for tenant in candidate_order(&summaries[donor]) {
                if moves_left == 0 || rejections >= 2 {
                    break;
                }
                // Shedding stops as soon as what remains packs within
                // budget again (greedy estimate, like the reservation;
                // already-evicted tenants are gone from the donor's
                // forecast, so the estimate reflects them).
                let est = self.shards[donor].pack_estimate(&[]).unwrap_or(usize::MAX);
                if est <= budget {
                    break;
                }
                let Some(profile) = self.shards[donor].forecast_workload(&tenant) else {
                    continue;
                };
                // Phase 1 — reservation: first receiver (emptiest-first)
                // that certifies capacity for the tenant.
                let receiver = receiver_order(&summaries, donor, budget)
                    .into_iter()
                    .find(|&r| self.shards[r].can_admit(&profile, budget));
                match receiver {
                    Some(to) => {
                        // Phase 2 — transfer: evict (frees capacity on
                        // the donor) then admit (telemetry travels; the
                        // receiver replans membership next tick).
                        let handoff = self.shards[donor]
                            .evict(&tenant)
                            .expect("candidate listed by donor summary");
                        self.shards[to].admit(handoff);
                        self.map.assign(&tenant, to);
                        moves_left -= 1;
                        self.stats.handoffs_completed += 1;
                        records.push(HandoffRecord {
                            tenant,
                            from: donor,
                            to: Some(to),
                            tick: self.stats.ticks,
                            outcome: HandoffOutcome::Completed,
                        });
                    }
                    None => {
                        rejections += 1;
                        self.stats.handoffs_rejected += 1;
                        records.push(HandoffRecord {
                            tenant,
                            from: donor,
                            to: None,
                            tick: self.stats.ticks,
                            outcome: HandoffOutcome::NoReceiver,
                        });
                    }
                }
            }
        }
        self.handoff_log.extend(records.iter().cloned());
        records
    }

    /// Global audit: build one problem over every tenant's forecast,
    /// restrict it shard-by-shard
    /// ([`kairos_solver::ConsolidationProblem::restrict`]), and evaluate
    /// each shard's current placement against its restriction. The
    /// fleet-wide "are we violation-free" check the acceptance scenarios
    /// assert on.
    pub fn audit(&self) -> FleetAudit {
        let mut profiles: Vec<WorkloadProfile> = Vec::new();
        let mut shard_indices: Vec<Vec<usize>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let fleet = shard.forecast_fleet();
            let start = profiles.len();
            shard_indices.push((start..start + fleet.len()).collect());
            profiles.extend(fleet);
        }
        let machines_used: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.placement().machines_used())
            .collect();
        if profiles.is_empty() {
            return FleetAudit {
                per_shard: vec![None; self.shards.len()],
                machines_used,
            };
        }
        // Build the global problem with shard 0's real engine (machine
        // class, headroom, disk model) rather than a fresh default — the
        // audit must judge placements by the capacities the shards
        // actually solve under. Shards are assumed homogeneous (the
        // global problem is only meaningful for one target class), and
        // every shard carries the full fleet anti-affinity list, so the
        // shard's own constraint plumbing applies the pairs by name.
        let Ok(global) = self.shards[0].problem_for(&profiles) else {
            return FleetAudit {
                per_shard: vec![None; self.shards.len()],
                machines_used,
            };
        };

        let mut per_shard = Vec::with_capacity(self.shards.len());
        for (shard, keep) in self.shards.iter().zip(&shard_indices) {
            if keep.is_empty() || !shard.planned_once() {
                per_shard.push(None);
                continue;
            }
            let sub = global.restrict(keep);
            let slots = sub.slots();
            let mut machine_of = Vec::with_capacity(slots.len());
            let mut complete = true;
            for slot in &slots {
                let name = &sub.workloads[slot.workload].name;
                match shard.placement().machine_of(name, slot.replica) {
                    Some(m) => machine_of.push(m),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            per_shard.push(if complete {
                Some(evaluate(&sub, &Assignment::new(machine_of)))
            } else {
                None
            });
        }
        FleetAudit {
            per_shard,
            machines_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_controller::SyntheticSource;
    use kairos_types::Bytes;
    use kairos_workloads::RatePattern;

    fn quick_cfg(shards: usize, budget: usize) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ControllerConfig {
                horizon: 8,
                check_every: 4,
                cooldown_ticks: 8,
                ..ControllerConfig::default()
            },
            balancer: BalancerConfig {
                machines_per_shard: budget,
                balance_every: 4,
                max_moves_per_round: 4,
            },
        }
    }

    fn flat(name: String, tps: f64) -> SyntheticSource {
        SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps }).with_noise(0.0)
    }

    fn run(fleet: &mut FleetController, ticks: u64) {
        for _ in 0..ticks {
            fleet.tick();
        }
    }

    #[test]
    fn shards_bootstrap_independently_and_audit_clean() {
        let mut fleet = FleetController::new(quick_cfg(2, 8));
        for i in 0..6 {
            fleet.add_workload(Box::new(flat(format!("t{i:02}"), 200.0)));
        }
        assert_eq!(fleet.map().counts(), vec![3, 3]);
        run(&mut fleet, 20);
        let audit = fleet.audit();
        assert!(audit.complete(), "both shards must have planned");
        assert!(audit.zero_violations());
        assert!(audit.within_budget(8));
        assert!(fleet.handoffs().is_empty(), "balanced fleet: no handoffs");
    }

    #[test]
    fn overloaded_shard_sheds_to_peer() {
        // Shard 0 gets 10 heavy tenants (4 cores each → ~4 machines),
        // shard 1 gets 2 light ones. Budget 3: shard 0 must shed.
        let mut fleet = FleetController::new(quick_cfg(2, 3));
        for i in 0..10 {
            fleet.add_workload_to(0, Box::new(flat(format!("heavy-{i:02}"), 400.0)));
        }
        for i in 0..2 {
            fleet.add_workload_to(1, Box::new(flat(format!("light-{i}"), 100.0)));
        }
        run(&mut fleet, 40);
        let stats = fleet.stats();
        assert!(
            stats.handoffs_completed >= 1,
            "balancer must move tenants: {stats:?}"
        );
        let audit = fleet.audit();
        assert!(audit.complete());
        assert!(audit.zero_violations());
        assert!(
            audit.within_budget(3),
            "both shards within budget, got {:?}",
            audit.machines_used
        );
        // The shard map agrees with who actually runs each tenant.
        for (i, shard) in fleet.shards().iter().enumerate() {
            for name in shard.workloads() {
                assert_eq!(fleet.map().shard_of(&name), Some(i));
            }
        }
    }

    #[test]
    fn remove_workload_routes_to_owning_shard() {
        let mut fleet = FleetController::new(quick_cfg(2, 8));
        for i in 0..4 {
            fleet.add_workload(Box::new(flat(format!("t{i}"), 150.0)));
        }
        run(&mut fleet, 12);
        let shard = fleet.map().shard_of("t1").unwrap();
        fleet.remove_workload("t1");
        assert_eq!(fleet.map().shard_of("t1"), None);
        assert!(!fleet.shards()[shard].has_workload("t1"));
    }
}
