//! The single-resource greedy baseline of §7.3.
//!
//! "This algorithm considers only a single resource, and places each
//! workload in the most loaded server where it will fit using a first-fit
//! bin packer. We then discard final solutions that violate the
//! constraints on the other resources. We repeat this packing once for
//! each resource, then take the solution that requires the fewest
//! servers."

use crate::objective::evaluate;
use crate::problem::{Assignment, ConsolidationProblem};

/// The resource a greedy pass packs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyResource {
    Cpu,
    Ram,
    Disk,
}

impl GreedyResource {
    pub const ALL: [GreedyResource; 3] = [
        GreedyResource::Cpu,
        GreedyResource::Ram,
        GreedyResource::Disk,
    ];
}

/// Result of the greedy strategy.
#[derive(Debug, Clone)]
pub struct GreedyReport {
    pub assignment: Assignment,
    pub resource: GreedyResource,
    pub machines_used: usize,
}

/// Pack on a single resource; returns the assignment even if other
/// resources end up violated (the caller filters).
///
/// Hot path for the fleet balancer's reservation probes
/// (`can_admit`/`pack_estimate` run one greedy pack per candidate): slot
/// series and packing keys come from the problem's structure-of-arrays
/// cache, and per-machine total load is maintained incrementally instead
/// of being re-summed inside every candidate-order comparison.
fn pack_one(problem: &ConsolidationProblem, resource: GreedyResource) -> Assignment {
    let series = problem.slot_series().clone();
    let slots = &series.slots;
    let windows = problem.windows;
    let k_max = problem.max_machines;

    // Per-machine per-window sums of the packed resource, plus occupancy
    // for anti-affinity and a running total for candidate ordering.
    let mut load: Vec<Vec<f64>> = vec![vec![0.0; windows]; k_max];
    let mut ws_sum: Vec<Vec<f64>> = vec![vec![0.0; windows]; k_max];
    let mut load_total: Vec<f64> = vec![0.0; k_max];
    let mut occupants: Vec<Vec<usize>> = vec![Vec::new(); k_max];
    let mut machine_of = vec![usize::MAX; slots.len()];

    let slot_series = |s: usize| -> (&[f64], &[f64]) {
        match resource {
            GreedyResource::Cpu => (series.cpu_of(s), series.ws_of(s)),
            GreedyResource::Ram => (series.ram_of(s), series.ws_of(s)),
            GreedyResource::Disk => (series.rate_of(s), series.ws_of(s)),
        }
    };

    // Sort slots by descending peak demand (first-fit decreasing),
    // keyed by the cached per-slot maxima.
    let peak_of = |s: usize| -> f64 {
        match resource {
            GreedyResource::Cpu => series.cpu_max[s],
            GreedyResource::Ram => series.ram_max[s],
            GreedyResource::Disk => series.rate_max[s],
        }
    };
    let mut order: Vec<usize> = (0..slots.len()).collect();
    order.sort_by(|&a, &b| peak_of(b).partial_cmp(&peak_of(a)).expect("NaN demand"));

    let fits = |problem: &ConsolidationProblem,
                load: &[f64],
                ws_sum: &[f64],
                s: usize,
                resource: GreedyResource|
     -> bool {
        let headroom = problem.headroom;
        let (res, ws) = slot_series(s);
        for t in 0..problem.windows {
            let ok = match resource {
                GreedyResource::Cpu => (load[t] + res[t]) / problem.machine.cpu_cores <= headroom,
                GreedyResource::Ram => (load[t] + res[t]) / problem.machine.ram_bytes <= headroom,
                GreedyResource::Disk => {
                    problem
                        .disk
                        .utilization(ws_sum[t] + ws[t], load[t] + res[t])
                        <= headroom
                }
            };
            if !ok {
                return false;
            }
        }
        true
    };

    for &s in &order {
        let slot = slots[s];
        let w = slot.workload;
        // Candidate machines ordered by current load (most loaded first);
        // pinned replica 0 goes straight to its pin.
        let pinned = if slot.replica == 0 {
            problem.workloads[w].pinned
        } else {
            None
        };
        let mut placed = false;
        let pick_list: Vec<usize> = match pinned {
            Some(p) => vec![p],
            None => {
                let mut candidates: Vec<usize> = (0..k_max).collect();
                candidates
                    .sort_by(|&a, &b| load_total[b].partial_cmp(&load_total[a]).expect("NaN load"));
                candidates
            }
        };
        for m in pick_list {
            // Anti-affinity: replicas of the same workload, explicit pairs.
            let conflict = occupants[m].iter().any(|&other| {
                other == w
                    || problem
                        .anti_affinity
                        .iter()
                        .any(|&(x, y)| (x, y) == (w, other) || (y, x) == (w, other))
            });
            if conflict {
                continue;
            }
            if pinned.is_some() || fits(problem, &load[m], &ws_sum[m], s, resource) {
                let (res, ws) = slot_series(s);
                for t in 0..windows {
                    load[m][t] += res[t];
                    ws_sum[m][t] += ws[t];
                    load_total[m] += res[t];
                }
                occupants[m].push(w);
                machine_of[s] = m;
                placed = true;
                break;
            }
        }
        if !placed {
            // No machine fits: dump on the least-loaded machine; the full
            // evaluation will flag the violation.
            let m = (0..k_max)
                .min_by(|&a, &b| load_total[a].partial_cmp(&load_total[b]).expect("NaN load"))
                .expect("at least one machine");
            occupants[m].push(w);
            machine_of[s] = m;
        }
    }

    Assignment::new(machine_of)
}

/// Run the greedy strategy across all three resources; `None` when every
/// single-resource packing violates some other constraint (the paper's
/// "cannot be applied in all scenarios").
pub fn greedy_pack(problem: &ConsolidationProblem) -> Option<GreedyReport> {
    let mut best: Option<GreedyReport> = None;
    for r in GreedyResource::ALL {
        let assignment = pack_one(problem, r);
        let eval = evaluate(problem, &assignment);
        if !eval.feasible {
            continue;
        }
        let used = assignment.machines_used();
        if best.as_ref().is_none_or(|b| used < b.machines_used) {
            best = Some(GreedyReport {
                assignment,
                resource: r,
                machines_used: used,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearDiskCombiner, TargetMachine, WorkloadSpec};
    use std::sync::Arc;

    fn problem(cpus: &[f64]) -> ConsolidationProblem {
        let w = cpus
            .iter()
            .enumerate()
            .map(|(i, &c)| WorkloadSpec::flat(format!("w{i}"), 2, c, 1e9, 1e8, 10.0))
            .collect();
        ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            cpus.len(),
            Arc::new(LinearDiskCombiner::default()),
        )
    }

    #[test]
    fn greedy_packs_cpu_tightly() {
        // 6 × 2-core workloads: 12-core target at 0.95 headroom fits 5.
        let p = problem(&[2.0; 6]);
        let r = greedy_pack(&p).expect("feasible");
        assert!(r.machines_used <= 2);
        let eval = evaluate(&p, &r.assignment);
        assert!(eval.feasible);
    }

    #[test]
    fn greedy_single_workload_uses_one_machine() {
        let p = problem(&[1.0]);
        let r = greedy_pack(&p).unwrap();
        assert_eq!(r.machines_used, 1);
    }

    #[test]
    fn greedy_respects_ram_when_packing_ram() {
        let mut p = problem(&[0.1, 0.1, 0.1]);
        for w in &mut p.workloads {
            w.ram = vec![40e9; 2]; // 96 GB target: only 2 fit per machine
        }
        let r = greedy_pack(&p).unwrap();
        assert_eq!(r.machines_used, 2);
    }

    #[test]
    fn greedy_can_fail_on_cross_resource_constraints() {
        // CPU-tiny but RAM-huge + RAM-tiny but CPU-huge workloads:
        // single-resource packing on either resource overcommits the other
        // when headroom is tight.
        let mut p = problem(&[0.05, 0.05, 11.0, 11.0]);
        p.workloads[0].ram = vec![90e9; 2];
        p.workloads[1].ram = vec![90e9; 2];
        p.workloads[2].ram = vec![1e9; 2];
        p.workloads[3].ram = vec![1e9; 2];
        p.max_machines = 2;
        // CPU packing pairs (2,3)? each 11 cores: 22 > 12×0.95, so CPU
        // packing must separate them, leaving the RAM giants together:
        // 180 GB > 96 GB. RAM packing likewise collides on CPU.
        let r = greedy_pack(&p);
        assert!(r.is_none(), "expected greedy to fail, got {r:?}");
    }

    #[test]
    fn greedy_respects_pinning_and_replicas() {
        let mut p = problem(&[1.0, 1.0]);
        p.workloads[0].pinned = Some(1);
        p.workloads[1].replicas = 2;
        p.max_machines = 3;
        let r = greedy_pack(&p).expect("feasible");
        let eval = evaluate(&p, &r.assignment);
        assert!(eval.feasible);
        assert_eq!(r.assignment.machine_of[0], 1, "pin honoured");
    }

    #[test]
    fn greedy_is_deterministic() {
        let p = problem(&[3.0, 1.0, 2.0, 5.0, 0.5]);
        let a = greedy_pack(&p).unwrap();
        let b = greedy_pack(&p).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }
}
