//! An rrdtool-style round-robin time-series store.
//!
//! §7.1: "The statistics were stored in the rrdtool format, used by open
//! source monitoring tools such as Cacti, Ganglia, and Munin [...] CPU,
//! RAM, and disk I/O numbers as reported by Linux, averaged over different
//! time intervals — ranging from every 15 seconds for the last hour to
//! every 24 hours for the last year."
//!
//! A [`Rrd`] holds several fixed-capacity archives at coarsening
//! resolutions; pushing a base-resolution sample updates them all through
//! their consolidation functions.

use kairos_types::TimeSeries;

/// Consolidation function applied when folding base samples into a
/// coarser archive bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consolidation {
    Average,
    Max,
    Min,
}

/// Declares one archive: every `step` base samples become one stored
/// point; the archive keeps the most recent `capacity` points.
#[derive(Debug, Clone, Copy)]
pub struct ArchiveSpec {
    pub step: usize,
    pub capacity: usize,
    pub cf: Consolidation,
}

#[derive(Debug, Clone)]
struct Archive {
    spec: ArchiveSpec,
    /// Ring of consolidated points (oldest first after unrolling).
    ring: std::collections::VecDeque<f64>,
    /// Accumulator over the current (incomplete) bucket.
    acc: f64,
    acc_n: usize,
}

impl Archive {
    fn new(spec: ArchiveSpec) -> Archive {
        assert!(spec.step >= 1 && spec.capacity >= 1);
        Archive {
            spec,
            ring: std::collections::VecDeque::with_capacity(spec.capacity),
            acc: initial_acc(spec.cf),
            acc_n: 0,
        }
    }

    fn push(&mut self, v: f64) {
        match self.spec.cf {
            Consolidation::Average => self.acc += v,
            Consolidation::Max => self.acc = self.acc.max(v),
            Consolidation::Min => self.acc = self.acc.min(v),
        }
        self.acc_n += 1;
        if self.acc_n == self.spec.step {
            let point = match self.spec.cf {
                Consolidation::Average => self.acc / self.spec.step as f64,
                _ => self.acc,
            };
            if self.ring.len() == self.spec.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(point);
            self.acc = initial_acc(self.spec.cf);
            self.acc_n = 0;
        }
    }
}

fn initial_acc(cf: Consolidation) -> f64 {
    match cf {
        Consolidation::Average => 0.0,
        Consolidation::Max => f64::NEG_INFINITY,
        Consolidation::Min => f64::INFINITY,
    }
}

/// The multi-archive store.
#[derive(Debug, Clone)]
pub struct Rrd {
    base_interval_secs: f64,
    archives: Vec<Archive>,
    samples_pushed: u64,
}

impl Rrd {
    /// Create with a base sampling interval and archive layout.
    ///
    /// # Panics
    /// Panics if no archives are declared.
    pub fn new(base_interval_secs: f64, specs: Vec<ArchiveSpec>) -> Rrd {
        assert!(base_interval_secs > 0.0);
        assert!(!specs.is_empty(), "need at least one archive");
        Rrd {
            base_interval_secs,
            archives: specs.into_iter().map(Archive::new).collect(),
            samples_pushed: 0,
        }
    }

    /// A paper-like layout on a 5-minute base: 5-min averages for a day,
    /// hourly for two weeks, daily maxima for a year.
    pub fn monitoring_default() -> Rrd {
        Rrd::new(
            300.0,
            vec![
                ArchiveSpec {
                    step: 1,
                    capacity: 288,
                    cf: Consolidation::Average,
                },
                ArchiveSpec {
                    step: 12,
                    capacity: 336,
                    cf: Consolidation::Average,
                },
                ArchiveSpec {
                    step: 288,
                    capacity: 365,
                    cf: Consolidation::Max,
                },
            ],
        )
    }

    pub fn base_interval_secs(&self) -> f64 {
        self.base_interval_secs
    }

    pub fn archives(&self) -> usize {
        self.archives.len()
    }

    pub fn samples_pushed(&self) -> u64 {
        self.samples_pushed
    }

    /// Push one base-resolution sample into every archive.
    pub fn push(&mut self, v: f64) {
        for a in &mut self.archives {
            a.push(v);
        }
        self.samples_pushed += 1;
    }

    /// Append a batch of base-resolution samples (streaming-ingest path:
    /// one call per monitoring flush instead of one per sample).
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.push(v);
        }
    }

    /// Index of the finest (smallest-step) archive.
    fn finest_idx(&self) -> usize {
        (0..self.archives.len())
            .min_by_key(|&i| self.archives[i].spec.step)
            .expect("non-empty archives")
    }

    /// The most recent `n` base-resolution points (fewer if the finest
    /// archive holds less history) — the *rolling window* an online drift
    /// detector compares against the planned profile. Oldest first.
    pub fn rolling_window(&self, n: usize) -> TimeSeries {
        let idx = self.finest_idx();
        let a = &self.archives[idx];
        let take = n.min(a.ring.len());
        let skip = a.ring.len() - take;
        TimeSeries::new(
            self.base_interval_secs * a.spec.step as f64,
            a.ring.iter().skip(skip).copied().collect(),
        )
    }

    /// Number of points currently held by the finest archive — how much
    /// rolling-window history is available right now.
    pub fn rolling_len(&self) -> usize {
        self.archives[self.finest_idx()].ring.len()
    }

    /// Materialize archive `idx` as a [`TimeSeries`] (oldest first;
    /// incomplete buckets excluded).
    pub fn series(&self, idx: usize) -> TimeSeries {
        let a = &self.archives[idx];
        TimeSeries::new(
            self.base_interval_secs * a.spec.step as f64,
            a.ring.iter().copied().collect(),
        )
    }

    /// The finest archive that still covers `duration_secs` of history —
    /// "the best compromise between length of observation and sampling
    /// rates" (§7.1).
    pub fn best_series_covering(&self, duration_secs: f64) -> TimeSeries {
        let mut best: Option<usize> = None;
        for (i, a) in self.archives.iter().enumerate() {
            let span = self.base_interval_secs * a.spec.step as f64 * a.ring.len().max(1) as f64;
            let covers = span >= duration_secs;
            let finer = |j: usize| self.archives[j].spec.step;
            if covers && best.is_none_or(|b| a.spec.step < finer(b)) {
                best = Some(i);
            }
        }
        // Fall back to the coarsest archive when nothing covers fully.
        let idx = best.unwrap_or_else(|| {
            (0..self.archives.len())
                .max_by_key(|&i| self.archives[i].spec.step)
                .expect("non-empty archives")
        });
        self.series(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_archive(step: usize, capacity: usize) -> ArchiveSpec {
        ArchiveSpec {
            step,
            capacity,
            cf: Consolidation::Average,
        }
    }

    #[test]
    fn base_archive_stores_raw_samples() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 5)]);
        for i in 0..3 {
            rrd.push(i as f64);
        }
        assert_eq!(rrd.series(0).values(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 3)]);
        for i in 0..5 {
            rrd.push(i as f64);
        }
        assert_eq!(rrd.series(0).values(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn average_consolidation() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(4, 10)]);
        for v in [1.0, 2.0, 3.0, 4.0, 10.0, 10.0] {
            rrd.push(v);
        }
        // One complete bucket (mean 2.5); the 10s are still accumulating.
        assert_eq!(rrd.series(0).values(), &[2.5]);
        assert_eq!(rrd.series(0).interval_secs(), 4.0);
    }

    #[test]
    fn max_consolidation() {
        let mut rrd = Rrd::new(
            1.0,
            vec![ArchiveSpec {
                step: 3,
                capacity: 4,
                cf: Consolidation::Max,
            }],
        );
        for v in [1.0, 5.0, 2.0, 0.0, 0.5, 0.25] {
            rrd.push(v);
        }
        assert_eq!(rrd.series(0).values(), &[5.0, 0.5]);
    }

    #[test]
    fn min_consolidation() {
        let mut rrd = Rrd::new(
            1.0,
            vec![ArchiveSpec {
                step: 2,
                capacity: 4,
                cf: Consolidation::Min,
            }],
        );
        for v in [3.0, 1.0, 8.0, 9.0] {
            rrd.push(v);
        }
        assert_eq!(rrd.series(0).values(), &[1.0, 8.0]);
    }

    #[test]
    fn multiple_archives_consistent() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 100), avg_archive(10, 10)]);
        for i in 0..100 {
            rrd.push(i as f64);
        }
        let fine = rrd.series(0);
        let coarse = rrd.series(1);
        assert_eq!(fine.len(), 100);
        assert_eq!(coarse.len(), 10);
        // Consolidation preserves the overall mean.
        assert!((fine.mean() - coarse.mean()).abs() < 1e-9);
    }

    #[test]
    fn best_series_prefers_finest_covering() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 10), avg_archive(5, 100)]);
        for i in 0..200 {
            rrd.push(i as f64);
        }
        // 10 s of fine history vs 500 s of coarse history.
        assert_eq!(rrd.best_series_covering(8.0).interval_secs(), 1.0);
        assert_eq!(rrd.best_series_covering(50.0).interval_secs(), 5.0);
        // Nothing covers a year: fall back to coarsest.
        assert_eq!(rrd.best_series_covering(1e7).interval_secs(), 5.0);
    }

    #[test]
    fn monitoring_default_layout() {
        let rrd = Rrd::monitoring_default();
        assert_eq!(rrd.archives(), 3);
        assert_eq!(rrd.base_interval_secs(), 300.0);
    }

    #[test]
    fn extend_matches_repeated_push() {
        let mut a = Rrd::new(1.0, vec![avg_archive(1, 10), avg_archive(3, 5)]);
        let mut b = a.clone();
        for i in 0..9 {
            a.push(i as f64);
        }
        b.extend((0..9).map(|i| i as f64));
        assert_eq!(a.series(0).values(), b.series(0).values());
        assert_eq!(a.series(1).values(), b.series(1).values());
        assert_eq!(b.samples_pushed(), 9);
    }

    #[test]
    fn rolling_window_returns_most_recent_points() {
        let mut rrd = Rrd::new(1.0, vec![avg_archive(1, 5), avg_archive(10, 10)]);
        rrd.extend((0..8).map(|i| i as f64));
        // Finest archive caps at 5 points: values 3..8.
        assert_eq!(rrd.rolling_len(), 5);
        assert_eq!(rrd.rolling_window(3).values(), &[5.0, 6.0, 7.0]);
        // Asking for more than held returns what exists.
        assert_eq!(rrd.rolling_window(99).values(), &[3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(rrd.rolling_window(3).interval_secs(), 1.0);
    }

    #[test]
    fn rolling_window_uses_finest_archive_regardless_of_order() {
        // Coarse archive listed first: rolling_window must still pick the
        // fine one.
        let mut rrd = Rrd::new(1.0, vec![avg_archive(10, 10), avg_archive(1, 5)]);
        rrd.extend((0..20).map(|i| i as f64));
        assert_eq!(rrd.rolling_window(2).values(), &[18.0, 19.0]);
    }
}
