//! # kairos-monitor — the Resource Monitor (§3)
//!
//! "Kairos includes an automated statistics collection tool that captures
//! data from the DBMS and OS to estimate the resource consumption of
//! individual databases while running."
//!
//! Two halves:
//!
//! * [`monitor::ResourceMonitor`] — periodic sampling of OS-level (CPU,
//!   RAM, iostat) and DBMS-level (buffer-pool, log) counters, plus the
//!   §3 over-provisioning classifier, producing
//!   [`kairos_types::WorkloadProfile`]s for the consolidation engine;
//! * [`gauge::BufferGauge`] — the buffer-pool gauging technique of §3.1
//!   (Fig 3): grow a probe table inside the DBMS, keep it hot with
//!   periodic scans, and watch physical reads to find the true working-set
//!   size that the OS's "active memory" metric hides.

pub mod gauge;
pub mod monitor;

pub use gauge::{BufferGauge, GaugeEnv, GaugeOutcome, GaugeParams, GaugeStep, SimGaugeEnv};
pub use monitor::{MemoryClass, MonitorSample, ResourceMonitor};
