//! Sharded-control-plane scaling benchmark: tick latency and per-shard
//! re-solve time vs. shard count, under weak scaling (fixed tenants per
//! shard, so the fleet grows with the shard count). The hierarchical
//! claim under test: per-shard re-solve cost stays flat as the fleet
//! grows, because each re-solver only ever sees its own shard. Emits a
//! JSON baseline on stdout (recorded as `BENCH_fleet.json`).
//!
//! ```text
//! cargo run --release -p kairos-bench --bin fleet_scale > BENCH_fleet.json
//! KAIROS_QUICK=1 cargo run --release -p kairos-bench --bin fleet_scale
//! ```

use kairos_bench::quick;
use kairos_controller::{ControllerConfig, SyntheticSource, TickOutcome};
use kairos_fleet::{BalancerConfig, FleetConfig, FleetController};
use kairos_types::Bytes;
use kairos_workloads::RatePattern;
use std::time::Instant;

const BUDGET: usize = 8;

struct ScaleResult {
    shards: usize,
    tenants: usize,
    ticks: u64,
    steady_tick_usecs: f64,
    /// Mean wall-clock per solve (bootstrap + re-solves), averaged over
    /// shards — the quantity that must stay flat under weak scaling.
    mean_resolve_ms: f64,
    resolves: u64,
    handoffs_completed: u64,
    handoffs_rejected: u64,
    total_machines: usize,
    zero_violations: bool,
    within_budget: bool,
}

fn run_scale(shards: usize, tenants_per_shard: usize, ticks: u64) -> ScaleResult {
    let cfg = FleetConfig {
        shards,
        shard: ControllerConfig {
            horizon: 12,
            check_every: 4,
            cooldown_ticks: 12,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: BUDGET,
            balance_every: 6,
            max_moves_per_round: 4,
        },
    };
    let mut fleet = FleetController::new(cfg);
    let spike_start = ticks / 3;
    let spike_end = (2 * ticks) / 3;
    for shard in 0..shards {
        for i in 0..tenants_per_shard {
            let base = 190.0 + 10.0 * (i % 4) as f64;
            let name = format!("s{shard}-t{i:02}");
            // Shard 0 takes a regional spike; the rest stay flat — the
            // balancer's cross-shard work scales with the fleet.
            let src = if shard == 0 && i < tenants_per_shard * 2 / 5 {
                SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps: base })
                    .then_at(spike_start, RatePattern::Flat { tps: 640.0 })
                    .then_at(spike_end, RatePattern::Flat { tps: base })
            } else {
                SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps: base })
            };
            fleet.add_workload_to(shard, Box::new(src));
        }
    }

    let mut steady_secs = 0.0;
    let mut steady_ticks = 0u64;
    for _ in 0..ticks {
        let t0 = Instant::now();
        let report = fleet.tick();
        let wall = t0.elapsed().as_secs_f64();
        let eventful = report.handoffs.iter().any(|h| h.completed())
            || report.outcomes.iter().any(|o| {
                matches!(
                    o,
                    TickOutcome::Replanned(_) | TickOutcome::InitialPlan { .. }
                )
            });
        if !eventful {
            steady_secs += wall;
            steady_ticks += 1;
        }
    }

    let mut solve_secs = 0.0;
    let mut solves = 0u64;
    let mut resolves = 0u64;
    for s in fleet.shards() {
        let st = s.stats();
        solve_secs += st.solve_secs_total;
        solves += st.resolves + 1; // + the bootstrap solve
        resolves += st.resolves;
    }
    let audit = fleet.audit();
    let stats = fleet.stats();
    ScaleResult {
        shards,
        tenants: shards * tenants_per_shard,
        ticks,
        steady_tick_usecs: if steady_ticks > 0 {
            steady_secs / steady_ticks as f64 * 1e6
        } else {
            0.0
        },
        mean_resolve_ms: if solves > 0 {
            solve_secs / solves as f64 * 1e3
        } else {
            0.0
        },
        resolves,
        handoffs_completed: stats.handoffs_completed,
        handoffs_rejected: stats.handoffs_rejected,
        total_machines: audit.total_machines(),
        zero_violations: audit.zero_violations(),
        within_budget: audit.within_budget(BUDGET),
    }
}

fn main() {
    let (scales, tenants_per_shard, ticks): (&[usize], usize, u64) = if quick() {
        (&[1, 2, 4], 12, 90)
    } else {
        (&[1, 2, 4, 8], 25, 150)
    };

    let results: Vec<ScaleResult> = scales
        .iter()
        .map(|&s| run_scale(s, tenants_per_shard, ticks))
        .collect();

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fleet_scale\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"tenants_per_shard\":{tenants_per_shard},\"ticks\":{ticks},\"machines_per_shard\":{BUDGET},\"quick\":{}}},\n",
        quick()
    ));
    out.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"shards\":{},\"tenants\":{},\"ticks\":{},",
                "\"steady_tick_usecs\":{:.2},\"mean_resolve_ms\":{:.3},\"resolves\":{},",
                "\"handoffs_completed\":{},\"handoffs_rejected\":{},",
                "\"total_machines\":{},\"zero_violations\":{},\"within_budget\":{}}}"
            ),
            r.shards,
            r.tenants,
            r.ticks,
            r.steady_tick_usecs,
            r.mean_resolve_ms,
            r.resolves,
            r.handoffs_completed,
            r.handoffs_rejected,
            r.total_machines,
            r.zero_violations,
            r.within_budget,
        ));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    // The weak-scaling headline: per-shard re-solve time at the largest
    // scale relative to one shard (must stay within ~2x for the
    // hierarchical decomposition to be doing its job).
    let base = results.first().map(|r| r.mean_resolve_ms).unwrap_or(0.0);
    let last = results.last().map(|r| r.mean_resolve_ms).unwrap_or(0.0);
    let ratio = if base > 0.0 { last / base } else { 0.0 };
    out.push_str(&format!(
        "  \"weak_scaling\": {{\"resolve_ms_at_1_shard\":{base:.3},\"resolve_ms_at_max_shards\":{last:.3},\"ratio\":{ratio:.3}}}\n"
    ));
    out.push_str("}\n");
    print!("{out}");
}
