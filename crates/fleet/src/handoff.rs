//! Cross-shard handoff records — the audit trail of the two-phase
//! protocol.
//!
//! ## Protocol invariants
//!
//! 1. **Reserve before evict.** The balancer asks the destination shard
//!    whether the tenant fits its machine budget
//!    ([`ShardController::can_admit`] — a conservative greedy packing, so
//!    a granted reservation certifies a feasible placement exists) before
//!    the source gives anything up. A tenant nobody can take stays put.
//! 2. **Eviction only frees capacity.** Removing a tenant from the
//!    source shard can only lower host utilization, so phase 2a is
//!    capacity-safe by construction; the source schedules an
//!    opportunistic repack.
//! 3. **Single ownership.** Between evict and admit the tenant is owned
//!    by the in-flight [`kairos_controller::TenantHandoff`] value — never
//!    by two shards at once. The shard map is updated in the same round.
//! 4. **Telemetry travels.** The tenant's rolling RRD history moves with
//!    it, so the destination replans membership on its next tick instead
//!    of re-bootstrapping, and its placement goes through the
//!    destination's capacity-safe migration planner.
//!
//! [`ShardController::can_admit`]: kairos_controller::ShardController::can_admit

/// How one proposed handoff ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HandoffOutcome {
    /// Reservation granted; tenant evicted from the source and admitted
    /// by the destination.
    Completed,
    /// No shard could reserve capacity for the tenant; it stayed on the
    /// (overloaded) source shard.
    NoReceiver,
    /// Reservation granted but the transfer failed mid-handshake (a
    /// damaged frame or an unreachable destination — only possible over
    /// a real transport). The tenant is rolled back onto the source
    /// shard when the destination provably did not admit it; when
    /// neither peer can be asked (or the rollback itself fails), it
    /// parks in the balancer's recovery lot and later rounds resolve it
    /// probe-first — possibly surfacing a late `Completed` record if
    /// the transfer turns out to have landed. Either way the routing
    /// map keeps pointing at the source until a `Completed` record says
    /// otherwise, and the tenant is never silently dropped.
    Failed,
}

/// One proposed cross-shard move. Serializable: the fleet checkpoint
/// carries the audit trail, so a restored controller's handoff history
/// matches the crashed one's.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HandoffRecord {
    pub tenant: String,
    pub from: usize,
    /// Destination shard (`None` when no reservation was granted).
    pub to: Option<usize>,
    /// Fleet tick the balance round ran at.
    pub tick: u64,
    pub outcome: HandoffOutcome,
}

impl HandoffRecord {
    pub fn completed(&self) -> bool {
        self.outcome == HandoffOutcome::Completed
    }
}
