//! The controllable synthetic micro-benchmark of §7.1/§7.2.
//!
//! "This benchmark contains five independent workloads that each operate
//! on a single table, issuing a mix of updates and CPU-intensive selects
//! (using expensive cryptographic functions). These workloads are designed
//! so we can precisely control the amount of RAM, CPU and disk I/O
//! consumed. [...] Each workload has different time-varying patterns
//! (e.g., sinusoidal, sawtooth, flat with different amplitude and
//! period)."

use crate::{patterns::RatePattern, TxnCarry, Workload, WorkloadHandle};
use kairos_dbsim::{AccessSpec, DbmsInstance, OpBatch, UpdateSpec};
use kairos_types::Bytes;

/// Explicit control knobs for one synthetic workload.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    pub name: String,
    /// Exact working-set size (what gauging must discover).
    pub working_set: Bytes,
    /// Total table size (≥ working set).
    pub db_size: Bytes,
    /// Transaction schedule.
    pub rate: RatePattern,
    /// Page accesses per transaction (selects).
    pub reads_per_txn: f64,
    /// Rows updated per transaction.
    pub rows_updated_per_txn: f64,
    /// CPU per transaction in standardized core-seconds ("expensive
    /// cryptographic functions" make this large for CPU-bound variants).
    pub cpu_secs_per_txn: f64,
    /// Latency floor.
    pub base_latency_secs: f64,
}

impl SyntheticSpec {
    /// A balanced default: moderate reads, writes and CPU.
    pub fn balanced(
        name: impl Into<String>,
        working_set: Bytes,
        rate: RatePattern,
    ) -> SyntheticSpec {
        SyntheticSpec {
            name: name.into(),
            working_set,
            db_size: Bytes(working_set.0 * 2),
            rate,
            reads_per_txn: 8.0,
            rows_updated_per_txn: 4.0,
            cpu_secs_per_txn: 0.5e-3,
            base_latency_secs: 0.004,
        }
    }
}

/// Synthetic workload generator driven by a [`SyntheticSpec`].
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: SyntheticSpec,
    carry: TxnCarry,
}

/// Row size: "a few large tuples" is the probe table's trick; the user
/// tables use small rows so row-update counts map cleanly onto pages.
pub const ROW_BYTES: u64 = 200;

impl SyntheticWorkload {
    pub fn new(spec: SyntheticSpec) -> SyntheticWorkload {
        assert!(
            spec.db_size >= spec.working_set,
            "database must contain its working set"
        );
        SyntheticWorkload {
            spec,
            carry: TxnCarry::default(),
        }
    }

    pub fn spec(&self) -> &SyntheticSpec {
        &self.spec
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn install(&mut self, inst: &mut DbmsInstance) -> WorkloadHandle {
        let db = inst.create_database(self.spec.name.clone());
        let rows = self.spec.db_size.0 / ROW_BYTES;
        let table = inst
            .create_table(db, rows, ROW_BYTES)
            .expect("database was just created");
        let ws_pages = self.spec.working_set.pages(inst.page_size());
        inst.prewarm_pages(table, ws_pages);
        WorkloadHandle {
            db,
            table,
            append_table: None,
            ws_pages,
        }
    }

    fn batch(&mut self, handle: &WorkloadHandle, now: f64, dt: f64) -> OpBatch {
        let txns = self.carry.take(self.spec.rate.rate_at(now), dt);
        if txns == 0.0 {
            return OpBatch::default();
        }
        let s = &self.spec;
        OpBatch {
            txns,
            rows_read: txns * s.reads_per_txn,
            reads: vec![AccessSpec {
                table: handle.table,
                prefix_pages: handle.ws_pages,
                accesses: txns * s.reads_per_txn,
            }],
            updates: vec![UpdateSpec {
                table: handle.table,
                prefix_pages: handle.ws_pages,
                rows: txns * s.rows_updated_per_txn,
            }],
            insert_bytes: 0.0,
            insert_table: None,
            cpu_core_secs: txns * s.cpu_secs_per_txn,
            base_latency_secs: s.base_latency_secs,
        }
    }

    fn working_set(&self) -> Bytes {
        self.spec.working_set
    }

    fn mean_rate(&self) -> f64 {
        self.spec.rate.mean_rate()
    }
}

/// The five-workload suite of §7.2: working sets from 512 MB to 2.5 GB,
/// distinct temporal patterns, and resource emphases chosen so that the
/// combination "barely fits within a single physical machine" under
/// multiple simultaneous constraints.
///
/// `intensity` linearly scales every request rate (1.0 = the calibrated
/// barely-fits point for [`kairos_types::MachineSpec::server1`]).
pub fn synthetic_suite(intensity: f64) -> Vec<SyntheticWorkload> {
    let specs = vec![
        // CPU-heavy, sinusoidal diurnal pattern.
        SyntheticSpec {
            name: "synth-1-cpu-sin".into(),
            working_set: Bytes::mib(512),
            db_size: Bytes::gib(1),
            rate: RatePattern::Sinusoid {
                mean: 220.0 * intensity,
                amplitude: 120.0 * intensity,
                period_secs: 600.0,
                phase: 0.0,
            },
            reads_per_txn: 4.0,
            rows_updated_per_txn: 0.5,
            cpu_secs_per_txn: 4.0e-3,
            base_latency_secs: 0.004,
        },
        // Update-heavy, sawtooth.
        SyntheticSpec {
            name: "synth-2-disk-saw".into(),
            working_set: Bytes::gib(1),
            db_size: Bytes::gib(2),
            rate: RatePattern::Sawtooth {
                min: 40.0 * intensity,
                max: 400.0 * intensity,
                period_secs: 450.0,
            },
            reads_per_txn: 3.0,
            rows_updated_per_txn: 12.0,
            cpu_secs_per_txn: 0.25e-3,
            base_latency_secs: 0.004,
        },
        // RAM-dominant (big working set), flat low rate.
        SyntheticSpec {
            name: "synth-3-ram-flat".into(),
            working_set: Bytes::mib(2560),
            db_size: Bytes::gib(5),
            rate: RatePattern::Flat {
                tps: 90.0 * intensity,
            },
            reads_per_txn: 10.0,
            rows_updated_per_txn: 2.0,
            cpu_secs_per_txn: 0.4e-3,
            base_latency_secs: 0.004,
        },
        // Square wave alternating load (anti-correlated with #1's phase).
        SyntheticSpec {
            name: "synth-4-mixed-square".into(),
            working_set: Bytes::mib(1536),
            db_size: Bytes::gib(3),
            rate: RatePattern::Square {
                low: 60.0 * intensity,
                high: 300.0 * intensity,
                period_secs: 700.0,
            },
            reads_per_txn: 6.0,
            rows_updated_per_txn: 5.0,
            cpu_secs_per_txn: 0.9e-3,
            base_latency_secs: 0.004,
        },
        // Bursty spikes over a quiet base.
        SyntheticSpec {
            name: "synth-5-bursty".into(),
            working_set: Bytes::gib(2),
            db_size: Bytes::gib(4),
            rate: RatePattern::Bursty {
                base: 50.0 * intensity,
                peak: 450.0 * intensity,
                burst_secs: 60.0,
                period_secs: 500.0,
            },
            reads_per_txn: 5.0,
            rows_updated_per_txn: 6.0,
            cpu_secs_per_txn: 0.6e-3,
            base_latency_secs: 0.004,
        },
    ];
    specs.into_iter().map(SyntheticWorkload::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_dbsim::DbmsConfig;

    #[test]
    fn suite_has_five_distinct_workloads() {
        let suite = synthetic_suite(1.0);
        assert_eq!(suite.len(), 5);
        let names: std::collections::HashSet<_> =
            suite.iter().map(|w| w.name().to_string()).collect();
        assert_eq!(names.len(), 5);
        // Working sets span 512 MB – 2.5 GB as in §7.2.
        let min_ws = suite.iter().map(|w| w.working_set().0).min().unwrap();
        let max_ws = suite.iter().map(|w| w.working_set().0).max().unwrap();
        assert_eq!(min_ws, Bytes::mib(512).0);
        assert_eq!(max_ws, Bytes::mib(2560).0);
    }

    #[test]
    fn intensity_scales_rates() {
        let one = synthetic_suite(1.0);
        let two = synthetic_suite(2.0);
        for (a, b) in one.iter().zip(two.iter()) {
            assert!((b.mean_rate() - 2.0 * a.mean_rate()).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_respects_spec() {
        let spec = SyntheticSpec::balanced("s", Bytes::mib(64), RatePattern::Flat { tps: 100.0 });
        let mut w = SyntheticWorkload::new(spec);
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(256)));
        let h = w.install(&mut inst);
        let b = w.batch(&h, 0.0, 0.1);
        assert_eq!(b.txns, 10.0);
        assert_eq!(b.updates[0].rows, 40.0);
        assert!(b.insert_table.is_none());
    }

    #[test]
    #[should_panic(expected = "must contain its working set")]
    fn db_smaller_than_ws_rejected() {
        let mut spec =
            SyntheticSpec::balanced("bad", Bytes::gib(1), RatePattern::Flat { tps: 1.0 });
        spec.db_size = Bytes::mib(100);
        SyntheticWorkload::new(spec);
    }

    #[test]
    fn install_warms_exactly_the_working_set() {
        let spec = SyntheticSpec::balanced("s", Bytes::mib(32), RatePattern::Flat { tps: 1.0 });
        let mut w = SyntheticWorkload::new(spec);
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(128)));
        let h = w.install(&mut inst);
        assert_eq!(inst.pool_resident_pages() as u64, h.ws_pages);
    }
}
