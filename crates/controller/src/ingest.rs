//! Streaming telemetry ingestion.
//!
//! Each workload's [`MonitorSample`] stream lands in four parallel
//! rolling [`Rrd`] stores (CPU cores, RAM bytes, disk working set, disk
//! row-update rate) with the same multi-resolution layout the paper's
//! production fleets used (§7.1). The finest archive is the *rolling
//! window* the drift detector reads; the coarser archives retain history
//! for forecasting the next planning horizon.

use kairos_monitor::MonitorSample;
use kairos_traces::{ArchiveSpec, Consolidation, Rrd, SeriesSketch, SketchConfig};
use kairos_types::{Bytes, TimeSeries, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where live samples come from. Implemented by the simulated pipeline's
/// observation stage ([`SessionSource`]) and by the synthetic drift
/// scenarios ([`crate::scenarios::SyntheticSource`]); a production
/// implementation would poll `SHOW STATUS` / `iostat` like §6 describes.
///
/// `Send` is a supertrait because a sharded control plane fans shard
/// ticks — each polling its own sources — out across worker threads
/// (`kairos-fleet`'s `FleetConfig::tick_threads`); sources move to
/// whichever thread ticks their shard this interval.
pub trait TelemetrySource: Send {
    /// Stable workload identifier.
    fn name(&self) -> &str;
    /// Advance one monitoring interval and report it.
    fn poll(&mut self) -> MonitorSample;
}

/// [`kairos_core::ObservationSession`] as a telemetry source: real
/// (simulated) DBMS instances feeding the controller.
pub struct SessionSource {
    session: kairos_core::ObservationSession,
}

impl SessionSource {
    pub fn new(session: kairos_core::ObservationSession) -> SessionSource {
        SessionSource { session }
    }
}

impl TelemetrySource for SessionSource {
    fn name(&self) -> &str {
        self.session.name()
    }

    fn poll(&mut self) -> MonitorSample {
        self.session.step()
    }
}

/// Rolling-store layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Monitoring interval (seconds of simulated time per sample).
    pub interval_secs: f64,
    /// Capacity of the fine (rolling-window) archive, in samples. Must be
    /// at least the planning horizon so a full live horizon is comparable
    /// against the planned profile.
    pub window_capacity: usize,
    /// Optional gauged working set overriding the OS RAM view (§3.1's
    /// correction; `None` = fall back to the OS view, as the historical
    /// datasets force).
    pub gauged_working_set: Option<Bytes>,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            interval_secs: 300.0,
            window_capacity: 288,
            gauged_working_set: None,
        }
    }
}

impl TelemetryConfig {
    fn layout(&self) -> Vec<ArchiveSpec> {
        vec![
            // Fine: the rolling window itself.
            ArchiveSpec {
                step: 1,
                capacity: self.window_capacity,
                cf: Consolidation::Average,
            },
            // Coarse: ~12× consolidation, enough history for horizon
            // forecasting (mean of past horizons).
            ArchiveSpec {
                step: 12,
                capacity: self.window_capacity,
                cf: Consolidation::Average,
            },
            // Peaks for capacity reviews.
            ArchiveSpec {
                step: 12,
                capacity: self.window_capacity,
                cf: Consolidation::Max,
            },
        ]
    }
}

/// One workload's rolling telemetry: the four profile series as RRDs.
///
/// Serializable as part of the checkpoint/restore path (and of
/// transport-encoded handoffs): the RRD rings, in-flight consolidation
/// buckets and the phase-driving `samples_seen` counter all travel, so a
/// restored copy ingests and forecasts exactly like the original.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadTelemetry {
    cfg: TelemetryConfig,
    cpu: Rrd,
    /// RAM bytes — also serves as the disk-model working-set series:
    /// without online gauging the two are the same number (the §6 "RAM
    /// scaling" fallback), so storing them twice would only double
    /// ingest cost. A future gauged-ingest path splits them again.
    ram: Rrd,
    rate: Rrd,
    samples_seen: u64,
}

impl WorkloadTelemetry {
    pub fn new(cfg: TelemetryConfig) -> WorkloadTelemetry {
        let mk = || Rrd::new(cfg.interval_secs, cfg.layout());
        WorkloadTelemetry {
            cfg,
            cpu: mk(),
            ram: mk(),
            rate: mk(),
            samples_seen: 0,
        }
    }

    /// Fold one monitoring sample into every series.
    pub fn ingest(&mut self, sample: &MonitorSample) {
        let ram = match self.cfg.gauged_working_set {
            Some(g) => g.as_f64(),
            None => sample.ram_os_view.as_f64(),
        };
        self.cpu.push(sample.cpu_cores);
        self.ram.push(ram);
        self.rate.push(sample.rows_updated_per_sec);
        self.samples_seen += 1;
    }

    /// Total samples ever ingested (drives phase alignment).
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Samples currently available in the rolling window.
    pub fn window_len(&self) -> usize {
        self.cpu.rolling_len()
    }

    /// The live profile over the last `windows` samples (fewer if less
    /// history exists). `None` until at least one sample arrived.
    pub fn live_profile(&self, name: &str, windows: usize) -> Option<WorkloadProfile> {
        if self.window_len() == 0 {
            return None;
        }
        Some(WorkloadProfile::new(
            name,
            self.cpu.rolling_window(windows),
            self.ram.rolling_window(windows),
            self.ram.rolling_window(windows),
            self.rate.rolling_window(windows),
        ))
    }

    /// Long-horizon history per series (fine archive, full capacity) —
    /// the forecasting input, as `[cpu, ram, working-set, rate]` (the
    /// working-set series mirrors RAM; see the field note).
    pub fn history(&self) -> [TimeSeries; 4] {
        let full = self.cfg.window_capacity;
        [
            self.cpu.rolling_window(full),
            self.ram.rolling_window(full),
            self.ram.rolling_window(full),
            self.rate.rolling_window(full),
        ]
    }

    /// Compress the transportable telemetry to a [`TelemetrySketch`]:
    /// the three stored series at fixed size, however long the rolling
    /// window is. What a sketched handoff frame carries instead of the
    /// full RRD rings.
    pub fn sketch(&self, sketch_cfg: &SketchConfig) -> TelemetrySketch {
        let full = self.cfg.window_capacity;
        TelemetrySketch {
            cfg: self.cfg,
            cpu: SeriesSketch::of(&self.cpu.rolling_window(full), sketch_cfg),
            ram: SeriesSketch::of(&self.ram.rolling_window(full), sketch_cfg),
            rate: SeriesSketch::of(&self.rate.rolling_window(full), sketch_cfg),
            samples_seen: self.samples_seen,
        }
    }

    /// Rebuild rolling telemetry from a sketch — the admit side of a
    /// sketched handoff. Fresh RRDs are replayed from each series'
    /// reconstruction (exact recent tail, quantile staircase for the
    /// deeper past, peaks preserved verbatim), and `samples_seen` is
    /// restored exactly so the drift detector's phase alignment
    /// survives the transfer.
    pub fn from_sketch(sketch: &TelemetrySketch) -> WorkloadTelemetry {
        let mut out = WorkloadTelemetry::new(sketch.cfg);
        let cpu = sketch.cpu.reconstruct();
        let ram = sketch.ram.reconstruct();
        let rate = sketch.rate.reconstruct();
        let n = cpu.len().max(ram.len()).max(rate.len());
        let at = |s: &TimeSeries, i: usize| s.values().get(i).copied().unwrap_or(0.0);
        for i in 0..n {
            // Push directly: gauging (if any) was already applied when the
            // samples were first ingested on the donor side.
            out.cpu.push(at(&cpu, i));
            out.ram.push(at(&ram, i));
            out.rate.push(at(&rate, i));
        }
        out.samples_seen = sketch.samples_seen;
        out
    }
}

/// Constant-size image of one workload's rolling telemetry — what a
/// [`crate::TenantHandoff`] wire frame carries. Holds the telemetry
/// layout (so the destination rebuilds identically-shaped RRDs), one
/// [`SeriesSketch`] per stored series, and the phase-driving sample
/// counter. Size is independent of `cfg.window_capacity`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySketch {
    pub cfg: TelemetryConfig,
    pub cpu: SeriesSketch,
    /// RAM doubles as the working-set series, mirroring
    /// [`WorkloadTelemetry`]'s storage layout.
    pub ram: SeriesSketch,
    pub rate: SeriesSketch,
    pub samples_seen: u64,
}

/// The fleet-wide ingester: name → rolling telemetry.
#[derive(Debug, Default)]
pub struct TelemetryIngester {
    workloads: BTreeMap<String, WorkloadTelemetry>,
}

impl TelemetryIngester {
    pub fn new() -> TelemetryIngester {
        TelemetryIngester::default()
    }

    /// Register a workload (idempotent).
    pub fn register(&mut self, name: &str, cfg: TelemetryConfig) {
        self.workloads
            .entry(name.to_string())
            .or_insert_with(|| WorkloadTelemetry::new(cfg));
    }

    /// Drop a workload's telemetry (tenant left the fleet).
    pub fn deregister(&mut self, name: &str) {
        self.workloads.remove(name);
    }

    /// Remove and return a workload's telemetry — the cross-shard handoff
    /// path, where the tenant's rolling history travels with it so the
    /// destination shard can replan without a fresh bootstrap.
    pub fn take(&mut self, name: &str) -> Option<WorkloadTelemetry> {
        self.workloads.remove(name)
    }

    /// Install pre-accumulated telemetry under `name` (the admit side of
    /// a handoff). Replaces any existing registration.
    pub fn insert(&mut self, name: &str, telemetry: WorkloadTelemetry) {
        self.workloads.insert(name.to_string(), telemetry);
    }

    /// Ingest one sample for `name`; the workload must be registered.
    pub fn ingest(&mut self, name: &str, sample: &MonitorSample) {
        self.workloads
            .get_mut(name)
            .unwrap_or_else(|| panic!("ingest for unregistered workload {name}"))
            .ingest(sample);
    }

    pub fn get(&self, name: &str) -> Option<&WorkloadTelemetry> {
        self.workloads.get(name)
    }

    /// Registered workload names, sorted (the canonical fleet order used
    /// to build solver problems deterministically).
    pub fn names(&self) -> Vec<String> {
        self.workloads.keys().cloned().collect()
    }

    /// Iterate telemetry in canonical (sorted-name) order without
    /// allocating — the per-tick readiness checks' accessor.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &WorkloadTelemetry)> {
        self.workloads.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cpu: f64, ram_mib: u64, rate: f64) -> MonitorSample {
        MonitorSample {
            secs: 300.0,
            cpu_cores: cpu,
            ram_os_view: Bytes::mib(ram_mib),
            tps: rate / 2.0,
            rows_updated_per_sec: rate,
            reads_per_sec: 0.0,
            write_bytes_per_sec: rate * 200.0,
            bp_miss_ratio: 0.0,
            mean_latency_secs: 0.002,
        }
    }

    #[test]
    fn ingest_builds_live_profile() {
        let mut t = WorkloadTelemetry::new(TelemetryConfig::default());
        for i in 0..10 {
            t.ingest(&sample(0.5 + i as f64 * 0.1, 2048, 100.0));
        }
        assert_eq!(t.samples_seen(), 10);
        let p = t.live_profile("w", 4).expect("profile");
        assert_eq!(p.windows(), 4);
        // Last 4 cpu samples: 1.1, 1.2, 1.3, 1.4.
        assert!((p.cpu_cores.values()[0] - 1.1).abs() < 1e-9);
        assert!((p.window(3).cpu_cores - 1.4).abs() < 1e-9);
        assert_eq!(p.window(0).ram, Bytes::mib(2048));
        assert!((p.window(0).disk.update_rows_per_sec.as_f64() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn gauged_working_set_overrides_os_view() {
        let cfg = TelemetryConfig {
            gauged_working_set: Some(Bytes::mib(256)),
            ..Default::default()
        };
        let mut t = WorkloadTelemetry::new(cfg);
        t.ingest(&sample(0.2, 8192, 10.0));
        let p = t.live_profile("w", 1).unwrap();
        assert_eq!(p.window(0).ram, Bytes::mib(256));
        assert_eq!(p.window(0).disk.working_set, Bytes::mib(256));
    }

    #[test]
    fn empty_telemetry_has_no_profile() {
        let t = WorkloadTelemetry::new(TelemetryConfig::default());
        assert!(t.live_profile("w", 4).is_none());
    }

    #[test]
    fn ingester_tracks_fleet_membership() {
        let mut ing = TelemetryIngester::new();
        ing.register("b", TelemetryConfig::default());
        ing.register("a", TelemetryConfig::default());
        ing.register("a", TelemetryConfig::default()); // idempotent
        assert_eq!(ing.names(), vec!["a".to_string(), "b".to_string()]);
        ing.ingest("a", &sample(1.0, 1024, 50.0));
        assert_eq!(ing.get("a").unwrap().samples_seen(), 1);
        ing.deregister("b");
        assert_eq!(ing.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unregistered workload")]
    fn ingest_unregistered_panics() {
        let mut ing = TelemetryIngester::new();
        ing.ingest("ghost", &sample(1.0, 1024, 50.0));
    }

    #[test]
    fn sketch_roundtrip_preserves_decision_inputs() {
        let mut t = WorkloadTelemetry::new(TelemetryConfig {
            window_capacity: 64,
            ..Default::default()
        });
        for i in 0..200u64 {
            // A spike at i=150 lands inside the window but outside a
            // 16-sample tail — the quantile staircase must carry it.
            let cpu = if i == 150 {
                6.0
            } else {
                0.5 + (i % 7) as f64 * 0.1
            };
            t.ingest(&sample(cpu, 2048, 100.0 + i as f64));
        }
        let sk = t.sketch(&SketchConfig { marks: 9, tail: 16 });
        let back = WorkloadTelemetry::from_sketch(&sk);
        assert_eq!(back.samples_seen(), 200, "phase alignment survives");
        assert_eq!(back.window_len(), t.window_len());
        let [cpu_a, ram_a, _, rate_a] = t.history();
        let [cpu_b, ram_b, _, rate_b] = back.history();
        assert_eq!(cpu_b.max(), cpu_a.max(), "peak is exact");
        assert_eq!(ram_b.max(), ram_a.max());
        assert_eq!(rate_b.max(), rate_a.max());
        // The recent tail is verbatim.
        let tail = |s: &kairos_types::TimeSeries| s.values()[s.len() - 16..].to_vec();
        assert_eq!(tail(&cpu_b), tail(&cpu_a));
    }

    #[test]
    fn lossless_sketch_config_reproduces_the_window_exactly() {
        let cfg = TelemetryConfig {
            window_capacity: 48,
            ..Default::default()
        };
        let mut t = WorkloadTelemetry::new(cfg);
        for i in 0..48u64 {
            t.ingest(&sample(0.1 + i as f64 * 0.02, 1024 + i, 10.0 * i as f64));
        }
        let sk = t.sketch(&SketchConfig::lossless_for(cfg.window_capacity));
        let back = WorkloadTelemetry::from_sketch(&sk);
        assert_eq!(back.history(), t.history());
    }
}
