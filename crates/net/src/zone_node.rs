//! Zone nodes: a whole [`Zone`] served at one endpoint, and the root
//! balancer's client handle to it.
//!
//! The hierarchy needs **no new RPC catalog**: a zone presents itself
//! through the same [`crate::rpc::Request`] surface a shard does —
//! `Summary` answers with the zone's constant-size roll-up, `Forecast`
//! with a *group's* peak envelope, `Evict`/`Admit` carry bundled
//! [`kairos_fleet::GROUP_WIRE_VERSION`] group frames instead of single
//! tenant frames, and `Owns` probes group residency. The node type
//! determines the level; the messages, the envelope (auth, CRC,
//! version) and the decode-before-touch discipline are identical. That
//! is the point of the [`ShardHandle`] reuse: [`RemoteZone`] is to the
//! root balancer exactly what `RemoteShard` is to a zone's balancer,
//! so `run_balance_round` drives zones across a transport with the
//! same policy code path it drives in-process.

use crate::frame;
use crate::rpc::{Request, Response};
use crate::transport::{Conn, Handler, NetError, ServerHandle, Transport};
use kairos_fleet::balancer::{EvictedTenant, ShardHandle};
use kairos_fleet::hierarchy::Zone;
use kairos_fleet::GROUP_WIRE_VERSION;
use kairos_types::WorkloadProfile;
use std::sync::{Arc, Mutex};

struct ZoneNodeState {
    zone: Zone,
    shutdown: bool,
}

/// One zone — a whole [`kairos_fleet::FleetController`] plus group
/// bookkeeping — behind an RPC endpoint. The root balancer drives it
/// through [`RemoteZone`]; operators scrape `Metrics`/`Trace` from it
/// like any shard node.
pub struct ZoneNode {
    state: Arc<Mutex<ZoneNodeState>>,
}

impl ZoneNode {
    pub fn new(zone: Zone) -> ZoneNode {
        ZoneNode {
            state: Arc::new(Mutex::new(ZoneNodeState {
                zone,
                shutdown: false,
            })),
        }
    }

    /// Register this zone's RPC handler at `endpoint`. Same envelope
    /// discipline as a shard node: authenticate, validate, decode —
    /// only then dispatch; a damaged or unauthenticated frame touches
    /// no state.
    pub fn serve(
        &self,
        transport: &dyn Transport,
        endpoint: &str,
    ) -> Result<ServerHandle, NetError> {
        let state = self.state.clone();
        let handler: Handler = Arc::new(Mutex::new(move |request_frame: &[u8]| {
            let key = crate::auth::process_key();
            let response = match crate::auth::verify(request_frame, key) {
                Ok(base) => match frame::decode_frame_with_span::<Request>(base) {
                    Ok((request, span)) => {
                        // The root's handoff span context (when the frame
                        // carries one) parents this zone's spans.
                        let _span = kairos_obs::span::install(span);
                        dispatch(&state, request)
                    }
                    Err(e) => Response::Error(format!("bad request frame: {e}")),
                },
                Err(_) => Response::Error("unauthenticated frame".into()),
            };
            crate::auth::seal(frame::encode_frame(&response), key)
        }));
        transport.serve(endpoint, handler)
    }

    /// Run `f` against the zone (tests, examples, local maintenance).
    pub fn with_zone<R>(&self, f: impl FnOnce(&mut Zone) -> R) -> R {
        f(&mut self.state.lock().expect("zone state lock").zone)
    }

    /// Did a `Shutdown` RPC arrive?
    pub fn shutdown_requested(&self) -> bool {
        self.state.lock().expect("zone state lock").shutdown
    }
}

/// Serve one request against the zone — one lock scope, consistent
/// state. Requests with no zone-level meaning answer `Error` rather
/// than silently misbehaving at the wrong level.
fn dispatch(state: &Arc<Mutex<ZoneNodeState>>, request: Request) -> Response {
    let mut state = state.lock().expect("zone state lock");
    let state = &mut *state;
    let zone = &mut state.zone;
    match request {
        Request::Ping => Response::Pong {
            ticks: zone.fleet().stats().ticks,
        },
        Request::Tick => {
            // The zone's internal tick report (per-shard outcomes,
            // zone-level handoffs) stays zone-side; the root only needs
            // the interval advanced.
            zone.tick();
            Response::Done
        }
        Request::PlannedOnce => Response::PlannedOnce(ShardHandle::summary(zone).planned),
        Request::Summary => Response::Summary(ShardHandle::summary(zone)),
        Request::PackEstimate { .. } => {
            Response::PackEstimate(ShardHandle::pack_estimate_remaining(zone))
        }
        Request::Forecast { tenant } => Response::Forecast(ShardHandle::forecast(zone, &tenant)),
        Request::CanAdmit { profile, budget } => {
            Response::CanAdmit(ShardHandle::can_admit(zone, &profile, budget))
        }
        Request::Evict { tenant } => {
            Response::Evicted(ShardHandle::evict(zone, &tenant).map(|e| e.wire))
        }
        Request::Admit { frame } => {
            // Validate the group frame before constructing the handle's
            // eviction shape — the group name lives inside the frame.
            let group = match kairos_store::decode_frame::<(String, Vec<Vec<u8>>)>(
                &frame,
                GROUP_WIRE_VERSION,
            ) {
                Ok((group, _)) => group,
                Err(e) => return Response::Error(format!("admit: damaged group frame: {e}")),
            };
            match ShardHandle::admit(
                zone,
                EvictedTenant {
                    name: group.clone(),
                    wire: frame,
                    source: None,
                },
            ) {
                Ok(()) => Response::Done,
                Err(_) => Response::Error(format!("admit: group {group} rejected")),
            }
        }
        Request::Owns { tenant } => {
            Response::Owns(ShardHandle::owns(zone, &tenant).unwrap_or(false))
        }
        Request::Workloads => {
            let mut tenants: Vec<String> = zone
                .fleet()
                .map()
                .entries()
                .map(|(t, _)| t.to_string())
                .collect();
            tenants.sort();
            Response::Workloads(tenants)
        }
        Request::Metrics => Response::Metrics {
            json: zone.fleet().metrics_json(),
            prometheus: zone.fleet().metrics_prometheus(),
        },
        Request::Trace => Response::Trace(zone.fleet().trace_bytes()),
        Request::Query { query } => {
            // The zone's whole flight recorder: fleet-level events, then
            // every member shard's, joined with every span recorded at
            // any level of the zone (zone spans, balancer spans, member
            // shard spans).
            let mut events = zone.fleet().trace_events();
            for shard in zone.fleet().shards() {
                events.extend(shard.trace_events());
            }
            Response::Query(kairos_obs::run_query(&query, &events, &zone.all_spans()))
        }
        Request::Health => Response::Health(zone.fleet().health_report().unwrap_or_default()),
        Request::Spans => Response::Spans(serde::to_bytes(&zone.all_spans())),
        Request::Shutdown => {
            state.shutdown = true;
            Response::Done
        }
        other => Response::Error(format!("request {other:?} has no zone-level meaning")),
    }
}

/// The root balancer's handle to one zone behind a transport —
/// [`ShardHandle`] over RPC, so [`kairos_fleet::RootBalancer::run_round`]
/// drives remote zones with the unchanged balance policy. Transport
/// failures degrade the same way `RemoteShard`'s do: an unreachable
/// zone presents the offline (unplanned, empty) summary and answers
/// `None`/`false` to probes, so the round routes around it instead of
/// wedging.
pub struct RemoteZone {
    conn: Box<dyn Conn>,
    interval_secs: f64,
}

impl RemoteZone {
    /// Connect to a zone node. `interval_secs` shapes the offline
    /// summary presented while the zone is unreachable.
    pub fn connect(
        transport: &dyn Transport,
        endpoint: &str,
        interval_secs: f64,
    ) -> Result<RemoteZone, NetError> {
        Ok(RemoteZone {
            conn: transport.connect(endpoint)?,
            interval_secs,
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        crate::rpc::call(self.conn.as_mut(), request)
    }

    /// Advance the remote zone one monitoring interval.
    pub fn tick(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Tick)? {
            Response::Done => Ok(()),
            other => Err(NetError::Remote(format!("tick answered {other:?}"))),
        }
    }

    /// The endpoint this handle targets.
    pub fn endpoint(&self) -> &str {
        self.conn.endpoint()
    }
}

impl ShardHandle for RemoteZone {
    fn summary(&mut self) -> kairos_controller::ShardSummary {
        match self.call(&Request::Summary) {
            Ok(Response::Summary(summary)) => summary,
            _ => crate::balancer_node::offline_summary(self.interval_secs),
        }
    }

    fn pack_estimate_remaining(&mut self) -> Option<usize> {
        match self.call(&Request::PackEstimate {
            exclude: Vec::new(),
        }) {
            Ok(Response::PackEstimate(est)) => est,
            _ => None,
        }
    }

    fn forecast(&mut self, tenant: &str) -> Option<WorkloadProfile> {
        match self.call(&Request::Forecast {
            tenant: tenant.to_string(),
        }) {
            Ok(Response::Forecast(profile)) => profile,
            _ => None,
        }
    }

    fn can_admit(&mut self, incoming: &WorkloadProfile, budget: usize) -> bool {
        matches!(
            self.call(&Request::CanAdmit {
                profile: incoming.clone(),
                budget,
            }),
            Ok(Response::CanAdmit(true))
        )
    }

    fn evict(&mut self, tenant: &str) -> Option<EvictedTenant> {
        match self.call(&Request::Evict {
            tenant: tenant.to_string(),
        }) {
            Ok(Response::Evicted(Some(wire))) => Some(EvictedTenant {
                name: tenant.to_string(),
                wire,
                source: None,
            }),
            _ => None,
        }
    }

    fn admit(&mut self, tenant: EvictedTenant) -> Result<(), EvictedTenant> {
        match self.call(&Request::Admit {
            frame: tenant.wire.clone(),
        }) {
            Ok(Response::Done) => Ok(()),
            _ => Err(tenant),
        }
    }

    fn owns(&mut self, tenant: &str) -> Option<bool> {
        match self.call(&Request::Owns {
            tenant: tenant.to_string(),
        }) {
            Ok(Response::Owns(owned)) => Some(owned),
            _ => None,
        }
    }
}
